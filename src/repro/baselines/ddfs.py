"""DDFS-style centralized index (Zhu, Li, Patterson -- FAST 2008).

The Data Domain File System avoids the disk bottleneck with three techniques:
a *summary vector* (bloom filter) that short-circuits lookups for new chunks,
*stream-informed segment layout* (fingerprints of chunks written together are
stored together in containers), and *locality-preserving caching* (a cache
miss loads the whole container's fingerprints into RAM, prefetching the
neighbours that are likely to be queried next).

This baseline models those mechanisms on top of the HDD device model and is
the second centralized reference point in the tier ablation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dedup.fingerprint import Fingerprint
from ..dedup.index import ChunkIndex, ChunkLocation, LookupResult
from ..simulation.stats import Counter, LatencyRecorder
from ..storage.bloom import BloomFilter
from ..storage.devices import StorageDevice, make_hdd
from ..storage.lru import LRUCache

__all__ = ["DDFSIndex"]


class DDFSIndex(ChunkIndex):
    """Bloom filter + locality-preserving container cache over a disk index."""

    def __init__(
        self,
        device: Optional[StorageDevice] = None,
        container_fingerprints: int = 1024,
        cache_containers: int = 64,
        bloom_expected_items: int = 10_000_000,
        bloom_false_positive_rate: float = 0.01,
        cpu_per_lookup: float = 20e-6,
        name: str = "ddfs",
    ) -> None:
        if container_fingerprints < 1:
            raise ValueError("container_fingerprints must be >= 1")
        self.name = name
        self.device = device if device is not None else make_hdd(name=f"{name}.hdd")
        self.container_fingerprints = container_fingerprints
        self.summary_vector = BloomFilter(bloom_expected_items, bloom_false_positive_rate)
        self.container_cache = LRUCache(cache_containers)
        self.cpu_per_lookup = cpu_per_lookup
        self.counters = Counter()
        self.latency = LatencyRecorder(f"{name}.latency")
        # Full on-disk index: digest -> container id, plus container contents.
        self._index: Dict[bytes, int] = {}
        self._containers: List[List[bytes]] = [[]]
        self._cached_digests: set = set()

    # -- container bookkeeping -----------------------------------------------------------
    def _current_container(self) -> int:
        if len(self._containers[-1]) >= self.container_fingerprints:
            self._containers.append([])
        return len(self._containers) - 1

    def _load_container(self, container_id: int) -> None:
        """Bring a container's fingerprints into the locality cache."""
        evicted = self.container_cache.put(container_id, True)
        if evicted is not None:
            evicted_id, _ = evicted
            self._cached_digests.difference_update(self._containers[evicted_id])
        self._cached_digests.update(self._containers[container_id])

    # -- ChunkIndex ------------------------------------------------------------------------
    def lookup(self, fingerprint: Fingerprint) -> LookupResult:
        digest = fingerprint.digest
        self.counters.increment("lookups")
        service_time = self.cpu_per_lookup

        # 1. Locality-preserving cache.
        if digest in self._cached_digests:
            self.counters.increment("cache_hits")
            container_id = self._index[digest]
            self.container_cache.get(container_id)  # refresh recency
            self.latency.record(service_time)
            return LookupResult(
                fingerprint, True, ChunkLocation(container_id=container_id), service_time, self.name
            )

        # 2. Summary vector: definite misses never touch the disk.
        if digest not in self.summary_vector:
            self.counters.increment("summary_negative")
            service_time += self._insert_new(digest, fingerprint)
            self.latency.record(service_time)
            return LookupResult(fingerprint, False, ChunkLocation(), service_time, self.name)

        # 3. On-disk index probe (one random I/O) + container prefetch.
        service_time += self.device.read_cost(4096)
        container_id = self._index.get(digest)
        if container_id is not None:
            self.counters.increment("disk_hits")
            # Prefetch the whole container's metadata (sequential read).
            service_time += self.device.read_cost(
                self.container_fingerprints * 64, random_access=False
            )
            self._load_container(container_id)
            self.latency.record(service_time)
            return LookupResult(
                fingerprint, True, ChunkLocation(container_id=container_id), service_time, self.name
            )

        # Bloom false positive.
        self.counters.increment("summary_false_positive")
        service_time += self._insert_new(digest, fingerprint)
        self.latency.record(service_time)
        return LookupResult(fingerprint, False, ChunkLocation(), service_time, self.name)

    def _insert_new(self, digest: bytes, fingerprint: Fingerprint) -> float:
        self.counters.increment("new_entries")
        container_id = self._current_container()
        self._containers[container_id].append(digest)
        self._index[digest] = container_id
        self.summary_vector.add(digest)
        if container_id in self.container_cache:
            self._cached_digests.add(digest)
        # New entries are written out with their container (sequential,
        # amortised over the container's fingerprints).
        return self.device.write_cost(64, random_access=False)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint.digest in self._index

    def cache_hit_ratio(self) -> float:
        """Fraction of duplicate lookups served from the locality cache."""
        hits = self.counters.get("cache_hits")
        duplicates = hits + self.counters.get("disk_hits")
        return hits / duplicates if duplicates else 0.0
