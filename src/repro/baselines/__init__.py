"""Centralized baselines SHHC is compared against."""

from .chunkstash import ChunkStashIndex
from .ddfs import DDFSIndex
from .disk_index import DiskIndex
from .single_node import SingleNodeHashServer

__all__ = ["ChunkStashIndex", "DDFSIndex", "DiskIndex", "SingleNodeHashServer"]
