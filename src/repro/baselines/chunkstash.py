"""ChunkStash-style centralized index (Debnath et al., USENIX ATC 2010).

ChunkStash keeps the full chunk metadata log on SSD and a *compact* cuckoo
hash index of it in RAM, giving at most one flash read per lookup.  The
paper positions SHHC as the distributed complement of this class of design:
ChunkStash removes the disk bottleneck but remains a single server.

This baseline reproduces that behaviour as a centralized
:class:`~repro.dedup.index.ChunkIndex`:

* a positive RAM index hit costs one SSD read (to fetch the full entry),
* a negative lookup costs no flash read at all (the RAM index is authoritative),
* inserts append to an SSD write buffer that is flushed one page at a time.
"""

from __future__ import annotations

from typing import Optional

from ..dedup.fingerprint import Fingerprint
from ..dedup.index import ChunkIndex, ChunkLocation, LookupResult
from ..simulation.stats import Counter, LatencyRecorder
from ..storage.cuckoo import CuckooHashTable
from ..storage.devices import StorageDevice, make_ssd
from ..storage.lru import LRUCache

__all__ = ["ChunkStashIndex"]


class ChunkStashIndex(ChunkIndex):
    """Centralized RAM-cuckoo-index + SSD-log chunk index."""

    def __init__(
        self,
        device: Optional[StorageDevice] = None,
        cache_entries: int = 100_000,
        page_size: int = 4096,
        entry_size: int = 64,
        cpu_per_lookup: float = 20e-6,
        name: str = "chunkstash",
    ) -> None:
        self.name = name
        self.device = device if device is not None else make_ssd(name=f"{name}.ssd")
        self.ram_index = CuckooHashTable(initial_buckets=4096)
        self.metadata_cache = LRUCache(cache_entries)
        self.page_size = page_size
        self.entry_size = entry_size
        self.entries_per_page = max(1, page_size // entry_size)
        self.cpu_per_lookup = cpu_per_lookup
        self.counters = Counter()
        self.latency = LatencyRecorder(f"{name}.latency")
        self._log_offset = 0
        self._buffered_entries = 0

    def lookup(self, fingerprint: Fingerprint) -> LookupResult:
        digest = fingerprint.digest
        self.counters.increment("lookups")
        service_time = self.cpu_per_lookup

        offset = self.ram_index.get(digest)
        if offset is not None:
            self.counters.increment("index_hits")
            if self.metadata_cache.get(digest) is None:
                # One flash read to fetch the full on-SSD entry.
                service_time += self.device.read_cost(self.page_size)
                self.counters.increment("flash_reads")
                self.metadata_cache.put(digest, True)
            self.latency.record(service_time)
            return LookupResult(
                fingerprint, True, ChunkLocation(offset=offset), service_time, self.name
            )

        # Negative lookup: the RAM index is authoritative, no flash read needed.
        self.counters.increment("new_entries")
        location = ChunkLocation(offset=self._log_offset)
        self.ram_index.put(digest, self._log_offset)
        self.metadata_cache.put(digest, True)
        self._log_offset += self.entry_size
        self._buffered_entries += 1
        if self._buffered_entries >= self.entries_per_page:
            # Sequential append of one full page of new entries.
            service_time += self.device.write_cost(self.page_size, random_access=False)
            self.counters.increment("flash_writes")
            self._buffered_entries = 0
        self.latency.record(service_time)
        return LookupResult(fingerprint, False, location, service_time, self.name)

    def __len__(self) -> int:
        return len(self.ram_index)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint.digest in self.ram_index

    def ram_bytes(self) -> int:
        """Approximate RAM footprint of the compact index (bytes)."""
        # ~6 bytes of compact key signature + 4 bytes of offset per entry is
        # the ChunkStash figure; we report that rather than Python overhead.
        return len(self.ram_index) * 10
