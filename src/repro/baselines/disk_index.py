"""Naive disk-resident chunk index (the pre-ChunkStash/DDFS strawman).

Every lookup that misses the small in-RAM cache pays a random disk I/O on a
hard drive, which is the "disk bottleneck" the entire deduplication
literature (and the paper's introduction) starts from.  Used as the slowest
reference point in the tier ablation.
"""

from __future__ import annotations

from typing import Optional

from ..dedup.fingerprint import Fingerprint
from ..dedup.index import ChunkIndex, ChunkLocation, LookupResult
from ..simulation.stats import Counter, LatencyRecorder
from ..storage.devices import StorageDevice, make_hdd
from ..storage.hashstore import SSDHashStore
from ..storage.lru import LRUCache

__all__ = ["DiskIndex"]


class DiskIndex(ChunkIndex):
    """Centralized chunk index stored on a hard disk with a small RAM cache."""

    def __init__(
        self,
        cache_entries: int = 100_000,
        device: Optional[StorageDevice] = None,
        cpu_per_lookup: float = 20e-6,
        name: str = "disk-index",
    ) -> None:
        self.name = name
        self.device = device if device is not None else make_hdd(name=f"{name}.hdd")
        self.cache = LRUCache(cache_entries)
        # Reuse the bucketised store purely as the on-disk table layout.
        self.table = SSDHashStore(num_buckets=1 << 16, write_buffer_pages=0)
        self.cpu_per_lookup = cpu_per_lookup
        self.counters = Counter()
        self.latency = LatencyRecorder(f"{name}.latency")

    def lookup(self, fingerprint: Fingerprint) -> LookupResult:
        digest = fingerprint.digest
        self.counters.increment("lookups")
        service_time = self.cpu_per_lookup

        if self.cache.get(digest) is not None:
            self.counters.increment("cache_hits")
            self.latency.record(service_time)
            return LookupResult(fingerprint, True, ChunkLocation(), service_time, self.name)

        # Cache miss: one random disk read to probe the on-disk bucket.
        for operation in self.table.lookup_io(digest):
            service_time += self.device.read_cost(operation.size_bytes)
        if digest in self.table:
            self.counters.increment("disk_hits")
            self.cache.put(digest, True)
            self.latency.record(service_time)
            return LookupResult(fingerprint, True, ChunkLocation(), service_time, self.name)

        # Not present: write the new entry back to disk.
        self.counters.increment("new_entries")
        self.table.put(digest, fingerprint.chunk_size)
        self.cache.put(digest, True)
        service_time += self.device.write_cost(self.table.page_size)
        self.latency.record(service_time)
        return LookupResult(fingerprint, False, ChunkLocation(), service_time, self.name)

    def __len__(self) -> int:
        return len(self.table)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint.digest in self.table
