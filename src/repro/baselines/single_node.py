"""Single-node (centralized) hash server.

The paper's motivation experiment (Figure 1) contrasts a one-node "server"
with multi-node clusters: a centralized fingerprint service saturates as
concurrent backup requests grow.  :class:`SingleNodeHashServer` is literally
an SHHC hybrid node used alone -- same RAM+SSD layout, no partitioning --
which makes the comparison a pure scaling comparison rather than an
implementation one.  It doubles as the ``cluster of one`` configuration in
the scalability experiments and as a centralized baseline for the library
API.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.config import HashNodeConfig
from ..core.hash_node import HybridHashNode
from ..dedup.fingerprint import Fingerprint
from ..dedup.index import ChunkIndex, ChunkLocation, LookupResult
from ..simulation.engine import Simulator

__all__ = ["SingleNodeHashServer"]


class SingleNodeHashServer(ChunkIndex):
    """A centralized hybrid (RAM+SSD) fingerprint server."""

    def __init__(
        self,
        config: Optional[HashNodeConfig] = None,
        sim: Optional[Simulator] = None,
        name: str = "central-hash-server",
    ) -> None:
        self.name = name
        self.node = HybridHashNode(name, config, sim)

    def lookup(self, fingerprint: Fingerprint) -> LookupResult:
        reply = self.node.lookup(fingerprint)
        return LookupResult(
            fingerprint=fingerprint,
            is_duplicate=reply.is_duplicate,
            location=ChunkLocation(),
            latency=reply.service_time,
            served_by=self.name,
        )

    def lookup_batch(self, fingerprints: Iterable[Fingerprint]) -> List[LookupResult]:
        return [self.lookup(fp) for fp in fingerprints]

    def __len__(self) -> int:
        return len(self.node)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self.node

    # -- convenience ------------------------------------------------------------------------
    def snapshot(self):
        """Underlying node statistics (tier hits, destages, ...)."""
        return self.node.snapshot()

    def mean_latency(self) -> float:
        """Mean per-lookup service time observed so far (seconds)."""
        recorder = self.node.lookup_latency
        return recorder.mean if recorder.count else 0.0
