"""The SHHC cluster: partitioned hybrid hash nodes behind one lookup service.

:class:`SHHCCluster` owns the partitioner and the hybrid hash nodes and
offers the combined fingerprint store/lookup service of the paper:

* As a **library** (immediate mode) it implements the
  :class:`~repro.dedup.index.ChunkIndex` interface, so it drops into the
  dedup pipeline in place of a centralized index.
* As a **simulated deployment** it registers one RPC service per node on a
  :class:`~repro.network.rpc.RpcLayer`; web front-ends then send
  :class:`~repro.core.protocol.BatchLookupRequest` messages to individual
  nodes over the simulated fabric.

Replication and failover semantics
----------------------------------
With ``ClusterConfig.replication_factor = k`` every fingerprint has a
*replica set* of ``k`` nodes: its partition owner plus the next ``k - 1``
distinct successors (Chord style, per partitioner).  The routing layer
maintains three invariants, failures included:

* **Serving**: a lookup (single or batched) is always answered by the first
  *live* node of the fingerprint's own replica set.  Batches are split with
  :func:`~repro.core.batching.split_batch_by_replica_set`, so each
  fingerprint fails over independently -- crucial for consistent hashing,
  where two fingerprints sharing a primary generally have different
  successors.
* **Write propagation**: a fingerprint judged new by its serving node is
  copied to the remaining live replicas through
  :meth:`~repro.core.hash_node.HybridHashNode.insert_replica`, a pure write
  path that does not touch the replicas' lookup counters or latency
  recorders, so per-node load statistics and ``duplicate_ratio`` reflect
  client traffic only.
* **Read repair**: when a serving node misses but another live replica
  holds the fingerprint (typically a primary that was down when the write
  happened and has since recovered), the verdict is corrected to duplicate
  (``ServedFrom.REPAIR``), the serving node keeps the copy it just wrote,
  and any other live replica missing the fingerprint is backfilled.

Transient failures are handled too: a node raising
:class:`~repro.core.fault_injection.NodeUnavailableError` (e.g. a
:class:`~repro.core.fault_injection.FlakyNode` wrapper) causes the affected
lookups to fail over to the next live replica.  Background machinery for
re-replication after permanent failures lives in
:mod:`repro.core.replication`; scripted crash/recovery scenarios in
:mod:`repro.core.fault_injection`.

Size accounting distinguishes ``len(cluster)`` /
:meth:`SHHCCluster.distinct_fingerprints` (unique fingerprints, what a
client cares about) from :attr:`SHHCCluster.total_stored` (copies including
replicas, what capacity planning cares about).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dedup.fingerprint import Fingerprint
from ..dedup.index import ChunkIndex, ChunkLocation, LookupResult
from ..network.rpc import RpcLayer
from ..simulation.costmodel import ControlPlaneLedger, CostModel
from ..storage.npy import backend_name as npy_backend_name
from ..simulation.engine import Simulator
from .batching import reassemble_replies, split_batch_by_replica_set
from .config import ClusterConfig
from .digest_batch import DigestBatch
from .fault_injection import NodeUnavailableError
from .hash_node import HybridHashNode
from .persistence import PersistencePolicy, RecoveryReport
from .metrics import ClusterMetrics, LoadBalanceReport
from .partition import ConsistentHashRing, Partitioner, RangePartitioner, key_of_digest
from .protocol import BatchLookupReply, BatchLookupRequest, LookupReply, ServedFrom

__all__ = ["SHHCCluster"]

#: Routing-cache bound: above this many distinct digests the cache is
#: dropped wholesale (cheap, deterministic) rather than evicted piecemeal.
#: At ~100 bytes per entry the bound caps the cache near 100 MB.
ROUTE_CACHE_MAX_ENTRIES = 1 << 20

#: Shared empty location for lookup results; :class:`ChunkLocation` is a
#: frozen dataclass, so one instance is safe to hand to every result.
_EMPTY_LOCATION = ChunkLocation()


class SHHCCluster(ChunkIndex):
    """A scalable hybrid hash cluster (the paper's contribution)."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        sim: Optional[Simulator] = None,
        partitioner: Optional[Partitioner] = None,
        cost_model: Optional[CostModel] = None,
        persistence: Optional[PersistencePolicy] = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.sim = sim
        #: Optional control-plane cost model (see simulation/costmodel.py).
        #: ``None`` (the default) keeps the historical free-control-plane
        #: behaviour byte-identical; enabled, replica propagation, read
        #: repair and migration copies are charged as deferred CPU + network
        #: events instead of same-instant side effects.
        self.cost_model = cost_model
        #: Immediate-mode charging timeline.  In simulated mode (``sim`` set)
        #: costs are charged as scheduled CPU occupancy on the nodes instead.
        self.ledger: Optional[ControlPlaneLedger] = (
            ControlPlaneLedger(cost_model) if cost_model is not None and sim is None else None
        )
        node_names = self.config.node_names
        if partitioner is not None:
            self.partitioner = partitioner
        elif self.config.virtual_nodes > 0:
            self.partitioner = ConsistentHashRing(node_names, self.config.virtual_nodes)
        else:
            self.partitioner = RangePartitioner(node_names)
        #: Durable node storage (see core/persistence.py).  ``None`` (the
        #: default) keeps every node purely in-memory and byte-identical to
        #: the non-persistent build; enabled, each node journals acknowledged
        #: inserts to its own container log and :meth:`restart_node` recovers
        #: a killed node's state from disk.
        self.persistence = persistence
        self.nodes: Dict[str, HybridHashNode] = {
            name: HybridHashNode(
                name,
                self.config.node,
                sim,
                persistence=None if persistence is None else persistence.for_node(name),
            )
            for name in node_names
        }
        self._down: set = set()
        self.lookups = 0
        self.duplicates = 0
        self.read_repairs = 0
        self.failovers = 0
        #: Mid-flight crash semantics for the simulated deployment: when
        #: True, a batch still in service on a node that crashes is *dropped*
        #: (its reply never leaves the node) instead of drained, so clients
        #: exercise their timeout/retry path.  Set by the fault injector /
        #: gateway (``drop_in_flight=...``).
        self.drop_in_flight = False
        self.dropped_in_flight = 0
        # Crash generation per node: lets the drop decision catch a crash
        # that happened *during* a batch's service even if the node already
        # recovered by the time the reply would leave it.
        self._crash_epochs: Dict[str, int] = {}
        self._batch_ids = itertools.count(1)
        self.last_batch_id = 0
        # Routing cache: digest -> replica-set tuple, valid for one
        # (partitioner object, membership epoch) pair.  The partitioner is
        # held by strong reference and compared with ``is`` -- an id()
        # would go stale when CPython reuses a freed object's address
        # after a partitioner swap.  Node liveness is deliberately *not*
        # part of the key: the cache stores the full replica set and the
        # dispatch loop picks the first live member, so mark_down/mark_up
        # never invalidate it.
        self._route_cache: Dict[bytes, Tuple[str, ...]] = {}
        self._route_partitioner: Partitioner = self.partitioner
        self._route_epoch = getattr(self.partitioner, "epoch", 0)

    # ------------------------------------------------------------------ membership
    @property
    def node_names(self) -> List[str]:
        return list(self.nodes.keys())

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> HybridHashNode:
        """Look up a node object by name."""
        return self.nodes[name]

    def mark_down(self, name: str) -> None:
        """Mark a node as failed; lookups fail over to replicas."""
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        self._down.add(name)
        self._crash_epochs[name] = self._crash_epochs.get(name, 0) + 1

    def mark_up(self, name: str) -> None:
        """Bring a failed node back into rotation."""
        self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    def kill_node(self, name: str) -> None:
        """Crash ``name`` for real: mark it down *and* destroy its in-memory state.

        Unlike :meth:`mark_down` (a reachability fault whose state survives),
        a kill loses the node's RAM cache, bloom filter and hash table --
        everything except what its persistence layer wrote to disk.
        """
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        self.mark_down(name)
        self.nodes[name].kill()

    def restart_node(self, name: str) -> Optional[RecoveryReport]:
        """Restart a killed node, recovering its state from disk.

        The node rebuilds its store and bloom filter from its container log
        (and snapshot, when one exists) before rejoining the rotation.  The
        recovery work is charged through the cost model -- lookups landing on
        the node during warm-up queue behind the replay -- and the
        :class:`~repro.core.persistence.RecoveryReport` (``None`` for a node
        without persistence, which restarts empty) is returned with
        ``charged_seconds`` filled in.
        """
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        report = self.nodes[name].restart()
        if report is not None:
            report.charged_seconds = self._charge_recovery(name, report)
        self.mark_up(name)
        return report

    # ------------------------------------------------------------------ routing
    def owner_of(self, fingerprint: Fingerprint) -> str:
        """Primary owner node for a fingerprint."""
        return self.partitioner.owner(fingerprint)

    def _routes(self) -> Dict[bytes, Tuple[str, ...]]:
        """The digest -> replica-set cache, flushed on membership change.

        Validity is keyed on the partitioner object (by identity, with a
        strong reference) plus its membership epoch: elastic membership
        (PR 4's churn) mutates the partitioner through
        ``add_node``/``remove_node``, each of which bumps the epoch, and a
        wholesale partitioner swap changes the object.  Either way the
        next routing call starts from an empty cache, so routed batches
        can never use a pre-migration replica set.
        """
        partitioner = self.partitioner
        epoch = getattr(partitioner, "epoch", 0)
        if partitioner is not self._route_partitioner or epoch != self._route_epoch:
            self._route_cache.clear()
            self._route_partitioner = partitioner
            self._route_epoch = epoch
        return self._route_cache

    def _resolve_route(self, fingerprint: Fingerprint, digest: bytes) -> Tuple[str, ...]:
        """Resolve and cache one fingerprint's replica set (cache-miss path).

        Uses the partitioner's key-addressed ``owners_by_key`` (which hands
        out shared tuples) when available, falling back to the generic
        ``owners`` protocol for custom partitioners.
        """
        partitioner = self.partitioner
        by_key = getattr(partitioner, "owners_by_key", None)
        if by_key is not None:
            replicas = by_key(key_of_digest(digest), self.config.replication_factor)
        else:
            replicas = tuple(partitioner.owners(fingerprint, self.config.replication_factor))
        routes = self._route_cache
        if len(routes) >= ROUTE_CACHE_MAX_ENTRIES:
            routes.clear()
        routes[digest] = replicas
        return replicas

    def _route_of(self, fingerprint: Fingerprint) -> Tuple[str, ...]:
        """Cached replica set (owner plus successors) for one fingerprint."""
        digest = fingerprint.digest
        replicas = self._routes().get(digest)
        if replicas is None:
            replicas = self._resolve_route(fingerprint, digest)
        return replicas

    def replica_set(self, fingerprint: Fingerprint) -> List[str]:
        """Owner plus successors, per the configured replication factor."""
        return list(self._route_of(fingerprint))

    def _serving_nodes(self, fingerprint: Fingerprint) -> List[str]:
        """Replica set with failed nodes filtered out (primary first)."""
        candidates = [n for n in self._route_of(fingerprint) if n not in self._down]
        if not candidates:
            raise RuntimeError("no live replica available for fingerprint")
        return candidates

    # ------------------------------------------------------------------ ChunkIndex API
    def lookup(self, fingerprint: Fingerprint) -> LookupResult:
        """Combined lookup/insert through the cluster (immediate mode)."""
        reply = self.lookup_reply(fingerprint)
        self.lookups += 1
        if reply.is_duplicate:
            self.duplicates += 1
        return LookupResult(
            fingerprint=fingerprint,
            is_duplicate=reply.is_duplicate,
            location=ChunkLocation(),
            latency=reply.service_time,
            served_by=reply.node_id,
        )

    def lookup_reply(self, fingerprint: Fingerprint) -> LookupReply:
        """Protocol-level single lookup (exposes tier information)."""
        return self._lookup_with_failover(fingerprint)

    #: Attempts per replica before a transiently failing node is given up on.
    #: Sized so realistic grey-failure rates (<~10% drops) practically never
    #: abort even with a single replica; a node refusing this many attempts
    #: is effectively dead and the lookup errors loudly.
    MAX_NODE_ATTEMPTS = 5

    def _lookup_with_failover(
        self, fingerprint: Fingerprint, exclude: Tuple[str, ...] = ()
    ) -> LookupReply:
        """Serve one fingerprint from its replica set, retrying flaky nodes.

        Marked-down nodes are skipped outright.  A node that raises
        :class:`NodeUnavailableError` mid-request is a *transient* failure:
        the lookup moves to the least-recently-failed live replica first but
        may come back and retry the same node (up to ``MAX_NODE_ATTEMPTS``
        times each), so a single dropped request never aborts a run that
        still has a responsive replica.  ``exclude`` pre-charges one failed
        attempt (used when a whole sub-batch was refused).
        """
        attempts = {name: 1 for name in exclude}
        while True:
            live = self._serving_nodes(fingerprint)
            candidates = [n for n in live if attempts.get(n, 0) < self.MAX_NODE_ATTEMPTS]
            if not candidates:
                raise RuntimeError(
                    "no live replica available for fingerprint "
                    f"(every replica refused {self.MAX_NODE_ATTEMPTS} attempts)"
                )
            # Stable sort: fewest failures first, replica-set order on ties.
            candidates.sort(key=lambda name: attempts.get(name, 0))
            serving = candidates[0]
            try:
                reply = self.nodes[serving].lookup(fingerprint)
            except NodeUnavailableError:
                attempts[serving] = attempts.get(serving, 0) + 1
                self.failovers += 1
                continue
            return self._resolve_reply(reply, serving)

    def _resolve_reply(self, reply: LookupReply, serving: str) -> LookupReply:
        """Apply replication semantics to a serving node's verdict.

        Duplicates stand as-is.  For a reported-new fingerprint the other
        live replicas are consulted: if any already holds it the verdict is
        corrected to duplicate (read repair -- the serving node keeps the
        copy it just wrote, becoming consistent again) and missing replicas
        are backfilled; otherwise the new fingerprint is propagated to every
        other live replica via the stats-neutral ``insert_replica`` path.
        """
        if reply.is_duplicate or self.config.replication_factor == 1:
            return reply
        fingerprint = reply.fingerprint
        others = [
            n for n in self.replica_set(fingerprint) if n != serving and n not in self._down
        ]
        holders = [n for n in others if fingerprint in self.nodes[n]]
        targets = [n for n in others if n not in holders]
        for node_name in targets:
            self.nodes[node_name].insert_replica(fingerprint)
        if targets and self.cost_model is not None:
            self._charge_replica_writes({name: 1 for name in targets})
        if holders:
            self.read_repairs += 1
            return replace(reply, is_duplicate=True, served_from=ServedFrom.REPAIR)
        return reply

    def lookup_batch(self, fingerprints: Iterable[Fingerprint]) -> List[LookupResult]:
        """Batch lookup preserving input order (immediate mode).

        Without a cost model the batch takes the verdict-direct path: each
        bucket is served by the node's verdict kernel
        (:meth:`~repro.core.hash_node.HybridHashNode.serve_bucket_verdicts`)
        and ``LookupResult`` objects are built straight from the parallel
        verdict/service-time views -- no intermediate :class:`LookupReply`
        is ever allocated.  Verdicts, latencies, counters and replica
        writes are identical to the reply-based path (pinned by
        tests/test_routed_batch_equivalence.py).  Cost-model clusters keep
        the reply path, whose replies the ledger's bucket charging needs.
        """
        fingerprints = list(fingerprints)
        if not fingerprints:
            return []
        if self.ledger is None and self.cost_model is None:
            return self._lookup_batch_verdicts(fingerprints)
        merged: List[Optional[LookupResult]] = [None] * len(fingerprints)
        duplicates = 0
        new_result = object.__new__
        for replies, positions in self._dispatch_routed(fingerprints):
            for reply, position in zip(replies, positions):
                is_duplicate = reply.is_duplicate
                duplicates += is_duplicate
                # Hot-path construction (see protocol.make_lookup_reply).
                result = new_result(LookupResult)
                fields = result.__dict__
                fields["fingerprint"] = reply.fingerprint
                fields["is_duplicate"] = is_duplicate
                fields["location"] = _EMPTY_LOCATION
                fields["latency"] = reply.service_time
                fields["served_by"] = reply.node_id
                merged[position] = result
        self.lookups += len(fingerprints)
        self.duplicates += duplicates
        return merged

    def _lookup_batch_verdicts(self, fingerprints: List[Fingerprint]) -> List[LookupResult]:
        """Verdict-direct :meth:`lookup_batch` core (no cost model).

        Each bucket is served by
        :meth:`~repro.core.hash_node.HybridHashNode.serve_bucket_results`,
        which writes one ``LookupResult`` per key -- the only per-key
        object on this path -- straight into the merge slots.  Repairs
        flip the verdict in place via the repaired-digest set that
        :meth:`_propagate_new` returns (a repaired result keeps its
        original service time, exactly like the ``replace`` on the reply
        path; the ``__dict__`` write bypasses the frozen-dataclass guard
        the same way the hot-path constructors do).
        """
        batch_id = next(self._batch_ids)
        self.last_batch_id = batch_id
        merged: List[Optional[LookupResult]] = [None] * len(fingerprints)
        duplicates = 0
        replication_on = self.config.replication_factor > 1
        nodes = self.nodes
        # Hoisted propagation preamble: on the clean range-partitioned path
        # every bucket shares one replica cycle (see _propagate_new_groups),
        # so replica writes are issued inline below without re-entering the
        # general helper -- and its per-call preamble -- once per bucket.
        table = routes_get = None
        if replication_on and not self._down:
            prefix_table = getattr(self.partitioner, "prefix_table", None)
            if prefix_table is not None:
                table = prefix_table(self.config.replication_factor)
                routes_get = self._routes().get
        for serving, (positions, batch, digests) in self._bucket_routed(fingerprints).items():
            try:
                _times, new_pairs = nodes[serving].serve_bucket_results(
                    DigestBatch.from_fingerprints(batch, digests), positions, merged
                )
            except NodeUnavailableError:
                # Whole sub-batch refused (flaky node): same per-fingerprint
                # failover as the reply path.
                self.failovers += 1
                new_result = object.__new__
                for fingerprint, position in zip(batch, positions):
                    reply = self._lookup_with_failover(fingerprint, exclude=(serving,))
                    is_duplicate = reply.is_duplicate
                    duplicates += is_duplicate
                    result = new_result(LookupResult)
                    fields = result.__dict__
                    fields["fingerprint"] = reply.fingerprint
                    fields["is_duplicate"] = is_duplicate
                    fields["location"] = _EMPTY_LOCATION
                    fields["latency"] = reply.service_time
                    fields["served_by"] = reply.node_id
                    merged[position] = result
                continue
            duplicates += len(positions) - len(new_pairs)
            if replication_on and new_pairs:
                # Propagate per bucket, exactly like the reply path: replica
                # store writes interleave with later buckets' serves in the
                # same order as the reference implementation, which keeps
                # write-buffer flush boundaries -- and therefore individual
                # new-entry service times -- byte-identical.
                if table is not None:
                    # Single shared replica cycle: resolve it from any member
                    # digest and write each non-serving target directly.
                    digest = new_pairs[0][0]
                    replicas = table[digest[0]]
                    if replicas is None:
                        replicas = routes_get(digest)
                        if replicas is None:
                            replicas = self._route_of(batch[digests.index(digest)])
                    repaired = None
                    for name in replicas:
                        if name == serving:
                            continue
                        target = nodes[name]
                        new_digests, existing = target.store.put_many_verdicts(new_pairs)
                        if existing:
                            if repaired is None:
                                repaired = set(existing)
                            else:
                                repaired.update(existing)
                        if new_digests:
                            target.finish_replica_inserts(new_digests)
                    if repaired:
                        self.read_repairs += len(repaired)
                else:
                    repaired = self._propagate_new(
                        new_pairs,
                        serving,
                        # Route-cache overflow mid-batch is the only way a
                        # digest this bucket just routed can be missing again;
                        # re-derive from the bucket's own fingerprints (rare,
                        # O(bucket)).
                        lambda digest: self._route_of(batch[digests.index(digest)]),
                    )
                if repaired:
                    # One flip per repaired digest; later occurrences of the
                    # same digest were already served as duplicates.
                    duplicates += len(repaired)
                    for digest, position in zip(digests, positions):
                        if digest in repaired:
                            merged[position].__dict__["is_duplicate"] = True
        self.lookups += len(fingerprints)
        self.duplicates += duplicates
        return merged

    def lookup_batch_replies(self, fingerprints: Sequence[Fingerprint]) -> List[LookupReply]:
        """Protocol-level batch lookup: bucket by serving node, query, merge.

        Each fingerprint is grouped under the first live node of *its own*
        replica set, so a downed node's share of the batch fans out to the
        correct per-fingerprint successors instead of one blanket failover
        target.  The per-fingerprint replication semantics are exactly those
        of :meth:`lookup_reply`, which is what keeps batch verdicts identical
        to the sequential path under failures.

        This is the routed-batch fast path: replica sets come from the
        membership-epoch-keyed routing cache (:meth:`_route_of`), the batch
        is bucketed per destination node in one pass (no intermediate
        request objects), whole buckets flow through the node's batched
        lookup kernel, and replica propagation is applied per bucket via
        :meth:`_resolve_replies`.  Verdicts, counters and replica-write
        counts are byte-identical to the pre-cache reference path kept in
        :meth:`lookup_batch_replies_reference` (pinned by
        tests/test_routed_batch_equivalence.py).
        """
        fingerprints = list(fingerprints)
        if not fingerprints:
            return []
        merged: List[Optional[LookupReply]] = [None] * len(fingerprints)
        for replies, positions in self._dispatch_routed(fingerprints):
            for reply, position in zip(replies, positions):
                merged[position] = reply
        return merged

    def _dispatch_routed(self, fingerprints: Sequence[Fingerprint]):
        """Bucket a batch by serving node, query, resolve; yield per bucket.

        Yields ``(replies, original_positions)`` pairs in first-occurrence
        bucket order (matching split_batch_by_replica_set's grouping);
        callers merge into their own result shape, so reply- and
        result-producing paths walk the batch exactly once.
        """
        batch_id = next(self._batch_ids)
        self.last_batch_id = batch_id
        buckets = self._bucket_routed(fingerprints)
        replication_on = self.config.replication_factor > 1
        ledger = self.ledger
        for serving, (positions, batch, digests) in buckets.items():
            try:
                replies, new_entries = self.nodes[serving].serve_bucket_batch(
                    DigestBatch.from_fingerprints(batch, digests)
                )
            except NodeUnavailableError:
                # The whole sub-batch was refused (flaky node): retry each
                # fingerprint individually on its remaining replicas.
                self.failovers += 1
                replies = [self._lookup_with_failover(fp, exclude=(serving,)) for fp in batch]
                if ledger is not None:
                    # Failed-over replies were served by whichever replica
                    # answered; charge each to the node that did the work.
                    for reply in replies:
                        ledger.charge_bucket(reply.node_id, (reply,))
            else:
                if ledger is not None:
                    # Queue the bucket on the serving node's timeline first:
                    # replica propagation below leaves at the bucket's
                    # completion instant, not at dispatch.
                    ledger.charge_bucket(serving, replies)
                # A bucket that answered only duplicates has nothing to
                # propagate or repair; skip the resolve pass outright.
                if replication_on and new_entries:
                    replies = self._resolve_replies(replies, serving)
            yield replies, positions

    def _bucket_routed(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Dict[str, Tuple[List[int], List[Fingerprint], List[bytes]]]:
        """Group a batch by serving node: ``{node: (positions, fps, digests)}``.

        Shared by the reply-producing dispatch and the verdict-direct
        result path; buckets come back in first-occurrence order (matching
        split_batch_by_replica_set's grouping).
        """
        routes = self._routes()
        routes_get = routes.get
        # A range partitioner hands out a 256-entry first-byte prefix table:
        # almost every digest routes with two index operations and no
        # arithmetic or per-digest caching at all.  Any other partitioner
        # goes through the digest-route cache with inline miss resolution.
        replication_factor = self.config.replication_factor
        prefix_table = getattr(self.partitioner, "prefix_table", None)
        table = prefix_table(replication_factor) if prefix_table is not None else None
        from_bytes = int.from_bytes
        resolve_route = self._resolve_route
        down = self._down
        # Per-bucket digests ride along so the serve step can hand the node
        # a packed DigestBatch without re-walking the fingerprints.
        buckets: Dict[str, Tuple[List[int], List[Fingerprint], List[bytes]]] = {}
        buckets_get = buckets.get
        if not down:
            # Route over a flat digest list and bucket positions only; the
            # per-bucket fingerprint/digest lists are gathered afterwards
            # with listcomps, which beats three appends per key.
            all_digests = [fingerprint.digest for fingerprint in fingerprints]
            by_position: Dict[str, List[int]] = {}
            # Bound-append table: one dict probe and one call per key, no
            # repeated ``.append`` attribute lookups on the hot loop.
            appends: Dict[str, object] = {}
            appends_get = appends.get
            if table is not None:
                for position, digest in enumerate(all_digests):
                    replicas = table[digest[0]]
                    if replicas is None:
                        # A range boundary cuts through this prefix (at most
                        # num_nodes - 1 of the 256): resolve exactly.
                        replicas = routes_get(digest)
                        if replicas is None:
                            replicas = resolve_route(fingerprints[position], digest)
                    serving = replicas[0]
                    append = appends_get(serving)
                    if append is None:
                        by_position[serving] = positions = []
                        appends[serving] = append = positions.append
                    append(position)
            else:
                for position, digest in enumerate(all_digests):
                    replicas = routes_get(digest)
                    if replicas is None:
                        replicas = resolve_route(fingerprints[position], digest)
                    serving = replicas[0]
                    append = appends_get(serving)
                    if append is None:
                        by_position[serving] = positions = []
                        appends[serving] = append = positions.append
                    append(position)
            for serving, positions in by_position.items():
                buckets[serving] = (
                    positions,
                    [fingerprints[position] for position in positions],
                    [all_digests[position] for position in positions],
                )
        else:
            for position, fingerprint in enumerate(fingerprints):
                digest = fingerprint.digest
                replicas = routes_get(digest)
                if replicas is None:
                    replicas = resolve_route(fingerprint, digest)
                for serving in replicas:
                    if serving not in down:
                        break
                else:
                    raise RuntimeError(
                        f"no live replica available for fingerprint at position {position}"
                    )
                bucket = buckets_get(serving)
                if bucket is None:
                    buckets[serving] = bucket = ([], [], [])
                bucket[0].append(position)
                bucket[1].append(fingerprint)
                bucket[2].append(digest)
        return buckets

    def _resolve_replies(
        self, replies: Sequence[LookupReply], serving: str
    ) -> List[LookupReply]:
        """Batched :meth:`_resolve_reply` for one serving node's bucket.

        The new pairs flow through :meth:`_propagate_new` (one batched
        store write per destination node) and the returned repaired-digest
        set flips those replies' verdicts -- exactly the sequential
        semantics, since a bucket's non-duplicate digests are distinct and
        never interact.  Replica sets come from the routing cache, which
        the dispatch loop has just populated for every digest here.
        """
        if self.config.replication_factor == 1:
            return list(replies)
        new_pairs: List[Tuple[bytes, int]] = []
        by_digest: Dict[bytes, Fingerprint] = {}
        for reply in replies:
            if not reply.is_duplicate:
                fingerprint = reply.fingerprint
                new_pairs.append((fingerprint.digest, fingerprint.chunk_size))
                by_digest[fingerprint.digest] = fingerprint
        repaired = self._propagate_new(
            new_pairs, serving, lambda digest: self._route_of(by_digest[digest])
        )
        if not repaired:
            return list(replies)
        return [
            replace(reply, is_duplicate=True, served_from=ServedFrom.REPAIR)
            if not reply.is_duplicate and reply.fingerprint.digest in repaired
            else reply
            for reply in replies
        ]

    def _propagate_new(self, new_pairs, serving: str, route_fallback) -> set:
        """Ship one bucket's new ``(digest, chunk_size)`` pairs to replicas.

        Thin wrapper over :meth:`_propagate_new_groups` for the reply
        path, which resolves each bucket as it is served.
        """
        return self._propagate_new_groups(((new_pairs, serving, route_fallback),))

    def _propagate_new_groups(self, groups) -> set:
        """Ship new ``(digest, chunk_size)`` pairs from served buckets to replicas.

        ``groups`` is an iterable of ``(new_pairs, serving, route_fallback)``
        triples, one per served bucket.  Returns the set of digests some
        other replica already held (the read repairs).  The store write
        doubles as the holder check:
        :meth:`~repro.storage.hashstore.SSDHashStore.put_many_verdicts`
        returns which keys were absent, which *is* the propagation/repair
        verdict, and an already-present digest is overwritten with the
        identical value (a no-op, since a digest determines its chunk
        size).  Writes are grouped per destination node across all groups
        -- safe because a digest's every occurrence routes to the same
        bucket, so no bucket's verdicts can depend on another bucket's
        replica writes within one call; per-node store state is unaffected
        by the cross-node interleaving the per-reply reference path uses,
        and within one node the pairs stay in bucket order, so the
        persistence log order matches too.  ``route_fallback`` maps a
        digest back to its replica set in the (rare) case a cache overflow
        evicted the route the dispatch loop just resolved.
        """
        down = self._down
        nodes = self.nodes
        routes_get = self._routes().get
        prefix_table = getattr(self.partitioner, "prefix_table", None)
        table = (
            prefix_table(self.config.replication_factor)
            if prefix_table is not None
            else None
        )
        per_node: Dict[str, List[Tuple[bytes, int]]] = {}
        per_node_get = per_node.get
        if table is not None and not down:
            # Range-partitioned clean path: every resolution route (prefix
            # table, digest cache, exact owners) maps a key owned by node
            # ``i`` to the same replica cycle ``cycles[i]``, and with no
            # downed nodes a bucket's serving node *is* its owner -- so the
            # whole group shares one replica set.  Resolve it once from any
            # member digest and ship the pair list wholesale.  (A downed
            # node breaks the premise: buckets then group by first *live*
            # replica and can mix cycles, so they take the per-pair loop.)
            for new_pairs, serving, route_fallback in groups:
                if not new_pairs:
                    continue
                digest = new_pairs[0][0]
                replicas = table[digest[0]]
                if replicas is None:
                    replicas = routes_get(digest)
                    if replicas is None:
                        replicas = route_fallback(digest)
                for name in replicas:
                    if name == serving:
                        continue
                    pairs = per_node_get(name)
                    if pairs is None:
                        per_node[name] = pairs = []
                    pairs.extend(new_pairs)
            groups = ()
        for new_pairs, serving, route_fallback in groups:
            # Per-group cache of live non-serving replicas, keyed by the
            # (shared) replica-set tuple: a bucket sees few distinct replica
            # sets, so the serving/liveness filter runs once per set instead
            # of per pair -- and the serving node is fixed per group, so the
            # tuple itself is the whole key.
            others_of: Dict[Tuple[str, ...], List[str]] = {}
            others_of_get = others_of.get
            for pair in new_pairs:
                digest = pair[0]
                # Same resolution order as dispatch: prefix table, then the
                # digest-route cache, then the caller's exact fallback.
                replicas = table[digest[0]] if table is not None else None
                if replicas is None:
                    replicas = routes_get(digest)
                    if replicas is None:
                        replicas = route_fallback(digest)
                others = others_of_get(replicas)
                if others is None:
                    others_of[replicas] = others = [
                        name for name in replicas if name != serving and name not in down
                    ]
                for name in others:
                    pairs = per_node_get(name)
                    if pairs is None:
                        per_node[name] = pairs = []
                    pairs.append(pair)
        repaired: set = set()
        pending: Dict[str, int] = {}
        for name, pairs in per_node.items():
            new_digests, existing = nodes[name].store.put_many_verdicts(pairs)
            if existing:
                repaired.update(existing)
            if new_digests:
                # Deferred bloom/counter settlement, one call per node.
                nodes[name].finish_replica_inserts(new_digests)
                pending[name] = len(new_digests)
        if repaired:
            # Distinct digests per bucket (a repeat is answered as a
            # duplicate by the serving node), so set size == repaired replies.
            self.read_repairs += len(repaired)
        if pending and self.cost_model is not None:
            self._charge_replica_writes(pending)
        return repaired

    # ------------------------------------------------------------------ cost charging
    def _charge_replica_writes(self, pending: Dict[str, int]) -> None:
        """Charge replica-propagation cost to the targets' timelines.

        ``pending`` maps target node -> number of new entries shipped to it.
        No-op without a cost model.  In immediate mode the ledger defers
        apply CPU onto each target's busy-until frontier after the fabric
        transfer; in simulated mode the same prices become scheduled CPU
        occupancy on the target's worker pool, contending with lookups.
        """
        model = self.cost_model
        if model is None or not pending:
            return
        if self.ledger is not None:
            self.ledger.charge_replica_writes(pending)
            return
        if self.sim is None:  # pragma: no cover - ledger covers immediate mode
            return
        for target, entries in pending.items():
            node = self.nodes.get(target)
            if node is not None:
                node.occupy_cpu(
                    model.replica_apply_cpu(entries),
                    delay=model.replica_transfer_time(entries),
                )

    def _charge_migration(self, transfers: Dict[Tuple[str, str], int]) -> None:
        """Charge membership-migration copy traffic over the fabric.

        ``transfers`` maps ``(source, target)`` -> entries copied during a
        membership rebuild (:meth:`~repro.core.membership.MembershipManager._rebuild`).
        The source pays export CPU, the entries cross the fabric at the
        migration entry size, and the target pays import CPU on arrival.
        No-op without a cost model.
        """
        model = self.cost_model
        if model is None or not transfers:
            return
        if self.ledger is not None:
            self.ledger.charge_migration(transfers)
            return
        if self.sim is None:  # pragma: no cover - ledger covers immediate mode
            return
        for (source, target), entries in transfers.items():
            cpu = model.migration_cpu(entries)
            src = self.nodes.get(source)
            if src is not None:  # source may have just left the cluster
                src.occupy_cpu(cpu)
            dst = self.nodes.get(target)
            if dst is not None:
                dst.occupy_cpu(cpu, delay=model.migration_transfer_time(entries))

    def _charge_recovery(self, name: str, report: RecoveryReport) -> float:
        """Charge a restarted node's index rebuild; returns the CPU seconds.

        The per-record work is the store rebuild (``entries``) plus the
        bloom replay (``replayed``: the post-snapshot tail on a warm
        restart, every live key on a cold one), and the snapshot load is
        priced per byte -- so a warm restart is charged measurably less
        than a full log replay.  No-op without a cost model.
        """
        model = self.cost_model
        if model is None:
            return 0.0
        replayed = report.entries + report.replayed
        if self.ledger is not None:
            return self.ledger.charge_recovery(name, replayed, report.snapshot_bytes)
        cpu = model.recovery_cpu(replayed, report.snapshot_bytes)
        if self.sim is not None:
            node = self.nodes.get(name)
            if node is not None:
                node.occupy_cpu(cpu)
        return cpu

    def close(self) -> None:
        """Release per-node persistence file handles (no-op without persistence)."""
        for node in self.nodes.values():
            persistence = getattr(node, "persistence", None)
            if persistence is not None:
                persistence.close()

    def lookup_batch_replies_reference(
        self, fingerprints: Sequence[Fingerprint]
    ) -> List[LookupReply]:
        """The pre-cache batch routing path, kept verbatim as an oracle.

        Resolves every fingerprint's replica set through the partitioner
        (:func:`~repro.core.batching.split_batch_by_replica_set`) and
        applies replication semantics one reply at a time.  The routed
        fast path must stay verdict-, counter- and replica-write-identical
        to this implementation; the equivalence tests construct twin
        clusters and drive one through each path.
        """
        fingerprints = list(fingerprints)
        if not fingerprints:
            return []
        batch_id = next(self._batch_ids)
        self.last_batch_id = batch_id
        per_node = split_batch_by_replica_set(
            fingerprints,
            self.partitioner,
            self.config.replication_factor,
            is_down=self.is_down,
            batch_id=batch_id,
        )
        gathered = []
        for serving, (request, positions) in per_node.items():
            batch = list(request.fingerprints)
            try:
                raw_replies = self.nodes[serving].lookup_batch(batch)
            except NodeUnavailableError:
                # The whole sub-batch was refused (flaky node): retry each
                # fingerprint individually on its remaining replicas.
                self.failovers += 1
                replies = [self._lookup_with_failover(fp, exclude=(serving,)) for fp in batch]
            else:
                replies = [self._resolve_reply(reply, serving) for reply in raw_replies]
            gathered.append(
                (BatchLookupReply(replies=replies, node_id=serving, batch_id=batch_id), positions)
            )
        return reassemble_replies(len(fingerprints), gathered)

    def route_batch(
        self,
        fingerprints: Sequence[Fingerprint],
        client_id: str = "",
        batch_id: int = 0,
    ) -> Dict[str, Tuple[BatchLookupRequest, List[int]]]:
        """Split a batch into per-serving-node requests via the routing cache.

        Protocol-compatible with
        :func:`~repro.core.batching.split_batch_by_replica_set` (same
        grouping, same request/position layout) but replica sets come from
        the epoch-keyed cache, so web front-ends dispatching on the
        simulated fabric share the cluster's routing work.
        """
        down = self._down
        groups: Dict[str, List[int]] = {}
        for position, fingerprint in enumerate(fingerprints):
            replicas = self._route_of(fingerprint)
            if not down:
                serving = replicas[0]
            else:
                for serving in replicas:
                    if serving not in down:
                        break
                else:
                    raise RuntimeError(
                        f"no live replica available for fingerprint at position {position}"
                    )
            groups.setdefault(serving, []).append(position)
        result: Dict[str, Tuple[BatchLookupRequest, List[int]]] = {}
        for node, positions in groups.items():
            request = BatchLookupRequest(
                fingerprints=[fingerprints[i] for i in positions],
                client_id=client_id,
                batch_id=batch_id,
            )
            result[node] = (request, positions)
        return result

    def __len__(self) -> int:
        """Distinct fingerprints stored in the cluster (replicas deduplicated)."""
        return self.distinct_fingerprints()

    def distinct_fingerprints(self) -> int:
        """Number of unique fingerprints, counting each replica group once."""
        if self.config.replication_factor == 1:
            # Without replication every copy is unique; skip the digest scan.
            return self.total_stored
        digests = set()
        for node in self.nodes.values():
            digests.update(node.store.keys())
        return len(digests)

    @property
    def total_stored(self) -> int:
        """Stored copies across all nodes, replicas included (capacity view)."""
        return sum(len(node) for node in self.nodes.values())

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        """Read-only membership: checks the replica set without inserting."""
        return any(fingerprint in self.nodes[name] for name in self.replica_set(fingerprint))

    # ------------------------------------------------------------------ simulated mode
    def register_services(self, rpc: RpcLayer) -> None:
        """Expose each hash node as an RPC service on the simulated network."""
        for name, node in self.nodes.items():
            rpc.register(name, self._make_handler(node))

    def _make_handler(self, node: HybridHashNode):
        node_id = node.node_id

        def _finalize(raw: BatchLookupReply) -> BatchLookupReply:
            # Replica propagation / read repair for RPC-served batches.  The
            # writes are applied logically at the reply instant (verdicts are
            # deterministic either way); with a cost model configured their
            # *cost* is charged as deferred CPU occupancy on the target nodes
            # after the fabric transfer (_charge_replica_writes via
            # _resolve_reply), so replication contends with later lookups.
            # Without one they stay free, matching the historical behaviour.
            replies = [self._resolve_reply(reply, node_id) for reply in raw.replies]
            return BatchLookupReply(replies=replies, node_id=node_id, batch_id=raw.batch_id)

        def _failover_batch(request: BatchLookupRequest) -> BatchLookupReply:
            # The node refused the whole batch (flaky / grey failure): answer
            # each fingerprint from its remaining replicas.  In simulated
            # mode the retries cost no simulated time -- only clean crashes
            # (FaultSchedule) model timing; grey failures model correctness.
            self.failovers += 1
            replies = [
                self._lookup_with_failover(fp, exclude=(node_id,))
                for fp in request.fingerprints
            ]
            return BatchLookupReply(replies=replies, node_id=node_id, batch_id=request.batch_id)

        def _handle(request: BatchLookupRequest):
            # Resolved per call (not captured) so wrappers installed after
            # registration -- e.g. fault_injection.make_flaky -- take effect.
            target = self.nodes[node_id]
            if self.sim is None:
                try:
                    reply = _finalize(
                        BatchLookupReply(
                            replies=target.lookup_batch(list(request.fingerprints)),
                            node_id=node_id,
                            batch_id=request.batch_id,
                        )
                    )
                except NodeUnavailableError:
                    reply = _failover_batch(request)
                return reply, reply.payload_bytes
            try:
                completion = target.serve_batch(request)
            except NodeUnavailableError:
                reply = _failover_batch(request)
                failed_over = self.sim.event(f"{node_id}.reply")
                failed_over.succeed((reply, reply.payload_bytes))
                return failed_over
            wrapped = self.sim.event(f"{node.node_id}.reply")
            epoch_at_dispatch = self._crash_epochs.get(node_id, 0)

            def _complete(event) -> None:
                crashed_since = self._crash_epochs.get(node_id, 0) != epoch_at_dispatch
                if self.drop_in_flight and (crashed_since or self.is_down(node_id)):
                    # The node crashed with this batch in flight (even if it
                    # already recovered): the reply is lost (never crosses
                    # the network) and the client's timeout/retry path must
                    # recover.  Replica propagation is skipped too -- a dead
                    # node cannot push copies.
                    self.dropped_in_flight += 1
                    return
                finished = _finalize(event.value)
                wrapped.succeed((finished, finished.payload_bytes))

            completion.add_callback(_complete)
            return wrapped

        return _handle

    # ------------------------------------------------------------------ reporting
    @property
    def kernel_backend(self) -> str:
        """Batch-kernel backend serving this cluster's nodes.

        ``numpy`` (columnar kernels for large buckets) or
        ``python-packed``; resolved once per process at import (see
        :mod:`repro.storage.npy`) and identical across nodes, which share
        one bloom geometry.
        """
        for node in self.nodes.values():
            return node.kernel_backend
        return npy_backend_name()

    def metrics(self) -> ClusterMetrics:
        """Aggregated per-node statistics (plus the distinct/total split).

        With ``replication_factor > 1`` the distinct count requires a scan
        over every node's stored digests, so treat this as a reporting call,
        not a hot-path one.
        """
        metrics = ClusterMetrics.from_nodes(list(self.nodes.values()))
        metrics.distinct_entries = self.distinct_fingerprints()
        return metrics

    def storage_distribution(self) -> LoadBalanceReport:
        """Hash entries stored per node (Figure 6); skips the distinct scan."""
        return ClusterMetrics.from_nodes(list(self.nodes.values())).storage_distribution()

    def duplicate_ratio(self) -> float:
        """Fraction of cluster lookups that found an existing fingerprint."""
        return self.duplicates / self.lookups if self.lookups else 0.0

    def mean_lookup_latency(self) -> float:
        """Mean per-fingerprint service time across nodes (seconds)."""
        recorders = [node.lookup_latency for node in self.nodes.values() if node.lookup_latency.count]
        total = sum(r.summary.total for r in recorders)
        count = sum(r.count for r in recorders)
        return total / count if count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # total_stored, not len(self): a repr must not trigger the distinct scan.
        return f"<SHHCCluster nodes={self.num_nodes} stored={self.total_stored}>"
