"""The SHHC cluster: partitioned hybrid hash nodes behind one lookup service.

:class:`SHHCCluster` owns the partitioner and the hybrid hash nodes and
offers the combined fingerprint store/lookup service of the paper:

* As a **library** (immediate mode) it implements the
  :class:`~repro.dedup.index.ChunkIndex` interface, so it drops into the
  dedup pipeline in place of a centralized index.
* As a **simulated deployment** it registers one RPC service per node on a
  :class:`~repro.network.rpc.RpcLayer`; web front-ends then send
  :class:`~repro.core.protocol.BatchLookupRequest` messages to individual
  nodes over the simulated fabric.

Replication (``ClusterConfig.replication_factor > 1``) is implemented by
writing new fingerprints to the owner and its successors on the partition
map; lookups go to the primary and fail over to replicas when the primary is
marked down (see :mod:`repro.core.replication`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..dedup.fingerprint import Fingerprint
from ..dedup.index import ChunkIndex, ChunkLocation, LookupResult
from ..network.rpc import RpcLayer
from ..simulation.engine import Simulator
from .batching import reassemble_replies, split_batch_by_owner
from .config import ClusterConfig
from .hash_node import HybridHashNode
from .metrics import ClusterMetrics, LoadBalanceReport
from .partition import ConsistentHashRing, Partitioner, RangePartitioner
from .protocol import BatchLookupReply, BatchLookupRequest, LookupReply, ServedFrom

__all__ = ["SHHCCluster"]


class SHHCCluster(ChunkIndex):
    """A scalable hybrid hash cluster (the paper's contribution)."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        sim: Optional[Simulator] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.sim = sim
        node_names = self.config.node_names
        if partitioner is not None:
            self.partitioner = partitioner
        elif self.config.virtual_nodes > 0:
            self.partitioner = ConsistentHashRing(node_names, self.config.virtual_nodes)
        else:
            self.partitioner = RangePartitioner(node_names)
        self.nodes: Dict[str, HybridHashNode] = {
            name: HybridHashNode(name, self.config.node, sim) for name in node_names
        }
        self._down: set = set()
        self.lookups = 0
        self.duplicates = 0

    # ------------------------------------------------------------------ membership
    @property
    def node_names(self) -> List[str]:
        return list(self.nodes.keys())

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> HybridHashNode:
        """Look up a node object by name."""
        return self.nodes[name]

    def mark_down(self, name: str) -> None:
        """Mark a node as failed; lookups fail over to replicas."""
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        self._down.add(name)

    def mark_up(self, name: str) -> None:
        """Bring a failed node back into rotation."""
        self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    # ------------------------------------------------------------------ routing
    def owner_of(self, fingerprint: Fingerprint) -> str:
        """Primary owner node for a fingerprint."""
        return self.partitioner.owner(fingerprint)

    def replica_set(self, fingerprint: Fingerprint) -> List[str]:
        """Owner plus successors, per the configured replication factor."""
        return self.partitioner.owners(fingerprint, self.config.replication_factor)

    def _serving_nodes(self, fingerprint: Fingerprint) -> List[str]:
        """Replica set with failed nodes filtered out (primary first)."""
        candidates = [n for n in self.replica_set(fingerprint) if n not in self._down]
        if not candidates:
            raise RuntimeError("no live replica available for fingerprint")
        return candidates

    # ------------------------------------------------------------------ ChunkIndex API
    def lookup(self, fingerprint: Fingerprint) -> LookupResult:
        """Combined lookup/insert through the cluster (immediate mode)."""
        reply = self.lookup_reply(fingerprint)
        self.lookups += 1
        if reply.is_duplicate:
            self.duplicates += 1
        return LookupResult(
            fingerprint=fingerprint,
            is_duplicate=reply.is_duplicate,
            location=ChunkLocation(),
            latency=reply.service_time,
            served_by=reply.node_id,
        )

    def lookup_reply(self, fingerprint: Fingerprint) -> LookupReply:
        """Protocol-level single lookup (exposes tier information)."""
        nodes = self._serving_nodes(fingerprint)
        primary_reply = self.nodes[nodes[0]].lookup(fingerprint)
        # Propagate new fingerprints to the remaining replicas.
        if not primary_reply.is_duplicate:
            for replica in nodes[1:]:
                self.nodes[replica].lookup(fingerprint)
        return primary_reply

    def lookup_batch(self, fingerprints: Iterable[Fingerprint]) -> List[LookupResult]:
        """Batch lookup preserving input order (immediate mode)."""
        fingerprints = list(fingerprints)
        replies = self.lookup_batch_replies(fingerprints)
        results: List[LookupResult] = []
        for reply in replies:
            self.lookups += 1
            if reply.is_duplicate:
                self.duplicates += 1
            results.append(
                LookupResult(
                    fingerprint=reply.fingerprint,
                    is_duplicate=reply.is_duplicate,
                    location=ChunkLocation(),
                    latency=reply.service_time,
                    served_by=reply.node_id,
                )
            )
        return results

    def lookup_batch_replies(self, fingerprints: Sequence[Fingerprint]) -> List[LookupReply]:
        """Protocol-level batch lookup: split by owner, query nodes, reassemble."""
        fingerprints = list(fingerprints)
        if not fingerprints:
            return []
        per_node = split_batch_by_owner(fingerprints, self.partitioner)
        gathered = []
        for node_name, (request, positions) in per_node.items():
            serving = node_name if node_name not in self._down else self._serving_nodes(request.fingerprints[0])[0]
            node_replies = self.nodes[serving].lookup_batch(request.fingerprints)
            if self.config.replication_factor > 1:
                for reply in node_replies:
                    if not reply.is_duplicate:
                        for replica in self.replica_set(reply.fingerprint)[1:]:
                            if replica != serving and replica not in self._down:
                                self.nodes[replica].lookup(reply.fingerprint)
            gathered.append((BatchLookupReply(replies=node_replies, node_id=serving), positions))
        return reassemble_replies(len(fingerprints), gathered)

    def __len__(self) -> int:
        """Distinct fingerprints stored across all nodes (primaries + replicas)."""
        return sum(len(node) for node in self.nodes.values())

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        """Read-only membership: checks the replica set without inserting."""
        return any(fingerprint in self.nodes[name] for name in self.replica_set(fingerprint))

    # ------------------------------------------------------------------ simulated mode
    def register_services(self, rpc: RpcLayer) -> None:
        """Expose each hash node as an RPC service on the simulated network."""
        for name, node in self.nodes.items():
            rpc.register(name, self._make_handler(node))

    def _make_handler(self, node: HybridHashNode):
        def _handle(request: BatchLookupRequest):
            if self.sim is None:
                replies = node.lookup_batch(list(request.fingerprints))
                reply = BatchLookupReply(replies=replies, node_id=node.node_id, batch_id=request.batch_id)
                return reply, reply.payload_bytes
            completion = node.serve_batch(request)
            wrapped = self.sim.event(f"{node.node_id}.reply")
            completion.add_callback(
                lambda event: wrapped.succeed((event.value, event.value.payload_bytes))
            )
            return wrapped

        return _handle

    # ------------------------------------------------------------------ reporting
    def metrics(self) -> ClusterMetrics:
        """Aggregated per-node statistics."""
        return ClusterMetrics.from_nodes(list(self.nodes.values()))

    def storage_distribution(self) -> LoadBalanceReport:
        """Hash entries stored per node (Figure 6)."""
        return self.metrics().storage_distribution()

    def duplicate_ratio(self) -> float:
        """Fraction of cluster lookups that found an existing fingerprint."""
        return self.duplicates / self.lookups if self.lookups else 0.0

    def mean_lookup_latency(self) -> float:
        """Mean per-fingerprint service time across nodes (seconds)."""
        recorders = [node.lookup_latency for node in self.nodes.values() if node.lookup_latency.count]
        total = sum(r.summary.total for r in recorders)
        count = sum(r.count for r in recorders)
        return total / count if count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SHHCCluster nodes={self.num_nodes} entries={len(self)}>"
