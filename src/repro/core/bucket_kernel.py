"""Fused per-batch lookup kernels for the hybrid hash node.

:meth:`~repro.core.hash_node.HybridHashNode._lookup_batch_core` already
hoists bound methods and settles counters per batch, but it still makes
three Python calls per non-cached fingerprint (bloom probe, store probe,
store insert) and re-derives the bloom hash words key by key.  This module
exec-generates the *entire* loop per bloom shape ``(num_bits, num_hashes)``
-- the same technique as the storage kernels -- with:

* the bloom probe unrolled inline over the packed batch hash words of a
  :class:`~repro.core.digest_batch.DigestBatch` (one ``struct.unpack`` for
  the whole batch, early exit on the first zero bit, the probe step only
  derived once the first bit passes);
* the SSD store probe and known-new insert inlined against the store's
  bucket dicts with the exact page/write-buffer arithmetic of
  :meth:`~repro.storage.hashstore.SSDHashStore.probe_pages` /
  :meth:`~repro.storage.hashstore.SSDHashStore.insert_new_pages`
  (the store hands its raw state to the kernel via
  :meth:`~repro.storage.hashstore.SSDHashStore.batch_state` and takes the
  deltas back via :meth:`~repro.storage.hashstore.SSDHashStore.settle_batch`);
* service times accumulated in the same float association order as the
  scalar loop, so replies stay byte-identical (pinned by
  tests/test_routed_batch_equivalence.py and the differential suite).

Two variants are generated per shape: a **reply** kernel that builds
:class:`~repro.core.protocol.LookupReply` objects (the cluster dispatch
path) and a **verdict** kernel that only emits duplicate booleans and the
new ``(digest, chunk_size)`` pairs (the serving worker's wire path, where
no ``Fingerprint`` or reply objects need to exist at all).

Columnar (numpy) kernel family
------------------------------
:func:`fused_columnar_kernels` generates a third family for the numpy
backend (see :mod:`repro.storage.npy`): instead of walking the bloom probe
sequence per key, one ``(num_hashes, n)`` gather prefetches the whole
batch's verdicts *and* the probe-index rows of the negative keys
(:meth:`~repro.storage.bloom.BloomFilter._prefetch_probe_np`), so no
hashing or modulo arithmetic survives in the per-key loop at all --
positives cost one list index, negatives set their bits straight from
the prefetched row.  Prefetched verdicts can go stale when an
intra-batch insert sets bits a later key happens to probe -- which would
silently flip its verdict, counters, and service time away from the
scalar kernels'.  The family stays byte-identical through a monotonicity
argument: bloom bits are only ever *set*, so a prefetched ``True`` can
never become wrong; a prefetched ``False`` is trusted as long as no
insert has happened yet (``dirty`` flag), and re-checked against the
live bits via its own prefetched index row (early-exit, no re-hash)
otherwise.  Negative keys OR in exactly the bits of their prefetched row
-- the same final bit state the scalar kernels' fused break-site insert
produces.  The per-key fallback tail (SSD probe, inserts, reply
construction) is shared verbatim with the scalar family.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from ..dedup.index import ChunkLocation, LookupResult
from ..storage.hashstore import _HASH64_MEMO, _HASH64_MEMO_MAX
from .protocol import LookupReply, ServedFrom

__all__ = ["fused_kernels", "fused_columnar_kernels", "FUSED_MAX_HASHES",
           "EMPTY_LOCATION"]

#: Shared empty location for hot-path :class:`LookupResult` construction;
#: :class:`ChunkLocation` is a frozen value object, so one instance serves
#: every result.
EMPTY_LOCATION = ChunkLocation()

#: Shapes with more probe rounds than this fall back to the scalar loop
#: (mirrors the storage kernels' unroll bound).
FUSED_MAX_HASHES = 16

_FUSED_CACHE: dict = {}
_COLUMNAR_CACHE: dict = {}


def _probe_block(num_hashes: int, pad: str) -> list:
    """Unrolled early-exit bloom probe fused with the negative-path insert.

    ``while 1`` + ``break`` gives the per-key early exit without a helper
    function call; the probe step is only computed after the first bit
    passes, so definite negatives (the common shortcut) pay one modulo.
    A key that misses any probe bit is definitely new, so the remaining
    bloom bits are set right at the break site: the bits already walked
    are known set, and a separate insert pass would re-derive index and
    step from scratch.  False positives need no insert at all -- every
    one of their bits is set by definition.
    """
    inner = pad + "    "
    tail = inner + "    "
    lines = [f"{pad}index = words[wi] % nb", f"{pad}while 1:"]
    for i in range(num_hashes):
        lines.append(f"{inner}if not bits[index >> 3] & (1 << (index & 7)):")
        lines.append(f"{tail}bits[index >> 3] |= 1 << (index & 7)")
        if i == 0 and num_hashes > 1:
            lines.append(f"{tail}step = (words[wi + 1] | 1) % nb")
        for _ in range(i + 1, num_hashes):
            lines.append(f"{tail}index += step")
            lines.append(f"{tail}if index >= nb: index -= nb")
            lines.append(f"{tail}bits[index >> 3] |= 1 << (index & 7)")
        lines.append(f"{tail}in_bloom = False")
        lines.append(f"{tail}break")
        if i < num_hashes - 1:
            if i == 0:
                lines.append(f"{inner}step = (words[wi + 1] | 1) % nb")
            lines.append(f"{inner}index += step")
            lines.append(f"{inner}if index >= nb: index -= nb")
    lines.append(f"{inner}in_bloom = True")
    lines.append(f"{inner}break")
    return lines


def _bucket_block(pad: str) -> list:
    """Memoized BLAKE2b placement + bucket dict resolve (hashstore inline)."""
    return [
        f"{pad}hash64 = memo_get(digest)",
        f"{pad}if hash64 is None:",
        f"{pad}    if len(memo) >= memo_max:",
        f"{pad}        memo.clear()",
        f"{pad}    hash64 = from_bytes(blake2b(digest, digest_size=8).digest(), 'big')",
        f"{pad}    memo[digest] = hash64",
        f"{pad}bucket = store_buckets[hash64 % store_num_buckets]",
    ]


def _reply_block(pad: str, index_expr: str, duplicate: str, served: str,
                 time_expr: str) -> list:
    return [
        f"{pad}reply = new_reply(reply_cls)",
        f"{pad}fields = reply.__dict__",
        f"{pad}fields['fingerprint'] = fingerprints[{index_expr}]",
        f"{pad}fields['is_duplicate'] = {duplicate}",
        f"{pad}fields['served_from'] = {served}",
        f"{pad}fields['node_id'] = node_id",
        f"{pad}fields['service_time'] = {time_expr}",
        f"{pad}out_append(reply)",
        f"{pad}times_append({time_expr})",
    ]


def _result_block(pad: str, duplicate: str, time_expr: str) -> list:
    """Build a :class:`LookupResult` and place it at its batch position."""
    return [
        f"{pad}result = new_result(result_cls)",
        f"{pad}fields = result.__dict__",
        f"{pad}fields['fingerprint'] = fingerprints[i]",
        f"{pad}fields['is_duplicate'] = {duplicate}",
        f"{pad}fields['location'] = empty_location",
        f"{pad}fields['latency'] = {time_expr}",
        f"{pad}fields['served_by'] = node_id",
        f"{pad}merged[positions[i]] = result",
        f"{pad}times_append({time_expr})",
    ]


def _cache_insert_block(pad: str) -> list:
    """Inlined :meth:`~repro.storage.lru.LRUCache.put_new` (known-absent key).

    Insertions/evictions are accumulated in locals and settled per batch by
    the caller; the eviction callback fires in order, exactly like the
    method it replaces.
    """
    return [
        f"{pad}cached[digest] = True",
        f"{pad}cache_insertions += 1",
        f"{pad}if len(cached) > cache_capacity:",
        f"{pad}    evicted = cache_popitem(False)",
        f"{pad}    cache_evictions += 1",
        f"{pad}    if on_evict is not None:",
        f"{pad}        on_evict(evicted[0], evicted[1])",
    ]


def _kernel_source(num_bits: int, num_hashes: int, variant: str,
                   columnar: bool = False) -> str:
    """Source of one fused kernel.

    ``variant`` is one of ``reply`` (LookupReply objects), ``verdict``
    (bools + new pairs, chunk sizes from a list/int), ``routed`` (bools +
    new pairs, chunk sizes off routed fingerprints) or ``result``
    (LookupResult objects written straight into the caller's merge slots;
    ``out_append`` carries the ``(positions, merged)`` pair).

    With ``columnar=True`` the per-key bloom probe walk is replaced by the
    prefetched-verdict protocol of the module docstring: one trailing
    parameter (``bloom_prefetch``, a lazy callable returning the whole
    batch's ``(verdicts, probe_rows)`` pair) and a ``dirty`` staleness
    flag.  Everything outside the bloom stage is emitted identically.
    """
    reply = variant == "reply"
    result = variant == "result"
    per_key = "chunk_sizes" if variant == "verdict" else "fingerprints"
    name = f"fused_{variant}_columnar_kernel" if columnar else f"fused_{variant}_kernel"
    lines = [
        f"def {name}(",
        f"    digests, hash_words, {per_key}, cached, move_to_end, cache_popitem,",
        "    on_evict, cache_capacity,",
        "    bits, store_buckets, store_num_buckets, entries_per_page,",
        "    write_buffer_pages, buffered, node_id, base_time, page_read_cost,",
        "    page_write_rand_cost, page_write_seq_cost, out_append, times_append,",
        "    new_append," + (" bloom_prefetch," if columnar else ""),
        "):",
        f"    nb = {num_bits}",
        "    memo = _MEMO",
        "    memo_get = memo.get",
        "    memo_max = _MEMO_MAX",
        "    blake2b = _blake2b",
        "    from_bytes = int.from_bytes",
        "    ram_hits = ssd_hits = new_entries = 0",
        "    bloom_negative_shortcuts = bloom_false_positives = 0",
        "    cache_insertions = cache_evictions = 0",
        "    total_ssd_time = 0.0",
        "    page_reads = page_writes = buffer_flushes = 0",
    ]
    if columnar:
        lines += ["    verdicts = None", "    dirty = 0"]
    else:
        lines.append("    words = None")
    if reply:
        lines += [
            "    new_reply = _new_reply",
            "    reply_cls = _reply_cls",
            "    served_ram = _served_ram",
            "    served_ssd = _served_ssd",
            "    served_new = _served_new",
        ]
    elif result:
        lines += [
            "    positions, merged = out_append",
            "    new_result = _new_result",
            "    result_cls = _result_cls",
            "    empty_location = _empty_location",
        ]
    elif variant == "verdict":
        lines.append("    scalar_size = type(chunk_sizes) is int")
    lines.append("    for i, digest in enumerate(digests):")
    # 1. RAM LRU probe.
    lines.append("        if digest in cached:")
    lines.append("            move_to_end(digest)")
    lines.append("            ram_hits += 1")
    if reply:
        lines += _reply_block("            ", "i", "True", "served_ram", "base_time")
    elif result:
        lines += _result_block("            ", "True", "base_time")
    else:
        lines.append("            out_append(True)")
        lines.append("            times_append(base_time)")
    lines.append("            continue")
    # 2. Bloom guard: either the unrolled per-key probe walk over the
    # packed batch words, or the columnar prefetched-verdict protocol
    # (both lazily derived: buckets answered entirely from RAM pay nothing).
    if columnar:
        lines.append("        if verdicts is None:")
        lines.append("            verdicts, probe_rows = bloom_prefetch()")
        # A prefetched True can never go stale (bits are only ever set);
        # a prefetched False is trusted until the first intra-batch insert,
        # then re-checked against the live bits via its own prefetched
        # index row -- early-exit on the first zero bit, no re-hashing.
        lines.append("        if verdicts[i]:")
        lines.append("            in_bloom = True")
        lines.append("        elif dirty:")
        lines.append("            for index in probe_rows[i]:")
        lines.append("                if not bits[index >> 3] & (1 << (index & 7)):")
        lines.append("                    in_bloom = False")
        lines.append("                    break")
        lines.append("            else:")
        lines.append("                in_bloom = True")
        lines.append("        else:")
        lines.append("            in_bloom = False")
    else:
        lines.append("        if words is None:")
        lines.append("            words = hash_words()")
        lines.append("        wi = i + i")
        lines += _probe_block(num_hashes, "        ")
    lines.append("        if in_bloom:")
    # 3. SSD probe (probe_pages inlined; bucket reused by the FP insert).
    lines += _bucket_block("            ")
    lines.append("            entries = len(bucket)")
    lines.append("            pages = -(-entries // entries_per_page) or 1")
    lines.append("            page_reads += pages")
    lines.append("            if pages == 1:")
    lines.append("                ssd_time = 0.0 + page_read_cost")
    lines.append("            else:")
    lines.append("                ssd_time = 0.0")
    lines.append("                for _ in range(pages):")
    lines.append("                    ssd_time += page_read_cost")
    lines.append("            if digest in bucket:")
    lines.append("                ssd_hits += 1")
    lines += _cache_insert_block("                ")
    lines.append("                service_time = base_time + ssd_time")
    if reply:
        lines += _reply_block(
            "                ", "i", "True", "served_ssd", "service_time"
        )
    elif result:
        lines += _result_block("                ", "True", "service_time")
    else:
        lines.append("                out_append(True)")
        lines.append("                times_append(service_time)")
    lines.append("                total_ssd_time += ssd_time")
    lines.append("                continue")
    lines.append("            bloom_false_positives += 1")
    lines.append("        else:")
    lines.append("            bloom_negative_shortcuts += 1")
    if columnar:
        # Definitely new: OR in exactly the bits of the prefetched probe
        # row -- the same final bit state the scalar family's fused
        # break-site insert leaves -- and mark the verdicts stale.
        lines.append("            for index in probe_rows[i]:")
        lines.append("                bits[index >> 3] |= 1 << (index & 7)")
        lines.append("            dirty = 1")
    lines.append("            ssd_time = 0.0")
    lines += _bucket_block("            ")
    # New fingerprint: cache + store insert (insert_new_pages inlined; the
    # bucket was resolved by whichever branch ran above, and the bloom bits
    # were already settled inside the probe block -- negatives set their
    # missing bits at the break site, false positives have every bit set).
    lines.append("        new_entries += 1")
    lines += _cache_insert_block("        ")
    if variant == "verdict":
        lines.append("        chunk_size = chunk_sizes if scalar_size else chunk_sizes[i]")
    else:
        lines.append("        chunk_size = fingerprints[i].chunk_size")
    lines.append("        bucket[digest] = chunk_size")
    if not reply:
        lines.append("        new_append((digest, chunk_size))")
    lines += [
        "        if write_buffer_pages > 0:",
        "            buffered += 1",
        "            if buffered >= entries_per_page:",
        "                pages = buffered // entries_per_page",
        "                if pages > write_buffer_pages:",
        "                    pages = write_buffer_pages",
        "                buffered -= pages * entries_per_page",
        "                page_writes += pages",
        "                buffer_flushes += 1",
        "                if pages == 1:",
        "                    insert_time = 0.0 + page_write_seq_cost",
        "                else:",
        "                    insert_time = 0.0",
        "                    for _ in range(pages):",
        "                        insert_time += page_write_seq_cost",
        "                ssd_time += insert_time",
        "        else:",
        "            page_writes += 1",
        "            insert_time = 0.0 + page_write_rand_cost",
        "            ssd_time += insert_time",
        "        service_time = base_time + ssd_time",
    ]
    if reply:
        lines += _reply_block("        ", "i", "False", "served_new", "service_time")
    elif result:
        lines += _result_block("        ", "False", "service_time")
    else:
        lines.append("        out_append(False)")
        lines.append("        times_append(service_time)")
    lines.append("        total_ssd_time += ssd_time")
    lines += [
        "    return (ram_hits, ssd_hits, new_entries, bloom_negative_shortcuts,",
        "            bloom_false_positives, total_ssd_time, page_reads,",
        "            page_writes, buffer_flushes, buffered,",
        "            cache_insertions, cache_evictions)",
    ]
    return "\n".join(lines)


def fused_kernels(num_bits: int, num_hashes: int) -> Optional[Tuple]:
    """``(reply, verdict, routed, result)`` kernels for a bloom shape.

    ``None`` means the shape cannot be unrolled (too many hash rounds) and
    the caller must use the scalar batch loop.  The ``routed`` variant is
    the verdict kernel over routed ``Fingerprint`` lists: chunk sizes are
    read off the fingerprints, and only for new entries, so the cluster
    path never materialises a chunk-size list.  The ``result`` variant
    additionally builds the cluster's ``LookupResult`` objects in the loop
    and writes them straight into the caller's merge slots.  Kernels are
    cached per shape; cluster nodes share parameters, so each shape
    compiles once.
    """
    if num_hashes > FUSED_MAX_HASHES or num_hashes < 1 or num_bits < 1:
        return None
    shape = (num_bits, num_hashes)
    kernels = _FUSED_CACHE.get(shape)
    if kernels is not None:
        return kernels
    namespace = {
        "_MEMO": _HASH64_MEMO,
        "_MEMO_MAX": _HASH64_MEMO_MAX,
        "_blake2b": hashlib.blake2b,
        "_new_reply": object.__new__,
        "_reply_cls": LookupReply,
        "_served_ram": ServedFrom.RAM,
        "_served_ssd": ServedFrom.SSD,
        "_served_new": ServedFrom.NEW,
        "_new_result": object.__new__,
        "_result_cls": LookupResult,
        "_empty_location": EMPTY_LOCATION,
    }
    for variant in ("reply", "verdict", "routed", "result"):
        exec(_kernel_source(num_bits, num_hashes, variant), namespace)  # noqa: S102 - static template
    kernels = (
        namespace["fused_reply_kernel"],
        namespace["fused_verdict_kernel"],
        namespace["fused_routed_kernel"],
        namespace["fused_result_kernel"],
    )
    _FUSED_CACHE[shape] = kernels
    return kernels


def fused_columnar_kernels(num_bits: int, num_hashes: int) -> Optional[Tuple]:
    """``(reply, verdict, routed, result)`` columnar kernels for a shape.

    Same contract and return tuple as :func:`fused_kernels`, but each
    kernel takes one extra trailing argument -- ``bloom_prefetch``, a lazy
    callable returning the batch's prefetched ``(verdicts, probe_rows)``
    pair (see :meth:`~repro.storage.bloom.BloomFilter._prefetch_probe_np`)
    that feeds the dirty re-check and the negative-path bit insert.  The caller
    (:class:`~repro.core.hash_node.HybridHashNode`) selects this family
    only when the numpy backend is active and the batch is at least
    ``REPRO_NUMPY_MIN_BATCH`` keys.  ``None`` for un-unrollable shapes,
    mirroring :func:`fused_kernels`.
    """
    if num_hashes > FUSED_MAX_HASHES or num_hashes < 1 or num_bits < 1:
        return None
    shape = (num_bits, num_hashes)
    kernels = _COLUMNAR_CACHE.get(shape)
    if kernels is not None:
        return kernels
    namespace = {
        "_MEMO": _HASH64_MEMO,
        "_MEMO_MAX": _HASH64_MEMO_MAX,
        "_blake2b": hashlib.blake2b,
        "_new_reply": object.__new__,
        "_reply_cls": LookupReply,
        "_served_ram": ServedFrom.RAM,
        "_served_ssd": ServedFrom.SSD,
        "_served_new": ServedFrom.NEW,
        "_new_result": object.__new__,
        "_result_cls": LookupResult,
        "_empty_location": EMPTY_LOCATION,
    }
    for variant in ("reply", "verdict", "routed", "result"):
        exec(  # noqa: S102 - static template
            _kernel_source(num_bits, num_hashes, variant, columnar=True), namespace
        )
    kernels = (
        namespace["fused_reply_columnar_kernel"],
        namespace["fused_verdict_columnar_kernel"],
        namespace["fused_routed_columnar_kernel"],
        namespace["fused_result_columnar_kernel"],
    )
    _COLUMNAR_CACHE[shape] = kernels
    return kernels
