"""Wire protocol between the web front-end tier and the hash cluster.

Requests carry fingerprints (singly or in batches); responses report, per
fingerprint, whether the chunk already exists in the cloud and which tier of
the hybrid node served the answer.  Message sizes are modelled explicitly so
the network substrate charges realistic transfer times -- the contrast
between per-fingerprint messages and batched messages is exactly what the
paper's Figure 5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Sequence

from ..dedup.fingerprint import FINGERPRINT_BYTES, Fingerprint

__all__ = [
    "ServedFrom",
    "LookupRequest",
    "LookupReply",
    "make_lookup_reply",
    "BatchLookupRequest",
    "BatchLookupReply",
    "REQUEST_OVERHEAD_BYTES",
    "REPLY_BYTES_PER_FINGERPRINT",
]

#: Fixed serialisation overhead of a lookup request (opcode, ids, lengths).
REQUEST_OVERHEAD_BYTES = 16

#: Bytes per fingerprint verdict in a reply (digest prefix + flags).
REPLY_BYTES_PER_FINGERPRINT = 9


class ServedFrom(str, Enum):
    """Which tier of the hybrid node answered a lookup."""

    RAM = "ram"
    SSD = "ssd"
    NEW = "new"  # fingerprint was not present anywhere; inserted as unique
    REPAIR = "repair"  # serving node missed, but a replica held the fingerprint (read repair)


@dataclass(frozen=True)
class LookupRequest:
    """Query for a single fingerprint."""

    fingerprint: Fingerprint
    client_id: str = ""

    @property
    def payload_bytes(self) -> int:
        return REQUEST_OVERHEAD_BYTES + FINGERPRINT_BYTES


@dataclass(frozen=True)
class LookupReply:
    """Verdict for a single fingerprint."""

    fingerprint: Fingerprint
    is_duplicate: bool
    served_from: ServedFrom
    node_id: str = ""
    service_time: float = 0.0

    @property
    def payload_bytes(self) -> int:
        return REQUEST_OVERHEAD_BYTES + REPLY_BYTES_PER_FINGERPRINT


def make_lookup_reply(
    fingerprint: Fingerprint,
    is_duplicate: bool,
    served_from: ServedFrom,
    node_id: str,
    service_time: float,
) -> LookupReply:
    """Hot-path :class:`LookupReply` constructor.

    A frozen dataclass pays one ``object.__setattr__`` per field on
    construction; at millions of replies that is a measurable share of the
    cluster lookup path.  This helper writes the instance ``__dict__``
    directly, producing an object field-, ``==``- and ``hash``-identical
    to the regular constructor.  It is the *reference implementation* of
    the construction pattern the hash node's batch loop and the cluster's
    result merge inline (a call frame per reply matters there); the
    helper-vs-constructor pin lives in
    tests/test_routed_batch_equivalence.py and the inlined sites are
    covered by the same file's field-equality assertions, so a new
    :class:`LookupReply` field breaks tests rather than silently
    desynchronizing.  Keep the field writes in sync with
    :class:`LookupReply`.
    """
    reply = object.__new__(LookupReply)
    fields = reply.__dict__
    fields["fingerprint"] = fingerprint
    fields["is_duplicate"] = is_duplicate
    fields["served_from"] = served_from
    fields["node_id"] = node_id
    fields["service_time"] = service_time
    return reply


@dataclass(frozen=True)
class BatchLookupRequest:
    """Query for a batch of fingerprints destined for one hash node.

    The web front-end aggregates client fingerprints and forwards them in
    batches (paper batch sizes: 1, 128, 2048) to amortise per-message network
    and CPU overhead while preserving stream locality.
    """

    fingerprints: Sequence[Fingerprint]
    client_id: str = ""
    batch_id: int = 0

    def __post_init__(self) -> None:
        if not self.fingerprints:
            raise ValueError("a batch must contain at least one fingerprint")

    def __len__(self) -> int:
        return len(self.fingerprints)

    @property
    def payload_bytes(self) -> int:
        return REQUEST_OVERHEAD_BYTES + FINGERPRINT_BYTES * len(self.fingerprints)


@dataclass(frozen=True)
class BatchLookupReply:
    """Verdicts for a batch, in the same order as the request."""

    replies: Sequence[LookupReply]
    node_id: str = ""
    batch_id: int = 0

    def __len__(self) -> int:
        return len(self.replies)

    @property
    def payload_bytes(self) -> int:
        return REQUEST_OVERHEAD_BYTES + REPLY_BYTES_PER_FINGERPRINT * len(self.replies)

    @property
    def duplicates(self) -> int:
        return sum(1 for reply in self.replies if reply.is_duplicate)

    @property
    def uniques(self) -> int:
        return len(self.replies) - self.duplicates

    def unique_fingerprints(self) -> List[Fingerprint]:
        """Fingerprints the client must upload (not yet in the cloud)."""
        return [reply.fingerprint for reply in self.replies if not reply.is_duplicate]
