"""Dynamic membership: adding and removing hash nodes with data migration.

The paper lists "dynamic resource scaling" as future work (§V); this module
implements it as the natural extension of the cluster design.  When a node
joins or leaves, the partition map changes and the fingerprints whose
*replica set* changed are migrated between nodes.  The manager reports
exactly how much data moved — split into primary moves, replica copies and
replica drops — which the scaling ablation and the ``elasticity`` scenario
use to compare partitioners and quantify replication traffic under churn.

Replica-aware migration
-----------------------
With ``replication_factor = k`` every fingerprint lives on the first *k*
live nodes of its successor walk (:meth:`ReplicationController.desired_nodes`
— the same definition the anti-entropy repair and the serving-side batch
split :func:`~repro.core.batching.split_batch_by_replica_set` use, so the
three layers always agree on placement).  A membership change recomputes
that desired set per stored digest and touches **only the fingerprints
whose set changed**:

* a copy is created on each desired member that lacks one (counted as a
  *primary move* when the member is the new primary, a *replica copy*
  otherwise), reading from any live current holder;
* copies on live nodes that left the desired set are dropped (*replica
  drops*) — but only after the new copies exist, so the distinct count is
  conserved at every instant.

Crash consistency
-----------------
Every change writes a WAL intent record (``add_node``/``remove_node``)
before mutating the cluster and a matching ``*_done`` record after the
migration.  The migration itself is idempotent (copies are puts, drops are
recomputed from the current map), so :meth:`MembershipManager.recover`
can replay an interrupted change from the WAL: any intent without its done
marker is re-applied against whatever state survived the crash and then
marked done.

Churn plans
-----------
:class:`ChurnPlan` is the membership analog of
:class:`~repro.core.fault_injection.FaultPlan`: a declarative, serializable
description of a join/leave schedule that experiment specs can carry
(``{"kind": "join_leave", "events": 6}``) and the ``elasticity`` preset
materializes against a concrete run horizon.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..dedup.fingerprint import FINGERPRINT_BYTES, Fingerprint
from ..storage.wal import WriteAheadLog
from .cluster import SHHCCluster
from .hash_node import HybridHashNode
from .replication import ReplicationController

__all__ = ["MigrationReport", "MembershipManager", "ChurnEvent", "ChurnPlan"]

#: Actions a churn event may carry.
JOIN = "join"
LEAVE = "leave"
_CHURN_ACTIONS = (JOIN, LEAVE)


@dataclass
class MigrationReport:
    """Outcome of one membership change.

    ``entries_moved`` counts the copies created (primary moves plus replica
    copies) — for ``replication_factor == 1`` this is exactly the classic
    "entries that changed owner" number the scaling ablation reports.
    """

    action: str
    node: str
    entries_before: int
    entries_moved: int
    source_breakdown: Dict[str, int]
    replication_factor: int = 1
    #: Copies created on a fingerprint's *new primary* owner.
    primary_moves: int = 0
    #: Copies created on non-primary members of the new replica set.
    replica_copies: int = 0
    #: Copies dropped from live nodes that left the replica set.
    replica_drops: int = 0
    #: Digests that needed a copy but had no live holder to read from
    #: (their data was already lost to a crash; migration cannot restore it).
    unreachable: int = 0
    #: True when this report was produced by WAL replay after a crash.
    recovered: bool = False

    @property
    def moved_fraction(self) -> float:
        """Share of pre-change entries that had to move."""
        return self.entries_moved / self.entries_before if self.entries_before else 0.0


class MembershipManager:
    """Coordinates node join/leave and the resulting replica-aware migration."""

    def __init__(self, cluster: SHHCCluster, wal: Optional[WriteAheadLog] = None) -> None:
        self.cluster = cluster
        self.wal = wal if wal is not None else WriteAheadLog()
        self.controller = ReplicationController(cluster)
        self.reports: List[MigrationReport] = []

    # -- joins --------------------------------------------------------------------------
    def add_node(self, node_id: str) -> MigrationReport:
        """Add a new empty node and rebuild the replica sets it now joins."""
        cluster = self.cluster
        if node_id in cluster.nodes:
            raise ValueError(f"node {node_id!r} already exists")
        entries_before = len(cluster)
        self.wal.append("add_node", node=node_id)
        self._install_node(node_id)
        report = self._rebuild("add", node_id, entries_before)
        self.reports.append(report)
        self.wal.append("add_node_done", node=node_id, moved=report.entries_moved)
        return report

    # -- leaves -------------------------------------------------------------------------
    def remove_node(self, node_id: str) -> MigrationReport:
        """Drain a node's replica responsibilities to the survivors and remove it."""
        cluster = self.cluster
        if node_id not in cluster.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        if len(cluster.nodes) == 1:
            raise ValueError("cannot remove the last node")
        entries_before = len(cluster)
        self.wal.append("remove_node", node=node_id)
        orphans, lost_candidates = self._uninstall_node(node_id)
        report = self._rebuild(
            "remove", node_id, entries_before, orphans=orphans,
            lost_candidates=lost_candidates,
        )
        self.reports.append(report)
        self.wal.append("remove_node_done", node=node_id, moved=report.entries_moved)
        return report

    # -- crash recovery ----------------------------------------------------------------
    def recover(self) -> List[MigrationReport]:
        """Complete membership changes the WAL shows as begun but unfinished.

        Scans the log for ``add_node``/``remove_node`` intents without a
        matching ``*_done`` marker, re-applies each against the current
        cluster state (the migration is idempotent, so work that happened
        before the crash is simply kept) and appends the missing done
        record.  Returns one report per completed change.
        """
        open_ops: Dict[Tuple[str, str], bool] = {}
        for record in self.wal.replay():
            kind = record.kind
            if kind in ("add_node", "remove_node"):
                open_ops[(kind, str(record["node"]))] = True
            elif kind in ("add_node_done", "remove_node_done"):
                open_ops.pop((kind[: -len("_done")], str(record["node"])), None)
        reports: List[MigrationReport] = []
        for kind, node_id in list(open_ops):
            entries_before = len(self.cluster)
            if kind == "add_node":
                if node_id not in self.cluster.nodes:
                    self._install_node(node_id)
                elif node_id not in self.cluster.partitioner.nodes():
                    self.cluster.partitioner.add_node(node_id)
                report = self._rebuild("add", node_id, entries_before)
            else:
                orphans: Dict[bytes, object] = {}
                lost_candidates: set = set()
                if node_id in self.cluster.nodes:
                    orphans, lost_candidates = self._uninstall_node(node_id)
                elif node_id in self.cluster.partitioner.nodes():
                    # Crash landed between the node-dict removal and the
                    # partitioner update (or vice versa); finish the teardown.
                    self.cluster.partitioner.remove_node(node_id)
                report = self._rebuild(
                    "remove", node_id, entries_before, orphans=orphans,
                    lost_candidates=lost_candidates,
                )
            report.recovered = True
            self.reports.append(report)
            self.wal.append(f"{kind}_done", node=node_id, moved=report.entries_moved, recovered=True)
            reports.append(report)
        return reports

    # -- the migration core -------------------------------------------------------------
    def _install_node(self, node_id: str) -> None:
        cluster = self.cluster
        cluster.nodes[node_id] = HybridHashNode(node_id, cluster.config.node, cluster.sim)
        cluster.partitioner.add_node(node_id)

    def _uninstall_node(self, node_id: str) -> Tuple[Dict[bytes, object], set]:
        """Detach a node; returns ``(readable entries, lost-copy candidates)``.

        A node that is marked down at removal time (decommissioning a dead
        member) has an unreadable store: its entries are *not* exported.
        Its digests are returned as lost-copy candidates instead — the ones
        with no surviving copy elsewhere surface as ``unreachable`` in the
        report (with ``replication_factor >= 2`` the survivors hold copies,
        so nothing is lost).
        """
        cluster = self.cluster
        departing = cluster.nodes[node_id]
        down = cluster.is_down(node_id)
        exported = [] if down else departing.export_entries()
        # A digest whose only copy sat on the dead node is lost; report it.
        lost_candidates = (
            {digest for digest, _value in departing.export_entries()} if down else set()
        )
        if node_id in cluster.partitioner.nodes():
            # May already be gone when recover() replays a crash that landed
            # between the partitioner update and the node-dict removal.
            cluster.partitioner.remove_node(node_id)
        del cluster.nodes[node_id]
        cluster.mark_up(node_id)  # clear any stale down-marker
        return dict(exported), lost_candidates

    def _rebuild(
        self,
        action: str,
        node_id: str,
        entries_before: int,
        orphans: Optional[Mapping[bytes, object]] = None,
        lost_candidates: Optional[set] = None,
    ) -> MigrationReport:
        """Incrementally rebuild replica sets after the partition map changed.

        Only fingerprints whose desired set differs from their current
        holders are touched.  Copies are created before drops, so every
        digest keeps at least one live copy throughout.  ``orphans`` carries
        the entries of a departing node (holder set empty after removal);
        ``lost_candidates`` the digests of a *down* departing node, counted
        as ``unreachable`` when no surviving copy exists.
        """
        cluster = self.cluster
        placement: Dict[bytes, Set[str]] = {}
        values: Dict[bytes, object] = {}
        for name, node in cluster.nodes.items():
            for digest, value in node.export_entries():
                placement.setdefault(digest, set()).add(name)
                values.setdefault(digest, value)
        for digest, value in (orphans or {}).items():
            placement.setdefault(digest, set())
            values.setdefault(digest, value)

        by_target = action == "remove"
        breakdown: Dict[str, int] = {}
        # Copy traffic per (source, target) pair, for the cluster's optional
        # control-plane cost model: each pair becomes one sized transfer over
        # the simulated fabric plus export/import CPU on both ends.
        transfers: Dict[Tuple[str, str], int] = {}
        primary_moves = replica_copies = replica_drops = 0
        unreachable = sum(
            1 for digest in (lost_candidates or ()) if digest not in placement
        )
        for digest, holders in placement.items():
            value = values[digest]
            fingerprint = self._as_fingerprint(digest, value)
            desired = self.controller.desired_nodes(fingerprint)
            if not desired:  # every node down: nothing can move
                continue
            missing = [n for n in desired if n not in holders]
            if missing:
                live_holders = sorted(n for n in holders if not cluster.is_down(n))
                if live_holders:
                    source = live_holders[0]
                elif orphans is not None and digest in orphans:
                    source = node_id  # read from the live departing node
                else:
                    unreachable += 1
                    continue
                for target in missing:
                    cluster.nodes[target].import_entries([(digest, value)])
                    if target == desired[0]:
                        primary_moves += 1
                    else:
                        replica_copies += 1
                    key = target if by_target else source
                    breakdown[key] = breakdown.get(key, 0) + 1
                    pair = (source, target)
                    transfers[pair] = transfers.get(pair, 0) + 1
            for extra in sorted(holders - set(desired)):
                if cluster.is_down(extra):
                    continue  # unreadable store; recovery repair reconciles it
                if cluster.nodes[extra].remove_entry(digest):
                    replica_drops += 1

        # Charge the copy traffic to the cluster's cost model (no-op when
        # disabled): migration CPU and fabric time then contend with lookups.
        cluster._charge_migration(transfers)

        return MigrationReport(
            action=action,
            node=node_id,
            entries_before=entries_before,
            entries_moved=primary_moves + replica_copies,
            source_breakdown=breakdown,
            replication_factor=cluster.config.replication_factor,
            primary_moves=primary_moves,
            replica_copies=replica_copies,
            replica_drops=replica_drops,
            unreachable=unreachable,
        )

    # -- helpers -------------------------------------------------------------------------
    @staticmethod
    def _as_fingerprint(digest: bytes, value) -> Fingerprint:
        chunk_size = value if isinstance(value, int) else 0
        if len(digest) != FINGERPRINT_BYTES:
            digest = digest.ljust(FINGERPRINT_BYTES, b"\0")[:FINGERPRINT_BYTES]
        return Fingerprint(digest=digest, chunk_size=chunk_size)

    # -- reporting ----------------------------------------------------------------------
    def total_moved(self) -> int:
        """Entries moved across all membership changes so far."""
        return sum(report.entries_moved for report in self.reports)

    def total_replica_copies(self) -> int:
        """Replica-copy traffic across all membership changes so far."""
        return sum(report.replica_copies for report in self.reports)


# ------------------------------------------------------------------------- churn plans
@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change: a node joins or leaves at ``time``."""

    time: float
    action: str

    def __post_init__(self) -> None:
        if self.action not in _CHURN_ACTIONS:
            raise ValueError(f"action must be one of {_CHURN_ACTIONS}, got {self.action!r}")
        if self.time < 0:
            raise ValueError("churn event time must be >= 0")


@dataclass(frozen=True)
class ChurnPlan:
    """A declarative, serializable membership-churn scenario.

    Where the elasticity runner scripts concrete (time, action) events, a
    plan describes the *shape* of the churn — how many events, growing or
    shrinking — and is materialized against a run's time horizon by
    :meth:`schedule`.  That makes churn spec-addressable the same way
    :class:`~repro.core.fault_injection.FaultPlan` makes faults
    spec-addressable.

    Kinds
    -----
    ``join_leave``
        Alternating join/leave events starting with a join (the cluster
        oscillates around its initial size).
    ``grow``
        Joins only (scale-out).
    ``shrink``
        Leaves only (scale-in; the runner refuses to shrink below two
        nodes).
    """

    kind: str = "join_leave"
    events: int = 0
    start: float = 1.0

    KINDS = ("join_leave", "grow", "shrink")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {self.kind!r}")
        if self.events < 0:
            raise ValueError("events must be >= 0")
        if self.start < 0:
            raise ValueError("start must be >= 0")

    # -- named constructors -----------------------------------------------------------
    @classmethod
    def none(cls) -> "ChurnPlan":
        """A churn-free plan."""
        return cls(events=0)

    @classmethod
    def join_leave(cls, events: int, start: float = 1.0) -> "ChurnPlan":
        """Alternating joins and leaves, ``events`` changes in total."""
        return cls(kind="join_leave", events=events, start=start)

    @classmethod
    def grow(cls, events: int, start: float = 1.0) -> "ChurnPlan":
        """``events`` consecutive joins."""
        return cls(kind="grow", events=events, start=start)

    @classmethod
    def shrink(cls, events: int, start: float = 1.0) -> "ChurnPlan":
        """``events`` consecutive leaves."""
        return cls(kind="shrink", events=events, start=start)

    # -- materialization --------------------------------------------------------------
    @property
    def has_churn(self) -> bool:
        return self.events > 0

    def schedule(self, horizon: float) -> List[ChurnEvent]:
        """Concrete churn events evenly spaced over ``[start, horizon)``."""
        if not self.has_churn:
            return []
        if horizon <= self.start:
            raise ValueError(
                f"horizon {horizon:g} leaves no room for churn starting at t={self.start:g}"
            )
        step = (horizon - self.start) / self.events
        out: List[ChurnEvent] = []
        for index in range(self.events):
            if self.kind == "grow":
                action = JOIN
            elif self.kind == "shrink":
                action = LEAVE
            else:
                action = JOIN if index % 2 == 0 else LEAVE
            out.append(ChurnEvent(time=self.start + index * step, action=action))
        return out

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChurnPlan":
        unknown = set(payload) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(f"unknown ChurnPlan keys: {sorted(unknown)}")
        return cls(**payload)
