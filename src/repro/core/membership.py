"""Dynamic membership: adding and removing hash nodes with data migration.

The paper lists "dynamic resource scaling" as future work (§V); this module
implements it as the natural extension of the cluster design.  When a node
joins or leaves, the partition map changes and the fingerprints whose owner
changed are migrated between nodes.  The manager reports exactly how much
data moved, which the scaling ablation benchmark uses to compare the range
partitioner (full re-shard) against consistent hashing (1/N movement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..dedup.fingerprint import FINGERPRINT_BYTES, Fingerprint
from ..storage.wal import WriteAheadLog
from .cluster import SHHCCluster
from .hash_node import HybridHashNode

__all__ = ["MigrationReport", "MembershipManager"]


@dataclass
class MigrationReport:
    """Outcome of one membership change."""

    action: str
    node: str
    entries_before: int
    entries_moved: int
    source_breakdown: Dict[str, int]

    @property
    def moved_fraction(self) -> float:
        """Share of pre-change entries that had to move."""
        return self.entries_moved / self.entries_before if self.entries_before else 0.0


class MembershipManager:
    """Coordinates node join/leave and the resulting data migration."""

    def __init__(self, cluster: SHHCCluster, wal: Optional[WriteAheadLog] = None) -> None:
        self.cluster = cluster
        self.wal = wal if wal is not None else WriteAheadLog()
        self.reports: List[MigrationReport] = []

    # -- joins --------------------------------------------------------------------------
    def add_node(self, node_id: str) -> MigrationReport:
        """Add a new empty node and migrate the keys it now owns."""
        cluster = self.cluster
        if node_id in cluster.nodes:
            raise ValueError(f"node {node_id!r} already exists")
        entries_before = len(cluster)
        self.wal.append("add_node", node=node_id)

        new_node = HybridHashNode(node_id, cluster.config.node, cluster.sim)
        cluster.nodes[node_id] = new_node
        cluster.partitioner.add_node(node_id)

        moved_by_source: Dict[str, int] = {}
        for source_name, source_node in list(cluster.nodes.items()):
            if source_name == node_id:
                continue
            to_move = self._entries_not_owned_by(source_node, source_name)
            for digest, value in to_move:
                owner = cluster.partitioner.owner(self._as_fingerprint(digest, value))
                owner_node = cluster.nodes[owner]
                if owner_node is not source_node:
                    owner_node.import_entries([(digest, value)])
                    source_node.remove_entry(digest)
                    moved_by_source[source_name] = moved_by_source.get(source_name, 0) + 1

        report = MigrationReport(
            action="add",
            node=node_id,
            entries_before=entries_before,
            entries_moved=sum(moved_by_source.values()),
            source_breakdown=moved_by_source,
        )
        self.reports.append(report)
        self.wal.append("add_node_done", node=node_id, moved=report.entries_moved)
        return report

    # -- leaves -------------------------------------------------------------------------
    def remove_node(self, node_id: str) -> MigrationReport:
        """Drain a node's entries to their new owners and remove it."""
        cluster = self.cluster
        if node_id not in cluster.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        if len(cluster.nodes) == 1:
            raise ValueError("cannot remove the last node")
        entries_before = len(cluster)
        self.wal.append("remove_node", node=node_id)

        departing = cluster.nodes[node_id]
        exported = departing.export_entries()
        cluster.partitioner.remove_node(node_id)
        del cluster.nodes[node_id]
        cluster.mark_up(node_id)  # clear any stale down-marker

        moved_by_target: Dict[str, int] = {}
        for digest, value in exported:
            owner = cluster.partitioner.owner(self._as_fingerprint(digest, value))
            cluster.nodes[owner].import_entries([(digest, value)])
            moved_by_target[owner] = moved_by_target.get(owner, 0) + 1

        # The new partition map may also reassign ranges between the
        # surviving nodes (always true for the range partitioner); move those
        # entries too so every fingerprint lives at its current owner.
        for source_name, source_node in list(cluster.nodes.items()):
            for digest, value in self._entries_not_owned_by(source_node, source_name):
                owner = cluster.partitioner.owner(self._as_fingerprint(digest, value))
                cluster.nodes[owner].import_entries([(digest, value)])
                source_node.remove_entry(digest)
                moved_by_target[owner] = moved_by_target.get(owner, 0) + 1

        report = MigrationReport(
            action="remove",
            node=node_id,
            entries_before=entries_before,
            entries_moved=sum(moved_by_target.values()),
            source_breakdown=moved_by_target,
        )
        self.reports.append(report)
        self.wal.append("remove_node_done", node=node_id, moved=report.entries_moved)
        return report

    # -- helpers -------------------------------------------------------------------------
    def _entries_not_owned_by(self, node: HybridHashNode, node_name: str):
        """Entries on ``node`` whose owner under the current map differs."""
        misplaced = []
        for digest, value in node.export_entries():
            owner = self.cluster.partitioner.owner(self._as_fingerprint(digest, value))
            if owner != node_name:
                misplaced.append((digest, value))
        return misplaced

    @staticmethod
    def _as_fingerprint(digest: bytes, value) -> Fingerprint:
        chunk_size = value if isinstance(value, int) else 0
        if len(digest) != FINGERPRINT_BYTES:
            digest = digest.ljust(FINGERPRINT_BYTES, b"\0")[:FINGERPRINT_BYTES]
        return Fingerprint(digest=digest, chunk_size=chunk_size)

    # -- reporting ----------------------------------------------------------------------
    def total_moved(self) -> int:
        """Entries moved across all membership changes so far."""
        return sum(report.entries_moved for report in self.reports)
