"""Contiguous digest-batch buffers for the vectorized data plane.

A routed sub-batch used to travel as a list of :class:`Fingerprint`
objects, and every layer below re-derived the same per-key facts from
them: the 20-byte digest, the two 64-bit hash words the bloom filter and
cuckoo table probe with (``int.from_bytes`` of a 160-bit integer per key
on the old path), and the chunk size.  :class:`DigestBatch` carries the
batch as one packed buffer -- the 20-byte digests back to back -- plus
parallel chunk sizes, and derives *all* hash words for the whole batch
with a single ``struct.unpack`` call:

* bytes ``[0:8)`` of each digest are the bloom/cuckoo ``h1`` word
  (equal to ``(int.from_bytes(digest) >> 96)`` for a 20-byte digest);
* bytes ``[8:16)`` are the raw ``h2`` word (``(whole >> 32) & 2**64-1``);
  the bloom step is ``(h2 | 1) % num_bits`` and the cuckoo second bucket
  is ``h2 % num_buckets`` -- exactly what the retained scalar kernels
  compute, so verdicts stay bit-identical.

Backend selection: when numpy is importable (the optional ``perf``
extra) and not suppressed via ``REPRO_FORCE_NO_NUMPY=1``,
:meth:`DigestBatch.hash_words_np` exposes the same word pairs as one
``(n, 2)`` ``uint64`` array derived from a single ``np.frombuffer`` view
of the packed blob, and the fused node kernels switch to the columnar
bloom/cuckoo kernels for buckets of at least ``REPRO_NUMPY_MIN_BATCH``
keys (default 64).  Without numpy every path falls back to the packed
pure-Python kernels above, byte-identically -- numpy is never required
(see :mod:`repro.storage.npy` for the contract).  The buffer layout is
also what the shared-memory trace cache stores, so a sweep worker can
rehydrate a workload from a segment without re-running the generator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..dedup.fingerprint import Fingerprint
from ..storage.npy import HAVE_NUMPY
from ..storage.packing import DIGEST_BYTES, digest_hash_words, digest_hash_words_np

__all__ = ["DigestBatch", "DIGEST_BYTES", "digest_hash_words"]


class DigestBatch:
    """A batch of fingerprints as one contiguous digest buffer.

    Construct via :meth:`from_fingerprints` (cluster dispatch: the
    ``Fingerprint`` objects are kept for reply construction) or
    :meth:`from_blob` (serving workers: digests arrive already packed on
    the wire and no ``Fingerprint`` objects are ever built).

    ``chunk_sizes`` is either one ``int`` applied to every digest or a
    per-digest sequence.  ``hash_words()`` is computed lazily and cached:
    buckets whose keys are all answered from the RAM LRU never pay for it.
    """

    __slots__ = ("digests", "blob", "_chunk_sizes", "_fingerprints", "_words",
                 "_words_np")

    def __init__(
        self,
        digests: List[bytes],
        chunk_sizes: Union[int, Sequence[int], None],
        blob: Optional[bytes] = None,
        fingerprints: Optional[List[Fingerprint]] = None,
    ) -> None:
        self.digests = digests
        self.blob = blob
        self._chunk_sizes = chunk_sizes
        self._fingerprints = fingerprints
        self._words: Optional[tuple] = None
        self._words_np = None

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_fingerprints(cls, fingerprints: Sequence[Fingerprint],
                          digests: Optional[List[bytes]] = None) -> "DigestBatch":
        """Wrap routed fingerprints; ``digests`` may be pre-extracted.

        Chunk sizes stay on the fingerprints until :attr:`chunk_sizes` is
        actually read -- the routed verdict kernel reads them off the
        fingerprints directly (new entries only), so the common cluster
        path never builds the list.
        """
        if type(fingerprints) is not list:
            fingerprints = list(fingerprints)
        if digests is None:
            digests = [fingerprint.digest for fingerprint in fingerprints]
        return cls(digests, None, fingerprints=fingerprints)

    @classmethod
    def from_blob(cls, blob: bytes,
                  chunk_sizes: Union[int, Sequence[int]]) -> "DigestBatch":
        """Wrap a wire blob of back-to-back 20-byte digests."""
        if len(blob) % DIGEST_BYTES:
            raise ValueError(
                f"digest blob of {len(blob)} bytes is not a multiple of {DIGEST_BYTES}"
            )
        digests = [blob[start:start + DIGEST_BYTES]
                   for start in range(0, len(blob), DIGEST_BYTES)]
        if not isinstance(chunk_sizes, int) and len(chunk_sizes) != len(digests):
            raise ValueError(
                f"got {len(chunk_sizes)} chunk sizes for {len(digests)} digests"
            )
        return cls(digests, chunk_sizes, blob=blob)

    # -- derived views ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.digests)

    @property
    def chunk_sizes(self) -> Union[int, Sequence[int]]:
        """Per-digest chunk sizes (materialised on first access)."""
        sizes = self._chunk_sizes
        if sizes is None:
            sizes = self._chunk_sizes = [
                fingerprint.chunk_size for fingerprint in self._fingerprints
            ]
        return sizes

    def packed(self) -> bytes:
        """The contiguous digest buffer (built once if constructed from lists)."""
        blob = self.blob
        if blob is None:
            blob = self.blob = b"".join(self.digests)
        return blob

    def hash_words(self) -> tuple:
        """Flat ``(h1, h2)`` word pairs for every digest (cached)."""
        words = self._words
        if words is None:
            words = self._words = digest_hash_words(self.packed(), len(self.digests))
        return words

    def hash_words_np(self):
        """``(n, 2)`` ``uint64`` (h1, h2) array for every digest (cached).

        Value-identical to :meth:`hash_words` reshaped two-per-row; only
        available when the numpy backend is active (``HAVE_NUMPY``), else
        raises :class:`RuntimeError` -- callers gate on the backend.
        """
        words = self._words_np
        if words is None:
            if not HAVE_NUMPY:
                raise RuntimeError("numpy backend unavailable (see repro.storage.npy)")
            words = self._words_np = digest_hash_words_np(
                self.packed(), len(self.digests)
            )
        return words

    def chunk_size_of(self, index: int) -> int:
        sizes = self.chunk_sizes
        return sizes if isinstance(sizes, int) else sizes[index]

    def fingerprints(self) -> List[Fingerprint]:
        """Materialize ``Fingerprint`` objects (lazily, for fallback paths)."""
        fingerprints = self._fingerprints
        if fingerprints is None:
            # Bypass __init__: the 20-byte invariant is enforced by the
            # blob slicing, mirroring the serving worker's hot path.
            sizes = self.chunk_sizes
            scalar = isinstance(sizes, int)
            new_fp = object.__new__
            fp_cls = Fingerprint
            fingerprints = []
            append = fingerprints.append
            for index, digest in enumerate(self.digests):
                fingerprint = new_fp(fp_cls)
                fields = fingerprint.__dict__
                fields["digest"] = digest
                fields["chunk_size"] = sizes if scalar else sizes[index]
                append(fingerprint)
            self._fingerprints = fingerprints
        return fingerprints

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DigestBatch n={len(self.digests)}>"
