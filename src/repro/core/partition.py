"""Partitioning the fingerprint space across hash nodes.

SHHC distributes fingerprints over nodes "like the Chord system" but in a
structured, relatively static environment (§III.B): each node owns a range of
the hash space.  Two partitioners are provided:

* :class:`RangePartitioner` -- splits the fingerprint space into equal,
  contiguous ranges, one (or more) per node.  Because SHA-1 output is
  uniform, this yields the near-perfect 25 %/node balance of Figure 6.
* :class:`ConsistentHashRing` -- classic consistent hashing with virtual
  nodes.  Node joins/leaves move only the keys adjacent to the affected
  tokens, which is what the membership/scaling extension (future work in the
  paper, ablation C here) builds on.

Both expose the same interface: :meth:`owner`, :meth:`owners` (for
replication), :meth:`add_node`, :meth:`remove_node`, :meth:`nodes`.
"""

from __future__ import annotations

import bisect
import hashlib
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from ..dedup.fingerprint import Fingerprint

__all__ = ["Partitioner", "RangePartitioner", "ConsistentHashRing", "key_of_digest"]

#: Size of the partitioned key space: the top 64 bits of the SHA-1 digest.
KEY_SPACE_BITS = 64
KEY_SPACE_SIZE = 1 << KEY_SPACE_BITS


def _key_of(fingerprint: Fingerprint) -> int:
    """Map a fingerprint to its position in the partitioned key space."""
    return fingerprint.prefix_int(KEY_SPACE_BITS)


def key_of_digest(digest: bytes) -> int:
    """Key-space position straight from a raw digest (hot-path variant).

    Identical to ``Fingerprint.prefix_int(KEY_SPACE_BITS)``: the top 64
    bits of a (>= 8 byte) digest are its first eight bytes.
    """
    return int.from_bytes(digest[:8], "big")


class Partitioner(ABC):
    """Maps fingerprints to owning nodes (and replica sets).

    Every partitioner carries a **membership epoch**: a counter bumped by
    each :meth:`add_node`/:meth:`remove_node`.  Routing caches (the
    cluster's digest -> replica-set cache) key their validity on it, so a
    membership change -- elastic scaling, chaos-test churn -- invalidates
    stale routes without the partitioner knowing who caches what.
    """

    #: Class-level default so subclasses need not call ``__init__``; the
    #: first bump creates the instance attribute.
    _epoch: int = 0

    @property
    def epoch(self) -> int:
        """Membership epoch; changes whenever the node set changes."""
        return self._epoch

    def bump_epoch(self) -> None:
        """Invalidate routing caches (called on every membership change)."""
        self._epoch = self._epoch + 1

    @abstractmethod
    def owner(self, fingerprint: Fingerprint) -> str:
        """Name of the node owning ``fingerprint``."""

    @abstractmethod
    def owners(self, fingerprint: Fingerprint, count: int) -> List[str]:
        """The ``count`` distinct nodes responsible for ``fingerprint``."""

    @abstractmethod
    def nodes(self) -> List[str]:
        """All node names currently in the partition map."""

    @abstractmethod
    def add_node(self, node: str) -> None:
        """Add a node to the partition map."""

    @abstractmethod
    def remove_node(self, node: str) -> None:
        """Remove a node from the partition map."""

    def key_of(self, fingerprint: Fingerprint) -> int:
        """Expose the key-space position (useful for tests and migration)."""
        return _key_of(fingerprint)


class RangePartitioner(Partitioner):
    """Equal contiguous ranges of the 64-bit key space, one per node.

    Node *i* of *n* owns keys in ``[i * S/n, (i+1) * S/n)``.  Adding or
    removing a node recomputes the ranges (a full re-shard); use
    :class:`ConsistentHashRing` when incremental migration matters.
    """

    def __init__(self, nodes: Sequence[str]) -> None:
        if not nodes:
            raise ValueError("at least one node is required")
        if len(set(nodes)) != len(nodes):
            raise ValueError("node names must be unique")
        self._nodes: List[str] = list(nodes)
        # count -> [replica cycle starting at node index]; replica sets are
        # a pure function of the owner index, so they are computed once per
        # (count, membership) and handed out as copies.
        self._cycles: Dict[int, List[Tuple[str, ...]]] = {}
        self._prefix_tables: Dict[int, List[Optional[Tuple[str, ...]]]] = {}

    def nodes(self) -> List[str]:
        return list(self._nodes)

    def owner(self, fingerprint: Fingerprint) -> str:
        index = self.index_of(fingerprint)
        return self._nodes[index]

    def index_of(self, fingerprint: Fingerprint) -> int:
        """Index of the owning node in the node list."""
        key = _key_of(fingerprint)
        width = KEY_SPACE_SIZE // len(self._nodes)
        index = min(key // width, len(self._nodes) - 1)
        return index

    def owners(self, fingerprint: Fingerprint, count: int) -> List[str]:
        if count < 1:
            raise ValueError("count must be >= 1")
        return list(self.owners_by_key(_key_of(fingerprint), count))

    def owners_by_key(self, key: int, count: int) -> Tuple[str, ...]:
        """Replica set for a key-space position, as a shared tuple.

        Hot-path variant of :meth:`owners` (``count`` is assumed already
        validated >= 1): the cycle tuples are cached per membership, so
        callers must treat the result as immutable.
        """
        cycles, width, last = self.route_table(count)
        index = key // width
        return cycles[index if index < last else last]

    def route_table(self, count: int) -> Tuple[List[Tuple[str, ...]], int, int]:
        """Routing table ``(cycles, range_width, last_index)`` for ``count``.

        Lets a batch dispatcher resolve cache misses inline --
        ``cycles[min(key // range_width, last_index)]`` -- without a method
        call per key.  The table is only valid for the current membership;
        refetch after any epoch bump.
        """
        nodes = self._nodes
        count = min(count, len(nodes))
        cycles = self._cycles.get(count)
        if cycles is None:
            n = len(nodes)
            cycles = [
                tuple(nodes[(start + i) % n] for i in range(count))
                for start in range(n)
            ]
            self._cycles[count] = cycles
        return cycles, KEY_SPACE_SIZE // len(nodes), len(nodes) - 1

    def prefix_table(self, count: int) -> List[Optional[Tuple[str, ...]]]:
        """256-entry table: first digest byte -> replica set, or ``None``.

        Entry ``b`` holds the shared replica-set tuple when *every* key
        whose top 8 bits equal ``b`` falls in the same node range --
        true for all but the at-most ``len(nodes) - 1`` prefixes a range
        boundary cuts through, which stay ``None`` and must be resolved
        exactly (:meth:`owners_by_key`).  Lets a dispatcher route a
        digest with two index operations and no per-key arithmetic.
        Cached per ``(count, membership)``; membership changes rebuild it.
        """
        cached = self._prefix_tables.get(count)
        if cached is None:
            cycles, width, last = self.route_table(count)
            shift = KEY_SPACE_BITS - 8
            cached = []
            for prefix in range(256):
                low = prefix << shift
                first = low // width
                if first > last:
                    first = last
                final = ((low + (1 << shift)) - 1) // width
                if final > last:
                    final = last
                cached.append(cycles[first] if first == final else None)
            self._prefix_tables[count] = cached
        return cached

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already present")
        self._nodes.append(node)
        self._cycles.clear()
        self._prefix_tables.clear()
        self.bump_epoch()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not present")
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last node")
        self._nodes.remove(node)
        self._cycles.clear()
        self._prefix_tables.clear()
        self.bump_epoch()

    def range_of(self, node: str) -> Tuple[int, int]:
        """Half-open key range ``[low, high)`` owned by ``node``."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not present")
        index = self._nodes.index(node)
        width = KEY_SPACE_SIZE // len(self._nodes)
        low = index * width
        high = KEY_SPACE_SIZE if index == len(self._nodes) - 1 else (index + 1) * width
        return low, high


class ConsistentHashRing(Partitioner):
    """Consistent hashing with virtual nodes (tokens) on a 64-bit ring.

    Each physical node contributes ``virtual_nodes`` tokens; a fingerprint is
    owned by the first token clockwise from its key.  Replica sets are the
    next distinct physical nodes clockwise, Chord-successor style.
    """

    def __init__(self, nodes: Sequence[str], virtual_nodes: int = 64) -> None:
        if not nodes:
            raise ValueError("at least one node is required")
        if len(set(nodes)) != len(nodes):
            raise ValueError("node names must be unique")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._ring: List[Tuple[int, str]] = []
        self._tokens: List[int] = []
        self._members: List[str] = []
        # count -> {ring position -> successor tuple}; the distinct-node
        # walk from a given ring position is membership-pure, so each
        # position is walked once per count (filled lazily, dropped on
        # every rebuild).
        self._successors: Dict[int, Dict[int, Tuple[str, ...]]] = {}
        for node in nodes:
            self.add_node(node)

    # -- token placement ---------------------------------------------------------------
    @staticmethod
    def _token(node: str, replica_index: int) -> int:
        digest = hashlib.sha1(f"{node}#{replica_index}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def _rebuild(self) -> None:
        self._ring.sort()
        self._tokens = [token for token, _node in self._ring]
        self._successors.clear()

    # -- partitioner interface ---------------------------------------------------------
    def nodes(self) -> List[str]:
        return list(self._members)

    def add_node(self, node: str) -> None:
        if node in self._members:
            raise ValueError(f"node {node!r} already present")
        self._members.append(node)
        for replica_index in range(self.virtual_nodes):
            self._ring.append((self._token(node, replica_index), node))
        self._rebuild()
        self.bump_epoch()

    def remove_node(self, node: str) -> None:
        if node not in self._members:
            raise KeyError(f"node {node!r} not present")
        if len(self._members) == 1:
            raise ValueError("cannot remove the last node")
        self._members.remove(node)
        self._ring = [(token, owner) for token, owner in self._ring if owner != node]
        self._rebuild()
        self.bump_epoch()

    def owner(self, fingerprint: Fingerprint) -> str:
        return self._owner_of_key(_key_of(fingerprint))

    def _owner_of_key(self, key: int) -> str:
        index = bisect.bisect_right(self._tokens, key)
        if index == len(self._tokens):
            index = 0
        return self._ring[index][1]

    def owners(self, fingerprint: Fingerprint, count: int) -> List[str]:
        if count < 1:
            raise ValueError("count must be >= 1")
        return list(self.owners_by_key(_key_of(fingerprint), count))

    def owners_by_key(self, key: int, count: int) -> Tuple[str, ...]:
        """Replica set for a key-space position, as a shared tuple.

        Hot-path variant of :meth:`owners` (``count`` is assumed already
        validated >= 1): successor walks are cached per ring position and
        membership, so callers must treat the result as immutable.
        """
        count = min(count, len(self._members))
        index = bisect.bisect_right(self._tokens, key) % len(self._ring)
        per_count = self._successors.get(count)
        if per_count is None:
            self._successors[count] = per_count = {}
        cached = per_count.get(index)
        if cached is None:
            owners: List[str] = []
            seen = set()
            for step in range(len(self._ring)):
                token_index = (index + step) % len(self._ring)
                node = self._ring[token_index][1]
                if node not in seen:
                    seen.add(node)
                    owners.append(node)
                    if len(owners) == count:
                        break
            per_count[index] = cached = tuple(owners)
        return cached

    # -- diagnostics -----------------------------------------------------------------------
    def token_count(self, node: str) -> int:
        """Number of tokens ``node`` currently places on the ring."""
        return sum(1 for _token, owner in self._ring if owner == node)

    def ownership_fractions(self, sample_keys: int = 100_000) -> Dict[str, float]:
        """Approximate fraction of the key space owned by each node.

        Computed exactly from arc lengths rather than by sampling; the
        ``sample_keys`` parameter is kept for API familiarity but unused.
        """
        del sample_keys
        arcs: Dict[str, int] = {node: 0 for node in self._members}
        ring = self._ring
        for i, (token, _node) in enumerate(ring):
            next_token = ring[(i + 1) % len(ring)][0]
            owner = ring[(i + 1) % len(ring)][1]
            arc = (next_token - token) % KEY_SPACE_SIZE
            arcs[owner] += arc
        total = sum(arcs.values()) or 1
        return {node: arc / total for node, arc in arcs.items()}
