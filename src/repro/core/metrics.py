"""Cluster-wide metrics and load-balance analysis.

Aggregates per-node :class:`~repro.core.hash_node.NodeSnapshot` data into the
quantities the paper reports: total throughput, tier hit breakdown, and the
hash-entry storage distribution of Figure 6 (each of 4 nodes holding ~25 % of
entries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .hash_node import NodeSnapshot

__all__ = ["LoadBalanceReport", "ClusterMetrics"]


@dataclass
class LoadBalanceReport:
    """Distribution of stored hash entries (or lookups) across nodes."""

    counts: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> Dict[str, float]:
        """Per-node share of the total (the Figure 6 percentages)."""
        total = self.total
        if total == 0:
            return {node: 0.0 for node in self.counts}
        return {node: count / total for node, count in self.counts.items()}

    @property
    def mean(self) -> float:
        return self.total / len(self.counts) if self.counts else 0.0

    @property
    def coefficient_of_variation(self) -> float:
        """Stddev / mean of per-node counts (0.0 is perfectly balanced)."""
        if not self.counts or self.mean == 0:
            return 0.0
        variance = sum((count - self.mean) ** 2 for count in self.counts.values()) / len(self.counts)
        return math.sqrt(variance) / self.mean

    @property
    def max_over_mean(self) -> float:
        """Peak-to-average ratio (1.0 is perfectly balanced)."""
        if not self.counts or self.mean == 0:
            return 1.0
        return max(self.counts.values()) / self.mean

    def max_deviation_from_even(self) -> float:
        """Largest absolute deviation of any node's share from 1/N."""
        if not self.counts:
            return 0.0
        even = 1.0 / len(self.counts)
        return max(abs(share - even) for share in self.fractions().values())


@dataclass
class ClusterMetrics:
    """Aggregated view over a set of node snapshots."""

    snapshots: List[NodeSnapshot] = field(default_factory=list)
    #: Unique fingerprints across the cluster (replicas deduplicated).  Set
    #: by :meth:`SHHCCluster.metrics`; ``None`` when only snapshots are
    #: available, in which case ``total_entries`` is the best estimate.
    distinct_entries: Optional[int] = None

    @classmethod
    def from_nodes(cls, nodes: Sequence) -> "ClusterMetrics":
        """Build metrics from live node objects (anything with ``snapshot()``)."""
        return cls(snapshots=[node.snapshot() for node in nodes])

    # -- totals --------------------------------------------------------------------
    @property
    def total_lookups(self) -> int:
        return sum(s.lookups for s in self.snapshots)

    @property
    def total_entries(self) -> int:
        return sum(s.entries for s in self.snapshots)

    @property
    def total_stored(self) -> int:
        """Stored copies across all nodes, replicas included."""
        return self.total_entries

    @property
    def distinct(self) -> int:
        """Unique fingerprints; falls back to the copy count without replication info."""
        return self.distinct_entries if self.distinct_entries is not None else self.total_entries

    @property
    def total_duplicates(self) -> int:
        return sum(s.duplicates for s in self.snapshots)

    @property
    def total_new_entries(self) -> int:
        return sum(s.new_entries for s in self.snapshots)

    @property
    def ram_hits(self) -> int:
        return sum(s.ram_hits for s in self.snapshots)

    @property
    def ssd_hits(self) -> int:
        return sum(s.ssd_hits for s in self.snapshots)

    @property
    def destages(self) -> int:
        return sum(s.destages for s in self.snapshots)

    def duplicate_ratio(self) -> float:
        """Fraction of lookups answered as duplicates."""
        return self.total_duplicates / self.total_lookups if self.total_lookups else 0.0

    def ram_hit_ratio(self) -> float:
        """Fraction of lookups answered from the RAM tier."""
        return self.ram_hits / self.total_lookups if self.total_lookups else 0.0

    # -- distributions -----------------------------------------------------------------
    def storage_distribution(self) -> LoadBalanceReport:
        """Hash entries stored per node (paper Figure 6)."""
        return LoadBalanceReport({s.node_id: s.entries for s in self.snapshots})

    def lookup_distribution(self) -> LoadBalanceReport:
        """Lookups served per node (access load balance)."""
        return LoadBalanceReport({s.node_id: s.lookups for s in self.snapshots})

    def tier_breakdown(self) -> Dict[str, int]:
        """How many lookups each tier answered across the cluster."""
        return {
            "ram": self.ram_hits,
            "ssd": self.ssd_hits,
            "new": self.total_new_entries,
        }

    def as_dict(self) -> dict:
        """Flat dictionary for report rendering."""
        storage = self.storage_distribution()
        return {
            "nodes": len(self.snapshots),
            "lookups": self.total_lookups,
            # "entries" is the legacy name for the copies count; "distinct" /
            # "total_stored" are the canonical replication-aware pair.
            "entries": self.total_entries,
            "distinct": self.distinct,
            "total_stored": self.total_stored,
            "duplicates": self.total_duplicates,
            "duplicate_ratio": self.duplicate_ratio(),
            "ram_hits": self.ram_hits,
            "ssd_hits": self.ssd_hits,
            "new_entries": self.total_new_entries,
            "destages": self.destages,
            "storage_cv": storage.coefficient_of_variation,
            "storage_max_over_mean": storage.max_over_mean,
        }
