"""Configuration objects for hybrid hash nodes and the SHHC cluster.

All tunables live here so experiments can describe a deployment declaratively
and DESIGN.md / EXPERIMENTS.md can reference one authoritative set of
defaults.  Defaults are calibrated to the paper's testbed era (quad-core Xeon,
4-16 GB RAM, SATA-II SSD, 1 GbE) -- see ``repro.storage.devices`` for the
device-level numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional

__all__ = ["HashNodeConfig", "ClusterConfig"]


def _dataclass_overrides(instance, overrides: Dict[str, Any]):
    """``replace`` with unknown-key validation (shared by both configs)."""
    known = {f.name for f in fields(instance)}
    unknown = set(overrides) - known
    if unknown:
        raise ValueError(
            f"unknown {type(instance).__name__} keys: {sorted(unknown)}; "
            f"valid keys: {sorted(known)}"
        )
    return replace(instance, **overrides)


@dataclass(frozen=True)
class HashNodeConfig:
    """Parameters of a single hybrid hash node.

    Attributes
    ----------
    ram_cache_entries:
        Capacity of the in-RAM LRU fingerprint cache.  The paper's nodes have
        4-16 GB of RAM; at ~64 bytes per cached entry the default of one
        million entries corresponds to a modest 64 MB cache.
    bloom_expected_items / bloom_false_positive_rate:
        Sizing of the per-node bloom filter that guards the SSD store.
    ssd_buckets / ssd_page_size / ssd_entry_size / ssd_write_buffer_pages:
        Geometry of the SSD-resident hash table (Berkeley DB substitute).
    cpu_per_lookup:
        CPU service time per fingerprint processed (request parsing, hashing,
        cache bookkeeping), seconds.
    cpu_per_request:
        Fixed CPU overhead per network request (batch), seconds.
    service_concurrency:
        Number of requests a node serves in parallel.  The default of 1
        models the single dispatcher thread of the paper-era key/value
        servers and is what makes a single node saturate at a few tens of
        thousands of lookups per second, the effect Figure 1 demonstrates.
    """

    ram_cache_entries: int = 1_000_000
    bloom_expected_items: int = 50_000_000
    bloom_false_positive_rate: float = 0.01
    ssd_buckets: int = 1 << 18
    ssd_page_size: int = 4096
    ssd_entry_size: int = 48
    ssd_write_buffer_pages: int = 64
    cpu_per_lookup: float = 20e-6
    cpu_per_request: float = 15e-6
    service_concurrency: int = 1

    def scaled_for(self, expected_fingerprints: int) -> "HashNodeConfig":
        """Return a copy with the bloom filter sized for a known workload."""
        if expected_fingerprints < 1:
            raise ValueError("expected_fingerprints must be >= 1")
        return replace(self, bloom_expected_items=max(1024, expected_fingerprints))

    def with_overrides(self, **overrides: Any) -> "HashNodeConfig":
        """Copy with field overrides; unknown keys raise ``ValueError``."""
        return _dataclass_overrides(self, overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HashNodeConfig":
        return _dataclass_overrides(cls(), dict(payload))


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the whole hash cluster."""

    num_nodes: int = 4
    node: HashNodeConfig = field(default_factory=HashNodeConfig)
    virtual_nodes: int = 0
    replication_factor: int = 1
    partition_bits: int = 64
    node_name_prefix: str = "hashnode"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.replication_factor > self.num_nodes:
            raise ValueError("replication_factor cannot exceed num_nodes")
        if self.virtual_nodes < 0:
            raise ValueError("virtual_nodes must be >= 0")
        if not 8 <= self.partition_bits <= 160:
            raise ValueError("partition_bits must be within [8, 160]")

    @property
    def node_names(self) -> list:
        """Deterministic node endpoint names."""
        return [f"{self.node_name_prefix}-{i}" for i in range(self.num_nodes)]

    def with_nodes(self, num_nodes: int) -> "ClusterConfig":
        """Copy of this config with a different cluster size."""
        return replace(self, num_nodes=num_nodes)

    def with_overrides(self, **overrides: Any) -> "ClusterConfig":
        """Copy with field overrides; unknown keys raise ``ValueError``.

        ``node`` may be given as a :class:`HashNodeConfig` or as a dict of
        node-level overrides applied on top of the current node config.
        """
        node = overrides.get("node")
        if isinstance(node, dict):
            overrides = dict(overrides, node=self.node.with_overrides(**node))
        return _dataclass_overrides(self, overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["node"] = self.node.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClusterConfig":
        return cls().with_overrides(**dict(payload))
