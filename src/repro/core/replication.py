"""Fault tolerance: anti-entropy repair on top of the cluster's replication.

The paper lists fault tolerance as future work (§V).  The routing layer in
:mod:`repro.core.cluster` already provides the *synchronous* half: every new
fingerprint is written to all live members of its replica set, lookups fail
over per fingerprint to the first live replica, and read repair backfills a
recovered primary on first touch.  This module provides the *asynchronous*
half -- the background sweep a real deployment runs after membership events:

* :class:`ReplicationController` -- verifies and repairs replica sets,
  handles node failure (fail over + re-replication) and rejoin.
* :class:`ReplicaConsistencyReport` -- how many fingerprints are fully
  replicated, under-replicated, or lost.

Why both halves are needed: a fingerprint first written while one of its
replicas was down starts life under-replicated (the cluster cannot write to
a dead node).  Read repair fixes the verdict as soon as any live replica is
consulted, but only an anti-entropy sweep (:meth:`ReplicationController.repair`,
typically triggered from a fault-injection recovery hook or an operator
runbook) restores the full copy count -- without it, a *second* failure that
takes out the singular copy loses the duplicate verdict.  The ``failover``
experiment demonstrates both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..dedup.fingerprint import FINGERPRINT_BYTES, Fingerprint
from .cluster import SHHCCluster

__all__ = ["ReplicaConsistencyReport", "ReplicationController"]


@dataclass
class ReplicaConsistencyReport:
    """Replication health across the cluster."""

    replication_factor: int
    total_fingerprints: int = 0
    fully_replicated: int = 0
    under_replicated: int = 0
    lost: int = 0
    copies_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def is_healthy(self) -> bool:
        """True when every fingerprint has its full replica count."""
        return self.under_replicated == 0 and self.lost == 0


class ReplicationController:
    """Maintains the invariant: every fingerprint on ``replication_factor`` nodes."""

    def __init__(self, cluster: SHHCCluster) -> None:
        if cluster.config.replication_factor < 1:
            raise ValueError("cluster must have replication_factor >= 1")
        self.cluster = cluster
        self.repairs_performed = 0

    # -- inspection ---------------------------------------------------------------------
    def placement(self) -> Dict[bytes, Set[str]]:
        """Map digest -> set of live nodes currently storing it."""
        placement: Dict[bytes, Set[str]] = {}
        for name, node in self.cluster.nodes.items():
            if self.cluster.is_down(name):
                continue
            for digest, _value in node.export_entries():
                placement.setdefault(digest, set()).add(name)
        return placement

    def desired_nodes(self, fingerprint: Fingerprint) -> List[str]:
        """The *live* replica set a fingerprint should occupy right now.

        Walks the successor list past any failed nodes (Chord-style) and
        returns the first live nodes up to the replication factor, so the
        copy count can be restored even while members are down.  With every
        node up this is exactly ``partitioner.owners(fp, factor)``.  The
        membership migration (:class:`~repro.core.membership.MembershipManager`)
        and :meth:`repair` share this definition, which is what makes their
        placements agree.
        """
        cluster = self.cluster
        live_count = sum(1 for n in cluster.node_names if not cluster.is_down(n))
        target = min(cluster.config.replication_factor, live_count)
        candidates = cluster.partitioner.owners(fingerprint, len(cluster.node_names))
        return [n for n in candidates if not cluster.is_down(n)][:target]

    def consistency_report(self) -> ReplicaConsistencyReport:
        """Count fully replicated / under-replicated / lost fingerprints."""
        factor = self.cluster.config.replication_factor
        report = ReplicaConsistencyReport(replication_factor=factor)
        live_nodes = [n for n in self.cluster.node_names if not self.cluster.is_down(n)]
        target = min(factor, len(live_nodes))
        for _digest, holders in self.placement().items():
            copies = len(holders)
            report.total_fingerprints += 1
            report.copies_histogram[copies] = report.copies_histogram.get(copies, 0) + 1
            if copies >= target:
                report.fully_replicated += 1
            elif copies > 0:
                report.under_replicated += 1
            else:
                report.lost += 1
        return report

    # -- repair --------------------------------------------------------------------------
    def repair(self) -> int:
        """Re-replicate under-replicated fingerprints onto live replica nodes.

        Returns the number of additional copies created.
        """
        created = 0
        placement = self.placement()
        for digest, holders in placement.items():
            fingerprint = self._fingerprint_for(digest, holders)
            desired = self.desired_nodes(fingerprint)
            for node_name in desired:
                if node_name not in holders:
                    value = self._value_of(digest, holders)
                    self.cluster.nodes[node_name].import_entries([(digest, value)])
                    holders.add(node_name)
                    created += 1
        self.repairs_performed += created
        return created

    def handle_failure(self, node_name: str) -> int:
        """Mark a node as failed and restore the replication factor."""
        self.cluster.mark_down(node_name)
        return self.repair()

    def handle_recovery(self, node_name: str) -> int:
        """Bring a node back and move its owned fingerprints onto it."""
        self.cluster.mark_up(node_name)
        return self.repair()

    # -- helpers -------------------------------------------------------------------------
    def _value_of(self, digest: bytes, holders: Set[str]):
        for holder in holders:
            value = self.cluster.nodes[holder].store.get(digest)
            if value is not None:
                return value
        return True

    def _fingerprint_for(self, digest: bytes, holders: Set[str]) -> Fingerprint:
        value = self._value_of(digest, holders)
        chunk_size = value if isinstance(value, int) else 0
        padded = digest.ljust(FINGERPRINT_BYTES, b"\0")[:FINGERPRINT_BYTES]
        return Fingerprint(digest=padded, chunk_size=chunk_size)
