"""SHHC core: the scalable hybrid hash cluster (the paper's contribution)."""

from .batching import BatchAccumulator, reassemble_replies, split_batch_by_owner
from .cluster import SHHCCluster
from .config import ClusterConfig, HashNodeConfig
from .hash_node import HybridHashNode, NodeSnapshot
from .membership import MembershipManager, MigrationReport
from .metrics import ClusterMetrics, LoadBalanceReport
from .partition import ConsistentHashRing, Partitioner, RangePartitioner
from .protocol import (
    BatchLookupReply,
    BatchLookupRequest,
    LookupReply,
    LookupRequest,
    ServedFrom,
)
from .replication import ReplicaConsistencyReport, ReplicationController

__all__ = [
    "BatchAccumulator",
    "reassemble_replies",
    "split_batch_by_owner",
    "SHHCCluster",
    "ClusterConfig",
    "HashNodeConfig",
    "HybridHashNode",
    "NodeSnapshot",
    "MembershipManager",
    "MigrationReport",
    "ClusterMetrics",
    "LoadBalanceReport",
    "ConsistentHashRing",
    "Partitioner",
    "RangePartitioner",
    "BatchLookupReply",
    "BatchLookupRequest",
    "LookupReply",
    "LookupRequest",
    "ServedFrom",
    "ReplicaConsistencyReport",
    "ReplicationController",
]
