"""SHHC core: the scalable hybrid hash cluster (the paper's contribution)."""

from .batching import (
    BatchAccumulator,
    reassemble_replies,
    split_batch_by_owner,
    split_batch_by_replica_set,
)
from .cluster import SHHCCluster
from .config import ClusterConfig, HashNodeConfig
from .fault_injection import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FlakyNode,
    NodeUnavailableError,
    make_flaky,
    rolling_outage_schedule,
)
from .hash_node import HybridHashNode, NodeSnapshot
from .membership import MembershipManager, MigrationReport
from .persistence import NodePersistence, PersistencePolicy, RecoveryReport
from .metrics import ClusterMetrics, LoadBalanceReport
from .partition import ConsistentHashRing, Partitioner, RangePartitioner
from .protocol import (
    BatchLookupReply,
    BatchLookupRequest,
    LookupReply,
    LookupRequest,
    ServedFrom,
)
from .replication import ReplicaConsistencyReport, ReplicationController

__all__ = [
    "BatchAccumulator",
    "reassemble_replies",
    "split_batch_by_owner",
    "split_batch_by_replica_set",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FlakyNode",
    "NodeUnavailableError",
    "make_flaky",
    "rolling_outage_schedule",
    "SHHCCluster",
    "ClusterConfig",
    "HashNodeConfig",
    "HybridHashNode",
    "NodeSnapshot",
    "MembershipManager",
    "MigrationReport",
    "NodePersistence",
    "PersistencePolicy",
    "RecoveryReport",
    "ClusterMetrics",
    "LoadBalanceReport",
    "ConsistentHashRing",
    "Partitioner",
    "RangePartitioner",
    "BatchLookupReply",
    "BatchLookupRequest",
    "LookupReply",
    "LookupRequest",
    "ServedFrom",
    "ReplicaConsistencyReport",
    "ReplicationController",
]
