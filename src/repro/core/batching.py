"""Batching of fingerprint queries.

The web front-end aggregates fingerprints from clients and sends them to the
hash cluster as batches (paper §III.A, §IV.B: batch sizes 1, 128, 2048).
Batching amortises the per-message network and CPU overhead and preserves the
spatial locality of backup streams.  Two helpers implement this:

* :class:`BatchAccumulator` -- collects fingerprints per destination node and
  emits a :class:`~repro.core.protocol.BatchLookupRequest` when the batch size
  is reached (or on explicit flush / timeout).
* :func:`split_batch_by_owner` -- takes an already-formed client batch and
  splits it into per-node sub-batches while remembering the original order so
  replies can be reassembled for the client.
* :func:`split_batch_by_replica_set` -- the replication-aware variant: each
  fingerprint is grouped under the first *live* node of its own replica set,
  so batches keep being answered by nodes that actually store (or are
  responsible for) the fingerprint when nodes fail.  Grouping a whole batch
  under one failover target is wrong for consistent hashing, where successor
  sets differ per key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dedup.fingerprint import Fingerprint
from .partition import Partitioner
from .protocol import BatchLookupReply, BatchLookupRequest, LookupReply

__all__ = [
    "BatchAccumulator",
    "split_batch_by_owner",
    "split_batch_by_replica_set",
    "reassemble_replies",
]


@dataclass
class _PendingBatch:
    fingerprints: List[Fingerprint] = field(default_factory=list)
    first_arrival: Optional[float] = None


class BatchAccumulator:
    """Per-destination-node accumulation of fingerprints into batches.

    Parameters
    ----------
    partitioner:
        Maps each fingerprint to its owning node.
    batch_size:
        Number of fingerprints per emitted batch (1 disables batching).
    on_batch_ready:
        Callback ``(node_id, BatchLookupRequest) -> None`` invoked whenever a
        full batch is available.  When omitted, ready batches are returned by
        :meth:`add` / :meth:`flush` instead.
    max_delay:
        Optional age bound (seconds, against the supplied ``now`` values);
        :meth:`poll_expired` emits batches older than this even if not full.
    """

    def __init__(
        self,
        partitioner: Partitioner,
        batch_size: int = 128,
        on_batch_ready: Optional[Callable[[str, BatchLookupRequest], None]] = None,
        max_delay: Optional[float] = None,
        client_id: str = "",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.partitioner = partitioner
        self.batch_size = batch_size
        self.on_batch_ready = on_batch_ready
        self.max_delay = max_delay
        self.client_id = client_id
        self._pending: Dict[str, _PendingBatch] = {}
        self._batch_ids = itertools.count(1)
        self.batches_emitted = 0
        self.fingerprints_added = 0

    # -- ingestion --------------------------------------------------------------------
    def add(self, fingerprint: Fingerprint, now: float = 0.0) -> List[Tuple[str, BatchLookupRequest]]:
        """Add one fingerprint; returns any batches that became ready."""
        node = self.partitioner.owner(fingerprint)
        pending = self._pending.setdefault(node, _PendingBatch())
        if not pending.fingerprints:
            pending.first_arrival = now
        pending.fingerprints.append(fingerprint)
        self.fingerprints_added += 1
        if len(pending.fingerprints) >= self.batch_size:
            return [self._emit(node)]
        return []

    def add_many(self, fingerprints: Sequence[Fingerprint], now: float = 0.0) -> List[Tuple[str, BatchLookupRequest]]:
        """Add several fingerprints; returns every batch that became ready."""
        ready: List[Tuple[str, BatchLookupRequest]] = []
        for fingerprint in fingerprints:
            ready.extend(self.add(fingerprint, now))
        return ready

    # -- emission ----------------------------------------------------------------------
    def _emit(self, node: str) -> Tuple[str, BatchLookupRequest]:
        pending = self._pending.pop(node)
        request = BatchLookupRequest(
            fingerprints=list(pending.fingerprints),
            client_id=self.client_id,
            batch_id=next(self._batch_ids),
        )
        self.batches_emitted += 1
        if self.on_batch_ready is not None:
            self.on_batch_ready(node, request)
        return node, request

    def flush(self) -> List[Tuple[str, BatchLookupRequest]]:
        """Emit every partially filled batch (end of a backup stream)."""
        return [self._emit(node) for node in list(self._pending) if self._pending[node].fingerprints]

    def poll_expired(self, now: float) -> List[Tuple[str, BatchLookupRequest]]:
        """Emit batches whose oldest fingerprint exceeded ``max_delay``."""
        if self.max_delay is None:
            return []
        expired = [
            node
            for node, pending in self._pending.items()
            if pending.first_arrival is not None and now - pending.first_arrival >= self.max_delay
        ]
        return [self._emit(node) for node in expired]

    # -- inspection -----------------------------------------------------------------------
    def pending_count(self, node: Optional[str] = None) -> int:
        """Fingerprints currently buffered (for ``node`` or in total)."""
        if node is not None:
            pending = self._pending.get(node)
            return len(pending.fingerprints) if pending else 0
        return sum(len(p.fingerprints) for p in self._pending.values())


def split_batch_by_owner(
    fingerprints: Sequence[Fingerprint],
    partitioner: Partitioner,
    client_id: str = "",
    batch_id: int = 0,
) -> Dict[str, Tuple[BatchLookupRequest, List[int]]]:
    """Split a client batch into per-node requests.

    Returns a mapping ``node -> (request, original_positions)`` where
    ``original_positions[i]`` is the index in ``fingerprints`` of the i-th
    fingerprint in that node's request, so replies can be reassembled in the
    client's order with :func:`reassemble_replies`.

    Equivalent to :func:`split_batch_by_replica_set` with a replica set of
    one and every node live.
    """
    return split_batch_by_replica_set(
        fingerprints, partitioner, 1, is_down=None, client_id=client_id, batch_id=batch_id
    )


def split_batch_by_replica_set(
    fingerprints: Sequence[Fingerprint],
    partitioner: Partitioner,
    replication_factor: int = 1,
    is_down: Optional[Callable[[str], bool]] = None,
    client_id: str = "",
    batch_id: int = 0,
) -> Dict[str, Tuple[BatchLookupRequest, List[int]]]:
    """Split a client batch into per-*serving-node* requests.

    Unlike :func:`split_batch_by_owner`, each fingerprint is routed to the
    first live node of **its own** replica set (``partitioner.owners``), so a
    failed primary fails over per fingerprint rather than per batch.  With
    every node up and ``replication_factor == 1`` the result is identical to
    :func:`split_batch_by_owner`.

    Parameters
    ----------
    replication_factor:
        Size of each fingerprint's replica set (primary plus successors).
    is_down:
        Liveness predicate ``node_name -> bool``; ``None`` means every node
        is up.  Raises :class:`RuntimeError` if a fingerprint has no live
        replica at all.
    """
    if replication_factor < 1:
        raise ValueError("replication_factor must be >= 1")
    groups: Dict[str, List[int]] = {}
    for position, fingerprint in enumerate(fingerprints):
        replicas = partitioner.owners(fingerprint, replication_factor)
        if is_down is not None:
            replicas = [node for node in replicas if not is_down(node)]
        if not replicas:
            raise RuntimeError(
                f"no live replica available for fingerprint at position {position}"
            )
        groups.setdefault(replicas[0], []).append(position)
    result: Dict[str, Tuple[BatchLookupRequest, List[int]]] = {}
    for node, positions in groups.items():
        request = BatchLookupRequest(
            fingerprints=[fingerprints[i] for i in positions],
            client_id=client_id,
            batch_id=batch_id,
        )
        result[node] = (request, positions)
    return result


def reassemble_replies(
    total: int,
    per_node: Sequence[Tuple[BatchLookupReply, Sequence[int]]],
) -> List[LookupReply]:
    """Merge per-node replies back into the client's original order."""
    merged: List[Optional[LookupReply]] = [None] * total
    for reply, positions in per_node:
        if len(reply.replies) != len(positions):
            raise ValueError("reply length does not match recorded positions")
        for lookup_reply, position in zip(reply.replies, positions):
            merged[position] = lookup_reply
    missing = [i for i, entry in enumerate(merged) if entry is None]
    if missing:
        raise ValueError(f"missing replies for positions {missing[:5]}")
    return [entry for entry in merged if entry is not None]
