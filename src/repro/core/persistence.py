"""Crash-consistent node storage: container log + bloom snapshots + WAL.

The paper keeps each node's fingerprint table on SSD as a Berkeley DB
(§III.B), so a crashed node can come back with its index intact.  This
module gives :class:`~repro.core.hash_node.HybridHashNode` the same
property on top of the repo's own storage primitives:

* **Container log** -- every acknowledged fingerprint is appended to an
  on-disk :class:`~repro.storage.hashstore.FileHashStore` (CRC32-framed,
  torn tails truncated on open), so the authoritative key/value state
  survives a process kill.
* **Bloom snapshots** -- the node's bloom filter bit array is periodically
  written through :func:`~repro.storage.snapshot.write_snapshot` (tmp file
  + fsync + atomic rename).  A warm restart mmap-loads the snapshot in one
  bulk copy and replays only the container tail written after it, instead
  of re-hashing every fingerprint.
* **WAL intent/done records** -- snapshots follow the
  :class:`~repro.core.membership.MembershipManager` idiom: an intent record
  is logged before the snapshot is written and a done record after, so a
  crash mid-snapshot is detected at recovery and the snapshot is re-taken
  (idempotently) from the recovered state.

:meth:`NodePersistence.recover_into` rebuilds a freshly constructed node's
store, bloom filter, and cache-backing state from disk and returns a
:class:`RecoveryReport` that the cluster prices through the PR 6 cost
model, so warm-up after a restart is visible in simulated latency.
"""

from __future__ import annotations

import os
import struct
import time
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from ..storage.hashstore import FileHashStore, SSDHashStore
from ..storage.snapshot import SnapshotError, read_snapshot, write_snapshot
from ..storage.wal import WriteAheadLog

__all__ = ["PersistencePolicy", "RecoveryReport", "NodePersistence"]

#: Container values are chunk sizes (non-negative ints); fixed 8-byte frame.
_VALUE = struct.Struct(">Q")


def _encode_value(value: Any) -> bytes:
    return _VALUE.pack(int(value))


def _decode_value(blob: bytes) -> int:
    return _VALUE.unpack(blob)[0]


@dataclass(frozen=True)
class PersistencePolicy:
    """How a cluster persists its hash nodes.

    Parameters
    ----------
    directory:
        Root directory; each node gets its own subdirectory named after its
        node id.
    fsync:
        Force container and WAL appends to disk (power-loss durability).
        Off by default: the fault model in the simulator is process kill,
        for which OS-buffered writes survive.
    snapshot_every:
        Take a bloom snapshot every N container records (0 disables
        automatic snapshots; recovery then falls back to full log replay).
    """

    directory: str
    fsync: bool = False
    snapshot_every: int = 0

    def __post_init__(self) -> None:
        if not self.directory:
            raise ValueError("persistence directory must be non-empty")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")

    def for_node(self, node_id: str) -> "NodePersistence":
        """Open (or create) the persistence state for ``node_id``."""
        return NodePersistence(
            os.path.join(self.directory, node_id),
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
        )


@dataclass
class RecoveryReport:
    """What one recovery pass did, for observability and cost charging."""

    node_id: str = ""
    #: Live fingerprints loaded back into the node's store.
    entries: int = 0
    #: Container records on disk at recovery time (puts + deletes).
    records: int = 0
    #: Records replayed into the bloom filter (tail after the snapshot, or
    #: every live key on a cold replay).
    replayed: int = 0
    snapshot_loaded: bool = False
    snapshot_bytes: int = 0
    #: Torn container tail dropped during recovery (bytes).
    truncated_bytes: int = 0
    #: A crash interrupted a snapshot (WAL intent without done); the
    #: snapshot was re-taken from the recovered state.
    resumed_snapshot: bool = False
    #: A store snapshot restored the hash table wholesale (no per-key
    #: re-placement from the container log; only the tail was replayed).
    store_snapshot_loaded: bool = False
    store_snapshot_bytes: int = 0
    #: Container records replayed into the *store* after its snapshot
    #: (0 on a cold rebuild, where every live key is re-placed instead).
    store_tail_records: int = 0
    #: Wall-clock seconds the recovery pass took (host time, not simulated).
    wall_seconds: float = 0.0
    #: Simulated CPU seconds the cost model charged for this recovery
    #: (0 when no cost model is attached).
    charged_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "entries": self.entries,
            "records": self.records,
            "replayed": self.replayed,
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_bytes": self.snapshot_bytes,
            "truncated_bytes": self.truncated_bytes,
            "resumed_snapshot": self.resumed_snapshot,
            "store_snapshot_loaded": self.store_snapshot_loaded,
            "store_snapshot_bytes": self.store_snapshot_bytes,
            "store_tail_records": self.store_tail_records,
            "wall_seconds": self.wall_seconds,
            "charged_seconds": self.charged_seconds,
        }


class NodePersistence:
    """On-disk state for one hash node: container log, WAL, bloom snapshot."""

    CONTAINER_NAME = "containers.log"
    WAL_NAME = "wal.log"
    SNAPSHOT_NAME = "bloom.snap"
    STORE_SNAPSHOT_NAME = "store.snap"

    def __init__(self, directory: str, fsync: bool = False, snapshot_every: int = 0) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.snapshot_path = os.path.join(directory, self.SNAPSHOT_NAME)
        self.store_snapshot_path = os.path.join(directory, self.STORE_SNAPSHOT_NAME)
        # A valid store snapshot lets the container open *resume* from the
        # snapshot's byte offset -- the CRC scan and index build of the
        # covered prefix are replaced by the snapshot's decoded entries.
        # The decoded form is cached for the recover_into call that
        # normally follows construction (one decode, two uses).
        self._store_snapshot_cache = self._read_store_snapshot()
        resume = None
        if self._store_snapshot_cache is not None:
            meta, _num_buckets, entries, _payload_bytes = self._store_snapshot_cache
            resume = (
                int(meta.get("tail_offset", -1)),
                int(meta.get("records", -1)),
                {key: _encode_value(value) for _bucket, key, value in entries},
            )
        self.container = FileHashStore(
            os.path.join(directory, self.CONTAINER_NAME), fsync=fsync, resume=resume
        )
        self.wal = WriteAheadLog(os.path.join(directory, self.WAL_NAME), fsync=fsync)
        #: Container record count covered by the current snapshot (0 = none).
        self.snapshot_records = 0
        self.snapshots_taken = 0

    def _read_store_snapshot(self):
        """Decode ``store.snap`` if present and well-formed, else ``None``."""
        try:
            meta, payload = read_snapshot(self.store_snapshot_path)
        except SnapshotError:
            return None
        try:
            num_buckets, entries = SSDHashStore.decode_snapshot_payload(payload)
        except (ValueError, struct.error):
            return None
        if int(meta.get("records", -1)) < 0 or int(meta.get("tail_offset", -1)) < 0:
            return None
        return meta, num_buckets, entries, len(payload)

    # -- logging ---------------------------------------------------------------------
    @property
    def records(self) -> int:
        """Container records appended so far (puts + deletes)."""
        return self.container.record_count

    def log_insert(self, digest: bytes, value: Any) -> None:
        """Durably record one acknowledged fingerprint insert."""
        self.container.put(digest, _encode_value(value))

    def log_insert_many(self, pairs: Iterable[Tuple[bytes, Any]]) -> int:
        """Durably record a batch of acknowledged inserts with one flush."""
        return self.container.put_many(
            (digest, _encode_value(value)) for digest, value in pairs
        )

    def log_remove(self, digest: bytes) -> None:
        """Durably record a fingerprint removal (e.g. migration hand-off)."""
        self.container.delete(digest)

    # -- snapshots -------------------------------------------------------------------
    def snapshot_due(self) -> bool:
        """Whether enough records accumulated since the last snapshot."""
        return (
            self.snapshot_every > 0
            and self.records - self.snapshot_records >= self.snapshot_every
        )

    def take_snapshot(self, bloom: Any, entries: int = 0, store: Optional[Any] = None) -> int:
        """Write a bloom (and optionally store) snapshot of the current state.

        Follows the membership WAL idiom: intent record, then the atomic
        snapshot write(s), then the done record.  A crash between intent and
        done is detected by :meth:`recover_into`, which re-takes the
        snapshot from the recovered state.  When ``store`` (the node's
        :class:`~repro.storage.hashstore.SSDHashStore`) is given, its whole
        table is checkpointed alongside the bloom bits -- recovery then
        restores the store by bulk copy and the container prefix the
        snapshot covers is never re-scanned.  Returns the record count the
        snapshot covers.
        """
        records = self.records
        tail_offset = self.container.tail_bytes
        intent = self.wal.append("snapshot", records=records)
        meta = {
            "records": records,
            # bloom.count is insertions performed, not distinct keys (and a
            # clamped estimate for filters built via BloomFilter.union);
            # recovery only ever copies it back, so the distinction is safe.
            "count": bloom.count,
            "num_bits": bloom.num_bits,
            "num_hashes": bloom.num_hashes,
            "entries": entries,
        }
        write_snapshot(self.snapshot_path, bloom.snapshot_payload(), meta)
        if store is not None:
            store_meta = {
                "records": records,
                "tail_offset": tail_offset,
                "entries": len(store),
                "num_buckets": store.num_buckets,
            }
            write_snapshot(self.store_snapshot_path, store.snapshot_payload(), store_meta)
        self.wal.append("snapshot_done", records=records)
        # Earlier snapshot intents are now moot; keep the log short.
        self.wal.checkpoint(intent.lsn - 1)
        self.snapshot_records = records
        self.snapshots_taken += 1
        return records

    # -- recovery --------------------------------------------------------------------
    def recover_into(self, node: Any, use_snapshot: bool = True) -> RecoveryReport:
        """Rebuild ``node``'s store and bloom filter from disk.

        ``node`` must expose ``store`` (an
        :class:`~repro.storage.hashstore.SSDHashStore`), ``bloom`` (a
        :class:`~repro.storage.bloom.BloomFilter`), and ``node_id`` -- i.e.
        a freshly constructed or freshly killed hash node.  With a valid
        snapshot the bloom filter is restored by bulk copy and only the
        container tail written after the snapshot is replayed; otherwise
        every live key is re-hashed (cold replay).
        """
        started = time.perf_counter()
        report = RecoveryReport(
            node_id=getattr(node, "node_id", ""),
            truncated_bytes=self.container.truncated_bytes,
        )
        open_snapshot_intent = False
        for record in self.wal.replay():
            if record.kind == "snapshot":
                open_snapshot_intent = True
            elif record.kind == "snapshot_done":
                open_snapshot_intent = False

        bloom = node.bloom
        snapshot_records = 0
        if use_snapshot:
            try:
                meta, payload = read_snapshot(self.snapshot_path)
            except SnapshotError:
                pass  # no/invalid snapshot: fall back to cold replay
            else:
                covered = int(meta.get("records", 0))
                if (
                    meta.get("num_bits") == bloom.num_bits
                    and meta.get("num_hashes") == bloom.num_hashes
                    and covered <= self.container.record_count
                ):
                    bloom.restore_payload(payload, int(meta.get("count", 0)))
                    snapshot_records = covered
                    report.snapshot_loaded = True
                    report.snapshot_bytes = len(payload)

        # Rebuild the store.  With a store snapshot the whole table is
        # restored by bulk copy (bucket placements included -- no per-key
        # hashing) and only the container tail written after it is replayed;
        # otherwise every live key is re-placed from the recovered index.
        store = node.store
        tail_ops: Optional[List[Tuple[int, bytes, bytes]]] = None
        store_covered = -1
        if use_snapshot:
            store_snapshot = self._store_snapshot_cache
            # One decode serves one recovery; a later recovery (e.g. a
            # restart after kill) re-reads the latest snapshot from disk.
            self._store_snapshot_cache = None
            if store_snapshot is None:
                store_snapshot = self._read_store_snapshot()
            if store_snapshot is not None and len(store) == 0:
                meta, num_buckets, snap_entries, payload_bytes = store_snapshot
                covered = int(meta.get("records", 0))
                tail_offset = int(meta.get("tail_offset", 0))
                if (
                    covered <= self.container.record_count
                    and os.path.getsize(self.container.path) >= tail_offset
                ):
                    store.restore_entries(num_buckets, snap_entries)
                    tail_ops = list(
                        FileHashStore.scan(self.container.path, start_offset=tail_offset)
                    )
                    put = store.put
                    remove = store.remove
                    for op, key, blob in tail_ops:
                        if op == FileHashStore._OP_PUT:
                            put(key, _decode_value(blob))
                        else:
                            remove(key)
                    store_covered = covered
                    report.store_snapshot_loaded = True
                    report.store_snapshot_bytes = payload_bytes
                    report.store_tail_records = len(tail_ops)
        if not report.store_snapshot_loaded:
            for key, blob in self.container.items():
                store.put(key, _decode_value(blob))
        # The recovered entries are already on flash; the node restarts with
        # an empty write buffer rather than owing a burst of page flushes.
        store._buffered_entries = 0
        entries = len(store)
        report.entries = entries

        replayed = 0
        add_one = bloom.add_one
        if report.snapshot_loaded:
            # Replay only the tail written after the snapshot.  Deletes are
            # skipped (bloom bits cannot be unset); duplicate puts are
            # idempotent bit sets.
            if tail_ops is not None and store_covered == snapshot_records:
                # Bloom and store snapshots were taken together, so the tail
                # already scanned for the store is exactly the bloom's tail
                # too -- one disk scan serves both.
                for op, key, _value in tail_ops:
                    if op == FileHashStore._OP_PUT:
                        add_one(key)
                        replayed += 1
            else:
                index = 0
                for op, key, _value in FileHashStore.scan(self.container.path):
                    if index >= snapshot_records and op == FileHashStore._OP_PUT:
                        add_one(key)
                        replayed += 1
                    index += 1
        else:
            for key in self.container.keys():
                add_one(key)
                replayed += 1
        if replayed:
            bloom.count_inserts(replayed)
        report.records = self.container.record_count
        report.replayed = replayed
        self.snapshot_records = snapshot_records

        if open_snapshot_intent:
            # A crash interrupted a snapshot between intent and done.  The
            # recovered state supersedes whatever was being written, so
            # re-take the snapshot now (idempotent: intent/done again).
            self.take_snapshot(bloom, entries=entries, store=store)
            report.resumed_snapshot = True

        report.wall_seconds = time.perf_counter() - started
        return report

    def close(self) -> None:
        """Close the backing files."""
        self.container.close()
        self.wal.close()

    def __enter__(self) -> "NodePersistence":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
