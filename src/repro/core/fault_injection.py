"""Fault injection: scripted node failures and flaky-node wrappers.

The paper claims the hash cluster keeps serving lookups through node
failures; this module turns that claim into a testable scenario family.
Three pieces compose the harness:

* :class:`FaultSchedule` -- a declarative script of crash/recover events
  against a time axis.  The axis is whatever clock the caller advances:
  the simulated clock (seconds) in the simulated deployment, or a logical
  clock (e.g. batch index) in immediate mode.
* :class:`FaultInjector` -- applies a schedule to a cluster, either by
  polling (:meth:`FaultInjector.advance`, immediate mode) or by scheduling
  every event on a :class:`~repro.simulation.engine.Simulator`
  (:meth:`FaultInjector.attach`, simulated mode).  An optional
  ``on_recovery`` hook lets callers run anti-entropy repair (see
  :class:`~repro.core.replication.ReplicationController`) when a node
  rejoins.
* :class:`FlakyNode` -- a transparent wrapper around a
  :class:`~repro.core.hash_node.HybridHashNode` that makes individual
  lookups fail with :class:`NodeUnavailableError` at a configured
  probability, modelling grey failures (timeouts, packet loss) rather than
  clean crashes.  The cluster's routing layer treats such failures as a
  signal to fail the lookup over to the next live replica.

The injector only needs ``mark_down`` / ``mark_up`` / node-name lookup from
its target, so it works on :class:`~repro.core.cluster.SHHCCluster` without
importing it (no circular dependency: the cluster imports this module for
:class:`NodeUnavailableError`).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "NodeUnavailableError",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "FaultPlan",
    "FlakyNode",
    "make_flaky",
    "rolling_outage_schedule",
    "rolling_outage_from_density",
    "rolling_restart_from_density",
]

#: Actions a fault event may carry.  ``crash``/``recover`` are reachability
#: faults (the node's state survives); ``kill``/``restart`` destroy the
#: node's in-memory state and recover it from its persistence layer.
CRASH = "crash"
RECOVER = "recover"
KILL = "kill"
RESTART = "restart"
_ACTIONS = (CRASH, RECOVER, KILL, RESTART)


class NodeUnavailableError(RuntimeError):
    """A node (or its RPC endpoint) refused to serve a request."""


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scripted membership change: ``node`` crashes or recovers at ``time``."""

    time: float
    action: str
    node: str

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, got {self.action!r}")
        if self.time < 0:
            raise ValueError("fault event time must be >= 0")


class FaultSchedule:
    """An ordered script of :class:`FaultEvent` entries.

    Builder methods return ``self`` so schedules read fluently::

        schedule = FaultSchedule().crash("hashnode-1", at=2.0).recover("hashnode-1", at=5.0)
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = sorted(events)

    # -- building ---------------------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        self._events.append(event)
        self._events.sort()
        return self

    def crash(self, node: str, at: float) -> "FaultSchedule":
        """Schedule ``node`` to fail (stop serving) at time ``at``."""
        return self.add(FaultEvent(time=at, action=CRASH, node=node))

    def recover(self, node: str, at: float) -> "FaultSchedule":
        """Schedule ``node`` to rejoin at time ``at``."""
        return self.add(FaultEvent(time=at, action=RECOVER, node=node))

    def outage(self, node: str, start: float, duration: float) -> "FaultSchedule":
        """Convenience: crash at ``start``, recover ``duration`` later."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        return self.crash(node, at=start).recover(node, at=start + duration)

    def kill(self, node: str, at: float) -> "FaultSchedule":
        """Schedule ``node`` to be killed (in-memory state destroyed) at ``at``."""
        return self.add(FaultEvent(time=at, action=KILL, node=node))

    def restart(self, node: str, at: float) -> "FaultSchedule":
        """Schedule ``node`` to restart (recover state from disk) at ``at``."""
        return self.add(FaultEvent(time=at, action=RESTART, node=node))

    def kill_restart(self, node: str, start: float, duration: float) -> "FaultSchedule":
        """Convenience: kill at ``start``, restart ``duration`` later."""
        if duration <= 0:
            raise ValueError("kill/restart duration must be positive")
        return self.kill(node, at=start).restart(node, at=start + duration)

    # -- inspection -------------------------------------------------------------------
    @property
    def events(self) -> List[FaultEvent]:
        """All events in time order."""
        return list(self._events)

    @property
    def horizon(self) -> float:
        """Time of the last scheduled event (0.0 for an empty schedule)."""
        return self._events[-1].time if self._events else 0.0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule events={len(self._events)} horizon={self.horizon}>"


def rolling_outage_schedule(
    node_names: Sequence[str],
    period: float,
    downtime: float,
    start: float = 0.0,
    rounds: int = 1,
) -> FaultSchedule:
    """One-node-at-a-time rolling outages across ``node_names``.

    Node *i* crashes at ``start + i * period`` (plus one full sweep per
    round) and recovers ``downtime`` later.  With ``downtime < period`` at
    most one node is ever down, the regime in which a cluster with
    ``replication_factor >= 2`` must not lose a single dedup verdict.
    """
    if period <= 0 or downtime <= 0:
        raise ValueError("period and downtime must be positive")
    if downtime >= period:
        raise ValueError("downtime must be smaller than period (one node down at a time)")
    schedule = FaultSchedule()
    for round_index in range(rounds):
        sweep_start = start + round_index * period * len(node_names)
        for index, node in enumerate(node_names):
            schedule.outage(node, start=sweep_start + index * period, duration=downtime)
    return schedule


def rolling_outage_from_density(
    node_names: Sequence[str],
    horizon: float,
    density: float,
    rounds: int = 1,
    start: float = 1.0,
) -> FaultSchedule:
    """Rolling outages sized so each node is down ``density`` of its slot.

    The available time axis ``[start, horizon)`` is divided into
    ``rounds * len(node_names)`` equal slots; node *i* crashes at the start
    of its slot and stays down for ``density`` of the slot.  ``density = 0``
    yields an empty schedule (a fault-free run); densities approaching 1
    are clamped just below a full slot so at most one node is ever down.
    """
    if not 0.0 <= density < 1.0:
        raise ValueError("density must be within [0, 1)")
    if horizon <= start:
        raise ValueError("horizon must be past the schedule start")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    schedule = FaultSchedule()
    if density == 0.0 or not node_names:
        return schedule
    period = (horizon - start) / (rounds * len(node_names))
    downtime = min(density * period, period * (1.0 - 1e-9))
    for round_index in range(rounds):
        sweep_start = start + round_index * period * len(node_names)
        for index, node in enumerate(node_names):
            schedule.outage(node, start=sweep_start + index * period, duration=downtime)
    return schedule


def rolling_restart_from_density(
    node_names: Sequence[str],
    horizon: float,
    density: float,
    rounds: int = 1,
    start: float = 1.0,
) -> FaultSchedule:
    """Rolling **kill/restart** faults with :func:`rolling_outage_from_density` timing.

    Same slots and downtimes as a rolling outage, but each node's crash
    destroys its in-memory state (``kill``) and its rejoin recovers from
    disk (``restart``) -- so clusters with persistence pay a real recovery
    cost and clusters without lose data for real.
    """
    base = rolling_outage_from_density(
        node_names, horizon=horizon, density=density, rounds=rounds, start=start
    )
    return FaultSchedule(
        FaultEvent(
            time=event.time,
            action=KILL if event.action == CRASH else RESTART,
            node=event.node,
        )
        for event in base
    )


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, serializable fault scenario.

    Where :class:`FaultSchedule` scripts concrete (node, time) events, a
    plan describes the *shape* of the scenario -- how much outage, how
    flaky -- and is materialized against a particular cluster and time
    horizon at run time.  That makes fault scenarios spec-addressable: an
    experiment spec can carry ``{"kind": "rolling_outage", "outage_density":
    0.3}`` instead of hand-building schedules per runner.

    Kinds
    -----
    ``none``
        Fault-free run.
    ``rolling_outage``
        Clean crashes: one node at a time is down for ``outage_density`` of
        its share of the run (see :func:`rolling_outage_from_density`).
    ``grey_failure``
        No crashes; the first ``flaky_nodes`` nodes drop each request with
        probability ``failure_rate`` (see :class:`FlakyNode`).
    ``rolling_grey``
        Both at once: rolling clean outages plus grey-failing nodes.
    ``rolling_restart``
        Rolling **kill/restart** faults: same timing as ``rolling_outage``
        but each crash destroys the node's in-memory state and each rejoin
        recovers it from the persistence layer (empty without one).
    """

    kind: str = "none"
    outage_density: float = 0.0
    rounds: int = 1
    start: float = 1.0
    failure_rate: float = 0.0
    flaky_nodes: int = 1

    KINDS = ("none", "rolling_outage", "grey_failure", "rolling_grey", "rolling_restart")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {self.kind!r}")
        if not 0.0 <= self.outage_density < 1.0:
            raise ValueError("outage_density must be within [0, 1)")
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.flaky_nodes < 0:
            raise ValueError("flaky_nodes must be >= 0")

    # -- named constructors -----------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """A fault-free plan (the default)."""
        return cls()

    @classmethod
    def rolling_outage(cls, outage_density: float, rounds: int = 1, start: float = 1.0) -> "FaultPlan":
        """Clean rolling crashes covering ``outage_density`` of each node's slot."""
        return cls(kind="rolling_outage", outage_density=outage_density, rounds=rounds, start=start)

    @classmethod
    def grey_failure(cls, failure_rate: float, flaky_nodes: int = 1) -> "FaultPlan":
        """Grey failures: ``flaky_nodes`` nodes drop requests at ``failure_rate``."""
        return cls(kind="grey_failure", failure_rate=failure_rate, flaky_nodes=flaky_nodes)

    @classmethod
    def rolling_grey(
        cls,
        outage_density: float,
        failure_rate: float,
        flaky_nodes: int = 1,
        rounds: int = 1,
        start: float = 1.0,
    ) -> "FaultPlan":
        """Rolling clean outages combined with grey-failing nodes."""
        return cls(
            kind="rolling_grey",
            outage_density=outage_density,
            rounds=rounds,
            start=start,
            failure_rate=failure_rate,
            flaky_nodes=flaky_nodes,
        )

    @classmethod
    def rolling_restart(
        cls, outage_density: float, rounds: int = 1, start: float = 1.0
    ) -> "FaultPlan":
        """Rolling kill/restart faults covering ``outage_density`` of each slot."""
        return cls(
            kind="rolling_restart", outage_density=outage_density, rounds=rounds, start=start
        )

    # -- materialization --------------------------------------------------------------
    @property
    def has_outages(self) -> bool:
        return (
            self.kind in ("rolling_outage", "rolling_grey", "rolling_restart")
            and self.outage_density > 0.0
        )

    @property
    def has_grey_failures(self) -> bool:
        return self.kind in ("grey_failure", "rolling_grey") and self.failure_rate > 0.0

    def schedule(self, node_names: Sequence[str], horizon: float) -> FaultSchedule:
        """Concrete crash/recover events for this plan over ``[0, horizon)``."""
        if not self.has_outages:
            return FaultSchedule()
        builder = (
            rolling_restart_from_density
            if self.kind == "rolling_restart"
            else rolling_outage_from_density
        )
        return builder(
            node_names,
            horizon=horizon,
            density=self.outage_density,
            rounds=self.rounds,
            start=self.start,
        )

    def apply_grey(self, cluster, seed: int = 0) -> List["FlakyNode"]:
        """Wrap the plan's flaky nodes on ``cluster``; returns the wrappers.

        Nodes are taken in name order so the choice is deterministic; each
        wrapper draws from its own seed stream derived from ``seed``.
        """
        if not self.has_grey_failures:
            return []
        wrappers = []
        for index, name in enumerate(sorted(cluster.nodes)[: self.flaky_nodes]):
            wrappers.append(make_flaky(cluster, name, self.failure_rate, seed=seed + index))
        return wrappers

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        unknown = set(payload) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        return cls(**payload)


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a cluster.

    Parameters
    ----------
    cluster:
        Anything exposing ``mark_down(name)`` / ``mark_up(name)`` (an
        :class:`~repro.core.cluster.SHHCCluster`).
    schedule:
        The script to apply.
    on_crash / on_recovery:
        Optional hooks ``(node_name) -> None`` invoked *after* the
        membership change; ``on_recovery`` is where anti-entropy repair
        belongs (e.g. ``ReplicationController.repair``).
    drop_in_flight:
        When True, a crashing node *drops* batches it is currently serving
        (their replies are lost; clients must time out and retry) instead of
        draining them.  Implemented by flipping the cluster's
        ``drop_in_flight`` flag, so it only affects targets that model
        in-flight service (the simulated :class:`~repro.core.cluster.SHHCCluster`
        deployment).
    """

    def __init__(
        self,
        cluster,
        schedule: FaultSchedule,
        on_crash: Optional[Callable[[str], None]] = None,
        on_recovery: Optional[Callable[[str], None]] = None,
        drop_in_flight: bool = False,
    ) -> None:
        self.cluster = cluster
        self.schedule = schedule
        self.on_crash = on_crash
        self.on_recovery = on_recovery
        self.drop_in_flight = drop_in_flight
        if drop_in_flight:
            cluster.drop_in_flight = True
        self._pending: List[FaultEvent] = schedule.events
        self.applied: List[FaultEvent] = []
        self.crashes = 0
        self.recoveries = 0
        self.kills = 0
        self.restarts = 0
        #: ``(node, RecoveryReport-or-None)`` per applied restart event.
        self.recovery_reports: List = []

    # -- immediate mode ---------------------------------------------------------------
    def advance(self, now: float) -> List[FaultEvent]:
        """Apply every event whose time is ``<= now``; returns those events."""
        fired: List[FaultEvent] = []
        while self._pending and self._pending[0].time <= now:
            event = self._pending.pop(0)
            self._apply(event)
            fired.append(event)
        return fired

    def drain(self) -> List[FaultEvent]:
        """Apply every remaining event (end of an immediate-mode run)."""
        return self.advance(float("inf"))

    # -- simulated mode ---------------------------------------------------------------
    def attach(self, sim) -> None:
        """Schedule every remaining event on ``sim``'s calendar."""
        pending, self._pending = self._pending, []
        for event in pending:
            sim.schedule_at(event.time, self._apply, event)

    # -- shared -----------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        action = event.action
        if action == CRASH:
            self.cluster.mark_down(event.node)
            self.crashes += 1
            if self.on_crash is not None:
                self.on_crash(event.node)
        elif action == KILL:
            # A kill is a crash that also destroys the node's in-memory
            # state.  Targets without the richer API (e.g. bare test
            # doubles) degrade to a plain reachability crash.
            kill_node = getattr(self.cluster, "kill_node", None)
            if kill_node is not None:
                kill_node(event.node)
            else:
                self.cluster.mark_down(event.node)
            self.crashes += 1
            self.kills += 1
            if self.on_crash is not None:
                self.on_crash(event.node)
        elif action == RESTART:
            restart_node = getattr(self.cluster, "restart_node", None)
            if restart_node is not None:
                report = restart_node(event.node)
            else:
                self.cluster.mark_up(event.node)
                report = None
            self.recoveries += 1
            self.restarts += 1
            self.recovery_reports.append((event.node, report))
            if self.on_recovery is not None:
                self.on_recovery(event.node)
        else:  # RECOVER
            self.cluster.mark_up(event.node)
            self.recoveries += 1
            if self.on_recovery is not None:
                self.on_recovery(event.node)
        self.applied.append(event)

    @property
    def pending(self) -> int:
        """Events not yet applied (immediate mode only)."""
        return len(self._pending)


class FlakyNode:
    """Wrap a hash node so individual lookups fail with a given probability.

    Only the serving entry points (:meth:`lookup`, :meth:`lookup_batch`,
    :meth:`serve_bucket`, :meth:`serve_bucket_batch`,
    :meth:`serve_digest_batch`, :meth:`serve_bucket_verdicts`,
    :meth:`serve_batch`) are intercepted; state
    inspection and maintenance
    paths (``insert_replica``, ``export_entries``, ``__contains__``, ...)
    pass straight through, because replication traffic in this codebase is
    an internal bookkeeping call, not a network request.

    Failures are deterministic given ``seed``, so experiments are
    reproducible.
    """

    def __init__(self, node, failure_rate: float, seed: int = 0) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self._node = node
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.injected_failures = 0

    def _maybe_fail(self) -> None:
        if self._rng.random() < self.failure_rate:
            self.injected_failures += 1
            raise NodeUnavailableError(f"node {self._node.node_id!r} dropped the request")

    # -- intercepted serving paths ----------------------------------------------------
    def lookup(self, fingerprint):
        self._maybe_fail()
        return self._node.lookup(fingerprint)

    def lookup_batch(self, fingerprints):
        self._maybe_fail()
        return self._node.lookup_batch(fingerprints)

    def serve_bucket(self, fingerprints):
        # One failure draw per batch, exactly like lookup_batch -- the
        # routed dispatch path must see the same failure sequence.
        self._maybe_fail()
        return self._node.serve_bucket(fingerprints)

    def serve_bucket_batch(self, batch):
        self._maybe_fail()
        return self._node.serve_bucket_batch(batch)

    def serve_digest_batch(self, batch):
        self._maybe_fail()
        return self._node.serve_digest_batch(batch)

    def serve_bucket_verdicts(self, batch):
        self._maybe_fail()
        return self._node.serve_bucket_verdicts(batch)

    def serve_bucket_results(self, batch, positions, merged):
        self._maybe_fail()
        return self._node.serve_bucket_results(batch, positions, merged)

    def serve_batch(self, request):
        self._maybe_fail()
        return self._node.serve_batch(request)

    # -- transparent delegation -------------------------------------------------------
    def __getattr__(self, name):
        return getattr(self._node, name)

    def __len__(self) -> int:
        return len(self._node)

    def __contains__(self, fingerprint) -> bool:
        return fingerprint in self._node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlakyNode rate={self.failure_rate} wrapping {self._node!r}>"


def make_flaky(cluster, node_name: str, failure_rate: float, seed: int = 0) -> FlakyNode:
    """Replace ``cluster.nodes[node_name]`` with a :class:`FlakyNode` wrapper."""
    wrapper = FlakyNode(cluster.nodes[node_name], failure_rate, seed=seed)
    cluster.nodes[node_name] = wrapper
    return wrapper
