"""Fault injection: scripted node failures and flaky-node wrappers.

The paper claims the hash cluster keeps serving lookups through node
failures; this module turns that claim into a testable scenario family.
Three pieces compose the harness:

* :class:`FaultSchedule` -- a declarative script of crash/recover events
  against a time axis.  The axis is whatever clock the caller advances:
  the simulated clock (seconds) in the simulated deployment, or a logical
  clock (e.g. batch index) in immediate mode.
* :class:`FaultInjector` -- applies a schedule to a cluster, either by
  polling (:meth:`FaultInjector.advance`, immediate mode) or by scheduling
  every event on a :class:`~repro.simulation.engine.Simulator`
  (:meth:`FaultInjector.attach`, simulated mode).  An optional
  ``on_recovery`` hook lets callers run anti-entropy repair (see
  :class:`~repro.core.replication.ReplicationController`) when a node
  rejoins.
* :class:`FlakyNode` -- a transparent wrapper around a
  :class:`~repro.core.hash_node.HybridHashNode` that makes individual
  lookups fail with :class:`NodeUnavailableError` at a configured
  probability, modelling grey failures (timeouts, packet loss) rather than
  clean crashes.  The cluster's routing layer treats such failures as a
  signal to fail the lookup over to the next live replica.

The injector only needs ``mark_down`` / ``mark_up`` / node-name lookup from
its target, so it works on :class:`~repro.core.cluster.SHHCCluster` without
importing it (no circular dependency: the cluster imports this module for
:class:`NodeUnavailableError`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

__all__ = [
    "NodeUnavailableError",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "FlakyNode",
    "make_flaky",
    "rolling_outage_schedule",
]

#: Actions a fault event may carry.
CRASH = "crash"
RECOVER = "recover"
_ACTIONS = (CRASH, RECOVER)


class NodeUnavailableError(RuntimeError):
    """A node (or its RPC endpoint) refused to serve a request."""


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scripted membership change: ``node`` crashes or recovers at ``time``."""

    time: float
    action: str
    node: str

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, got {self.action!r}")
        if self.time < 0:
            raise ValueError("fault event time must be >= 0")


class FaultSchedule:
    """An ordered script of :class:`FaultEvent` entries.

    Builder methods return ``self`` so schedules read fluently::

        schedule = FaultSchedule().crash("hashnode-1", at=2.0).recover("hashnode-1", at=5.0)
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = sorted(events)

    # -- building ---------------------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        self._events.append(event)
        self._events.sort()
        return self

    def crash(self, node: str, at: float) -> "FaultSchedule":
        """Schedule ``node`` to fail (stop serving) at time ``at``."""
        return self.add(FaultEvent(time=at, action=CRASH, node=node))

    def recover(self, node: str, at: float) -> "FaultSchedule":
        """Schedule ``node`` to rejoin at time ``at``."""
        return self.add(FaultEvent(time=at, action=RECOVER, node=node))

    def outage(self, node: str, start: float, duration: float) -> "FaultSchedule":
        """Convenience: crash at ``start``, recover ``duration`` later."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        return self.crash(node, at=start).recover(node, at=start + duration)

    # -- inspection -------------------------------------------------------------------
    @property
    def events(self) -> List[FaultEvent]:
        """All events in time order."""
        return list(self._events)

    @property
    def horizon(self) -> float:
        """Time of the last scheduled event (0.0 for an empty schedule)."""
        return self._events[-1].time if self._events else 0.0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule events={len(self._events)} horizon={self.horizon}>"


def rolling_outage_schedule(
    node_names: Sequence[str],
    period: float,
    downtime: float,
    start: float = 0.0,
    rounds: int = 1,
) -> FaultSchedule:
    """One-node-at-a-time rolling outages across ``node_names``.

    Node *i* crashes at ``start + i * period`` (plus one full sweep per
    round) and recovers ``downtime`` later.  With ``downtime < period`` at
    most one node is ever down, the regime in which a cluster with
    ``replication_factor >= 2`` must not lose a single dedup verdict.
    """
    if period <= 0 or downtime <= 0:
        raise ValueError("period and downtime must be positive")
    if downtime >= period:
        raise ValueError("downtime must be smaller than period (one node down at a time)")
    schedule = FaultSchedule()
    for round_index in range(rounds):
        sweep_start = start + round_index * period * len(node_names)
        for index, node in enumerate(node_names):
            schedule.outage(node, start=sweep_start + index * period, duration=downtime)
    return schedule


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a cluster.

    Parameters
    ----------
    cluster:
        Anything exposing ``mark_down(name)`` / ``mark_up(name)`` (an
        :class:`~repro.core.cluster.SHHCCluster`).
    schedule:
        The script to apply.
    on_crash / on_recovery:
        Optional hooks ``(node_name) -> None`` invoked *after* the
        membership change; ``on_recovery`` is where anti-entropy repair
        belongs (e.g. ``ReplicationController.repair``).
    """

    def __init__(
        self,
        cluster,
        schedule: FaultSchedule,
        on_crash: Optional[Callable[[str], None]] = None,
        on_recovery: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.cluster = cluster
        self.schedule = schedule
        self.on_crash = on_crash
        self.on_recovery = on_recovery
        self._pending: List[FaultEvent] = schedule.events
        self.applied: List[FaultEvent] = []
        self.crashes = 0
        self.recoveries = 0

    # -- immediate mode ---------------------------------------------------------------
    def advance(self, now: float) -> List[FaultEvent]:
        """Apply every event whose time is ``<= now``; returns those events."""
        fired: List[FaultEvent] = []
        while self._pending and self._pending[0].time <= now:
            event = self._pending.pop(0)
            self._apply(event)
            fired.append(event)
        return fired

    def drain(self) -> List[FaultEvent]:
        """Apply every remaining event (end of an immediate-mode run)."""
        return self.advance(float("inf"))

    # -- simulated mode ---------------------------------------------------------------
    def attach(self, sim) -> None:
        """Schedule every remaining event on ``sim``'s calendar."""
        pending, self._pending = self._pending, []
        for event in pending:
            sim.schedule_at(event.time, self._apply, event)

    # -- shared -----------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        if event.action == CRASH:
            self.cluster.mark_down(event.node)
            self.crashes += 1
            if self.on_crash is not None:
                self.on_crash(event.node)
        else:
            self.cluster.mark_up(event.node)
            self.recoveries += 1
            if self.on_recovery is not None:
                self.on_recovery(event.node)
        self.applied.append(event)

    @property
    def pending(self) -> int:
        """Events not yet applied (immediate mode only)."""
        return len(self._pending)


class FlakyNode:
    """Wrap a hash node so individual lookups fail with a given probability.

    Only the serving entry points (:meth:`lookup`, :meth:`lookup_batch`,
    :meth:`serve_batch`) are intercepted; state inspection and maintenance
    paths (``insert_replica``, ``export_entries``, ``__contains__``, ...)
    pass straight through, because replication traffic in this codebase is
    an internal bookkeeping call, not a network request.

    Failures are deterministic given ``seed``, so experiments are
    reproducible.
    """

    def __init__(self, node, failure_rate: float, seed: int = 0) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self._node = node
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.injected_failures = 0

    def _maybe_fail(self) -> None:
        if self._rng.random() < self.failure_rate:
            self.injected_failures += 1
            raise NodeUnavailableError(f"node {self._node.node_id!r} dropped the request")

    # -- intercepted serving paths ----------------------------------------------------
    def lookup(self, fingerprint):
        self._maybe_fail()
        return self._node.lookup(fingerprint)

    def lookup_batch(self, fingerprints):
        self._maybe_fail()
        return self._node.lookup_batch(fingerprints)

    def serve_batch(self, request):
        self._maybe_fail()
        return self._node.serve_batch(request)

    # -- transparent delegation -------------------------------------------------------
    def __getattr__(self, name):
        return getattr(self._node, name)

    def __len__(self) -> int:
        return len(self._node)

    def __contains__(self, fingerprint) -> bool:
        return fingerprint in self._node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlakyNode rate={self.failure_rate} wrapping {self._node!r}>"


def make_flaky(cluster, node_name: str, failure_rate: float, seed: int = 0) -> FlakyNode:
    """Replace ``cluster.nodes[node_name]`` with a :class:`FlakyNode` wrapper."""
    wrapper = FlakyNode(cluster.nodes[node_name], failure_rate, seed=seed)
    cluster.nodes[node_name] = wrapper
    return wrapper
