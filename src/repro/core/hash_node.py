"""The hybrid hash node: RAM LRU cache + bloom filter + SSD hash table.

This is the building block of the paper's contribution (§III.B, Figures 3-4).
Each node owns a contiguous slice of the fingerprint space and answers
"is this chunk already stored?" queries with the following tiered lookup:

1. probe the RAM LRU cache -- a hit is answered immediately and refreshed;
2. on a miss, probe the in-RAM bloom filter guarding the SSD table -- a
   negative means the fingerprint is definitely new, so it is inserted
   (write-buffered) into the SSD table, added to the bloom filter and cached;
3. a positive bloom filter sends the lookup to the SSD hash table -- a hit is
   promoted into the RAM cache and answered as a duplicate, a miss (bloom
   false positive) is treated like a new fingerprint.

The node tracks where every answer came from (:class:`~repro.core.protocol.ServedFrom`)
and how much device time the answer cost, which is what the latency/throughput
experiments consume.

Two execution modes
-------------------
* **Immediate mode** (``sim is None``): lookups update the data structures and
  return analytic service times from the device cost models.  This is the mode
  library users get when they use the cluster as a real dedup index.
* **Simulated mode**: :meth:`serve_batch` returns an event that completes after
  the node's CPU worker pool and SSD device have actually been held for the
  required time on the simulated clock, so queueing and saturation emerge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..dedup.fingerprint import Fingerprint
from ..simulation.engine import Event, Simulator
from ..simulation.process import run_process
from ..simulation.resources import Resource
from ..simulation.stats import Counter, LatencyRecorder
from ..storage.bloom import BloomFilter
from ..storage.devices import StorageDevice, make_ram, make_ssd
from ..storage.hashstore import SSDHashStore
from ..storage.lru import LRUCache
from ..dedup.index import LookupResult
from ..storage.npy import HAVE_NUMPY, NUMPY_MIN_BATCH
from .bucket_kernel import EMPTY_LOCATION, fused_columnar_kernels, fused_kernels
from .config import HashNodeConfig
from .digest_batch import DigestBatch
from .persistence import NodePersistence, RecoveryReport
from .protocol import BatchLookupReply, BatchLookupRequest, LookupReply, ServedFrom

__all__ = ["HybridHashNode", "NodeSnapshot"]


@dataclass
class NodeSnapshot:
    """Point-in-time statistics of a node, used by reports and Figure 6."""

    node_id: str
    entries: int
    ram_cached: int
    lookups: int
    ram_hits: int
    ssd_hits: int
    new_entries: int
    destages: int
    bloom_negative_shortcuts: int
    bloom_false_positives: int
    counters: dict = field(default_factory=dict)

    @property
    def duplicates(self) -> int:
        return self.ram_hits + self.ssd_hits

    @property
    def ram_hit_ratio(self) -> float:
        return self.ram_hits / self.lookups if self.lookups else 0.0


class HybridHashNode:
    """A single RAM+SSD hash node of the SHHC cluster."""

    def __init__(
        self,
        node_id: str,
        config: Optional[HashNodeConfig] = None,
        sim: Optional[Simulator] = None,
        ram_device: Optional[StorageDevice] = None,
        ssd_device: Optional[StorageDevice] = None,
        persistence: Optional[NodePersistence] = None,
        bloom: Optional[BloomFilter] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config if config is not None else HashNodeConfig()
        self.sim = sim
        self.ram_device = ram_device if ram_device is not None else make_ram(sim, f"{node_id}.ram")
        self.ssd_device = ssd_device if ssd_device is not None else make_ssd(sim, f"{node_id}.ssd")
        self.cache = LRUCache(self.config.ram_cache_entries, on_evict=self._on_destage)
        # An injected filter (e.g. a shared-memory-backed one from a serving
        # worker spec) must be in place *before* recovery below restores the
        # snapshot bits into it.
        self.bloom = bloom if bloom is not None else BloomFilter(
            expected_items=self.config.bloom_expected_items,
            false_positive_rate=self.config.bloom_false_positive_rate,
        )
        self.store = SSDHashStore(
            num_buckets=self.config.ssd_buckets,
            page_size=self.config.ssd_page_size,
            entry_size=self.config.ssd_entry_size,
            write_buffer_pages=self.config.ssd_write_buffer_pages,
        )
        self.counters = Counter()
        self.lookup_latency = LatencyRecorder(f"{node_id}.lookup_latency")
        # Reusable fused-kernel argument block (built lazily by _run_fused;
        # identity-guarded against cache/bloom/store replacement).
        self._fused_args: Optional[list] = None
        # (bloom_object, kernels, columnar_kernels) memo: the fused-kernel
        # registry lookup is a tuple-keyed dict probe per bucket serve, this
        # is one identity check.  Invalidated automatically when recovery
        # swaps the filter.  ``columnar_kernels`` is ``None`` unless the
        # numpy backend is active and the bloom shape is columnar-eligible.
        self._kernel_memo: Tuple[Optional[BloomFilter], Optional[Tuple], Optional[Tuple]] = (
            None, None, None,
        )
        self._cpu: Optional[Resource] = (
            Resource(sim, capacity=self.config.service_concurrency, name=f"{node_id}.cpu")
            if sim is not None
            else None
        )
        #: Durable storage lifecycle (``None`` keeps the node fully in-memory
        #: and every code path byte-identical to the non-persistent build).
        self.persistence = persistence
        #: Report of the most recent disk recovery (construction-time warm
        #: start or :meth:`restart`); ``None`` until one happens.
        self.last_recovery: Optional[RecoveryReport] = None
        if persistence is not None and (persistence.records or len(persistence.wal)):
            # Prior on-disk state exists: this is a process restart, so warm
            # the index before serving anything.
            self.last_recovery = persistence.recover_into(self)

    # ------------------------------------------------------------------ state
    def __len__(self) -> int:
        """Number of distinct fingerprints stored on this node."""
        return len(self.store)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        """Read-only membership check (does not insert or touch the cache)."""
        return fingerprint.digest in self.store

    def _on_destage(self, _key, _value) -> None:
        # Entries in the LRU are already persisted in the SSD table, so a
        # destage is simply dropping the RAM copy; we only count it.  This
        # fires once per eviction on the steady-state hot path, so the
        # counter bump is inlined rather than routed through increment().
        values = self.counters.values
        values["destages"] = values.get("destages", 0) + 1

    # --------------------------------------------------------- immediate mode
    def lookup(self, fingerprint: Fingerprint) -> LookupReply:
        """Process one fingerprint through the Figure-4 flow (immediate mode)."""
        reply, _io_time = self._lookup_core(fingerprint)
        self.lookup_latency.record(reply.service_time)
        if not reply.is_duplicate and self.persistence is not None:
            self._persist_new([(fingerprint.digest, fingerprint.chunk_size)])
        return reply

    def lookup_batch(self, fingerprints: Sequence[Fingerprint]) -> List[LookupReply]:
        """Process a batch of fingerprints in order (immediate mode).

        Verdicts, counters and service times are identical to looping over
        :meth:`lookup`; the batch path only amortises the bloom-filter probes
        across the batch (see :meth:`_lookup_batch_core`).
        """
        replies, _new_entries = self.serve_bucket(fingerprints)
        return replies

    def serve_bucket(self, fingerprints: Sequence[Fingerprint]) -> Tuple[List[LookupReply], int]:
        """:meth:`lookup_batch` plus the batch's new-entry count.

        The cluster's routed dispatch uses the count to skip replica
        propagation entirely for buckets that answered only duplicates.
        """
        replies, service_times, _total_ssd_time, new_entries = self._lookup_batch_core(
            fingerprints
        )
        self.lookup_latency.record_many(service_times)
        if new_entries and self.persistence is not None:
            self._persist_new_replies(replies)
        return replies, new_entries

    def serve_bucket_batch(self, batch: DigestBatch) -> Tuple[List[LookupReply], int]:
        """:meth:`serve_bucket` over a :class:`~repro.core.digest_batch.DigestBatch`.

        Takes the fused batch kernel (:mod:`repro.core.bucket_kernel`) when
        the bloom shape supports it: the whole RAM/bloom/SSD flow runs as
        one exec-generated loop over the batch's packed hash words, with
        store and bloom state settled once per batch.  Replies, counters,
        and service times are byte-identical to :meth:`serve_bucket` over
        ``batch.fingerprints()`` -- which is also the fallback for
        un-unrollable shapes or non-digest-keyed filters.
        """
        kernels, columnar = self._select_kernels()
        if kernels is None:
            return self.serve_bucket(batch.fingerprints())
        use_columnar = columnar is not None and len(batch) >= NUMPY_MIN_BATCH
        replies: List[LookupReply] = []
        service_times: List[float] = []
        new_entries = self._run_fused(
            (columnar if use_columnar else kernels)[0], batch,
            batch.fingerprints(), replies.append,
            service_times.append, None, columnar=use_columnar,
        )
        self.lookup_latency.record_many(service_times)
        if new_entries and self.persistence is not None:
            self._persist_new_replies(replies)
        return replies, new_entries

    def serve_digest_batch(self, batch: DigestBatch) -> Tuple[List[bool], int]:
        """Verdict-only serve for wire batches (the serving worker's path).

        Same state transitions and counters as :meth:`serve_bucket`, but no
        ``Fingerprint`` or :class:`LookupReply` objects are ever built:
        returns the per-digest duplicate verdicts (input order) and the
        batch's new-entry count.  New ``(digest, chunk_size)`` pairs are
        persisted exactly as the reply path would.
        """
        verdicts, _service_times, new_pairs = self.serve_bucket_verdicts(batch)
        return verdicts, len(new_pairs)

    def serve_bucket_verdicts(
        self, batch: DigestBatch
    ) -> Tuple[List[bool], List[float], List[Tuple[bytes, int]]]:
        """Verdict serve with per-key service times and the new pairs.

        The cluster's result-producing batch path
        (:meth:`~repro.core.cluster.SHHCCluster.lookup_batch`) builds its
        ``LookupResult`` objects straight from these three parallel views,
        skipping the intermediate :class:`LookupReply` allocation entirely;
        ``new_pairs`` (input order) is what replica propagation needs.
        State transitions match :meth:`serve_bucket` exactly.
        """
        kernels, columnar = self._select_kernels()
        if kernels is None:
            replies, service_times, _total_ssd_time, new_entries = self._lookup_batch_core(
                batch.fingerprints()
            )
            self.lookup_latency.record_many(service_times)
            if new_entries and self.persistence is not None:
                self._persist_new_replies(replies)
            verdicts = [reply.is_duplicate for reply in replies]
            new_pairs = [
                (reply.fingerprint.digest, reply.fingerprint.chunk_size)
                for reply in replies
                if not reply.is_duplicate
            ]
            return verdicts, service_times, new_pairs
        if columnar is not None and len(batch) >= NUMPY_MIN_BATCH:
            kernels, use_columnar = columnar, True
        else:
            use_columnar = False
        verdicts: List[bool] = []
        service_times: List[float] = []
        new_pairs: List[Tuple[bytes, int]] = []
        # Routed buckets carry Fingerprint objects: the routed variant reads
        # chunk sizes off them (new entries only), so no chunk-size list is
        # ever materialised on the cluster path.
        if batch._fingerprints is not None:
            kernel, per_key = kernels[2], batch._fingerprints
        else:
            kernel, per_key = kernels[1], batch.chunk_sizes
        self._run_fused(
            kernel, batch, per_key, verdicts.append,
            service_times.append, new_pairs.append, columnar=use_columnar,
        )
        self.lookup_latency.record_many(service_times)
        if new_pairs and self.persistence is not None:
            self._persist_new(new_pairs)
        return verdicts, service_times, new_pairs

    def serve_bucket_results(
        self, batch: DigestBatch, positions: Sequence[int], merged: List
    ) -> Tuple[List[float], List[Tuple[bytes, int]]]:
        """Serve a routed bucket straight into the cluster's merge slots.

        The fused ``result`` kernel builds one
        :class:`~repro.dedup.index.LookupResult` per key -- the only
        per-key object on this path -- and stores it at
        ``merged[positions[i]]``.  Returns ``(service_times, new_pairs)``;
        the bucket's duplicate count is ``len(batch) - len(new_pairs)``.
        State transitions match :meth:`serve_bucket` exactly.
        """
        kernels, columnar = self._select_kernels()
        if kernels is None:
            replies, service_times, _total_ssd_time, new_entries = self._lookup_batch_core(
                batch.fingerprints()
            )
            self.lookup_latency.record_many(service_times)
            if new_entries and self.persistence is not None:
                self._persist_new_replies(replies)
            new_pairs = [
                (reply.fingerprint.digest, reply.fingerprint.chunk_size)
                for reply in replies
                if not reply.is_duplicate
            ]
            new_result = object.__new__
            node_id = self.node_id
            for reply, position in zip(replies, positions):
                result = new_result(LookupResult)
                fields = result.__dict__
                fields["fingerprint"] = reply.fingerprint
                fields["is_duplicate"] = reply.is_duplicate
                fields["location"] = EMPTY_LOCATION
                fields["latency"] = reply.service_time
                fields["served_by"] = node_id
                merged[position] = result
            return service_times, new_pairs
        use_columnar = columnar is not None and len(batch) >= NUMPY_MIN_BATCH
        service_times: List[float] = []
        new_pairs: List[Tuple[bytes, int]] = []
        self._run_fused(
            (columnar if use_columnar else kernels)[3], batch,
            batch._fingerprints, (positions, merged),
            service_times.append, new_pairs.append, columnar=use_columnar,
        )
        self.lookup_latency.record_many(service_times)
        if new_pairs and self.persistence is not None:
            self._persist_new(new_pairs)
        return service_times, new_pairs

    def _select_kernels(self) -> Tuple[Optional[Tuple], Optional[Tuple]]:
        """``(scalar_kernels, columnar_kernels)`` for the current bloom filter.

        Memoized on bloom identity (kill/restart and recovery replace the
        filter wholesale).  ``columnar_kernels`` is ``None`` unless the
        numpy backend is active and the filter is columnar-eligible; the
        serve methods then pick per batch by the ``REPRO_NUMPY_MIN_BATCH``
        crossover.
        """
        bloom = self.bloom
        memo_bloom, kernels, columnar = self._kernel_memo
        if memo_bloom is not bloom:
            kernels = (
                fused_kernels(bloom.num_bits, bloom.num_hashes)
                if bloom.digest_keys
                else None
            )
            columnar = (
                fused_columnar_kernels(bloom.num_bits, bloom.num_hashes)
                if kernels is not None and bloom.columnar_eligible
                else None
            )
            self._kernel_memo = (bloom, kernels, columnar)
        return kernels, columnar

    @property
    def kernel_backend(self) -> str:
        """The batch-kernel backend this node resolved: ``numpy`` or ``python-packed``.

        Reported by the serving worker's ``/stats`` and in
        ``ScenarioResult`` metrics.  ``numpy`` means large batches
        (``>= REPRO_NUMPY_MIN_BATCH`` keys) run the columnar bloom
        prefetch; small buckets always keep the exec-generated scalar
        kernels, whose outputs are byte-identical either way.
        """
        if HAVE_NUMPY and self.bloom.columnar_eligible:
            return "numpy"
        return "python-packed"

    def _run_fused(self, kernel, batch, per_key, out_append, times_append,
                   new_append, columnar: bool = False) -> int:
        """Invoke a fused kernel and settle store/cache/bloom/counter state."""
        cache = self.cache
        cached = cache.data
        store = self.store
        store_buckets, store_num_buckets, entries_per_page, write_buffer_pages, buffered = (
            store.batch_state()
        )
        bits = self.bloom.raw_bits()
        args = self._fused_args
        if args is None or args[3] is not cached or args[8] is not bits or args[9] is not store_buckets:
            # (Re)build the constant argument block.  Slots 0-2 and 19-21
            # are per-batch; everything else is fixed for the lifetime of
            # the node's cache/bloom/store objects (device costs are pure
            # functions of the spec), so the identity guard above is the
            # only invalidation needed -- kill/restart and recovery replace
            # those objects wholesale.
            args = self._fused_args = [
                None, None, None, cached, cached.move_to_end, cached.popitem,
                cache._on_evict, cache.capacity, bits, store_buckets,
                store_num_buckets, entries_per_page, write_buffer_pages,
                buffered, self.node_id,
                self.config.cpu_per_lookup + self.ram_device.read_cost(64),
                self.ssd_device.read_cost(store.page_size),
                self.ssd_device.write_cost(store.page_size),
                self.ssd_device.write_cost(store.page_size, False),
                None, None, None,
            ]
        args[0] = batch.digests
        args[1] = batch.hash_words
        args[2] = per_key
        args[13] = buffered
        args[19] = out_append
        args[20] = times_append
        args[21] = new_append
        if columnar:
            # Lazy whole-batch bloom prefetch (first RAM-miss pays it):
            # verdicts for every key plus the probe-index rows of the
            # negatives, which the kernel uses for dirty re-checks and the
            # negative-path bit inserts (see core/bucket_kernel.py).
            words_np = batch.hash_words_np
            prefetch = self.bloom._prefetch_probe_np
            (
                ram_hits, ssd_hits, new_entries, bloom_negative_shortcuts,
                bloom_false_positives, total_ssd_time, page_reads, page_writes,
                buffer_flushes, buffered, cache_insertions, cache_evictions,
            ) = kernel(*args, lambda: prefetch(words_np()))
        else:
            (
                ram_hits, ssd_hits, new_entries, bloom_negative_shortcuts,
                bloom_false_positives, total_ssd_time, page_reads, page_writes,
                buffer_flushes, buffered, cache_insertions, cache_evictions,
            ) = kernel(*args)
        args[0] = args[1] = args[2] = args[19] = args[20] = args[21] = None
        store.settle_batch(page_reads, page_writes, buffer_flushes, buffered, new_entries)
        if new_entries:
            self.bloom.count_inserts(new_entries)
        total = len(batch.digests)
        if total:
            cache.hits += ram_hits
            cache.misses += total - ram_hits
        if cache_insertions:
            cache.insertions += cache_insertions
        if cache_evictions:
            cache.evictions += cache_evictions
        # Counter.increment inlined (same read-modify-write on the raw
        # values dict): six method calls per bucket add up at batch rates.
        values = self.counters.values
        values_get = values.get
        if total:
            values["lookups"] = values_get("lookups", 0) + total
        if ram_hits:
            values["ram_hits"] = values_get("ram_hits", 0) + ram_hits
        if ssd_hits:
            values["ssd_hits"] = values_get("ssd_hits", 0) + ssd_hits
        if new_entries:
            values["new_entries"] = values_get("new_entries", 0) + new_entries
        if bloom_negative_shortcuts:
            values["bloom_negative_shortcuts"] = (
                values_get("bloom_negative_shortcuts", 0) + bloom_negative_shortcuts
            )
        if bloom_false_positives:
            values["bloom_false_positives"] = (
                values_get("bloom_false_positives", 0) + bloom_false_positives
            )
        return new_entries

    def _lookup_batch_core(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Tuple[List[LookupReply], List[float], float, int]:
        """Batch lookup core shared by immediate and simulated mode.

        The loop body is :meth:`_lookup_core` unrolled with bound methods,
        constant service-time components hoisted, counters aggregated per
        batch (same totals), the RAM probe inlined against the LRU's raw
        dict (hit/miss counters settled per batch), and the store's
        page-count accessors
        (:meth:`~repro.storage.hashstore.SSDHashStore.probe_pages` /
        :meth:`~repro.storage.hashstore.SSDHashStore.insert_new_pages`)
        in place of the ``IOOperation``-list cost model -- per-fingerprint
        Python overhead is what caps cluster lookup throughput.  The bloom
        filter is probed live per fingerprint through the unrolled
        single-key kernel, which both sidesteps the staleness bookkeeping
        a batch prefetch needs (inserts mutate the filter mid-batch) and
        beats it on cost: negatives -- the common probe -- exit at the
        first zero bit.  Device times are accumulated in the same
        association order as ``_lookup_core``, so service times stay
        bit-identical (pinned by tests/test_core_hash_node.py).
        """
        cache = self.cache
        cached = cache.data
        replies: List[LookupReply] = []
        append = replies.append
        service_times: List[float] = []
        time_append = service_times.append
        total_ssd_time = 0.0

        node_id = self.node_id
        store = self.store
        bloom = self.bloom
        cpu_time = self.config.cpu_per_lookup
        ram_time = self.ram_device.read_cost(64)
        base_time = cpu_time + ram_time
        page_read_cost = self.ssd_device.read_cost(store.page_size)
        page_write_rand_cost = self.ssd_device.write_cost(store.page_size)
        page_write_seq_cost = self.ssd_device.write_cost(store.page_size, False)
        move_to_end = cached.move_to_end
        cache_put_new = cache.put_new
        probe_pages = store.probe_pages
        insert_new_pages = store.insert_new_pages
        bloom_contains = bloom.contains_one
        bloom_add_one = bloom.add_one
        served_ram = ServedFrom.RAM
        served_ssd = ServedFrom.SSD
        served_new = ServedFrom.NEW
        new_reply = object.__new__
        reply_cls = LookupReply
        ram_hits = ssd_hits = new_entries = 0
        bloom_negative_shortcuts = bloom_false_positives = 0

        for fingerprint in fingerprints:
            digest = fingerprint.digest

            # 1. RAM LRU probe (raw-dict hit test; hit/miss counters are
            # settled on the cache after the loop, recency per hit here).
            if digest in cached:
                move_to_end(digest)
                ram_hits += 1
                reply = new_reply(reply_cls)
                fields = reply.__dict__
                fields["fingerprint"] = fingerprint
                fields["is_duplicate"] = True
                fields["served_from"] = served_ram
                fields["node_id"] = node_id
                fields["service_time"] = base_time
                append(reply)
                time_append(base_time)
                continue

            # 2. Bloom filter guard (live single-key kernel probe).
            if bloom_contains(digest):
                # 3. SSD hash-table probe (single page on a well-sized table).
                pages, present = probe_pages(digest)
                if pages == 1:
                    ssd_time = 0.0 + page_read_cost
                else:
                    ssd_time = 0.0
                    for _ in range(pages):
                        ssd_time += page_read_cost
                if present:
                    ssd_hits += 1
                    cache_put_new(digest, True)
                    service_time = base_time + ssd_time
                    reply = new_reply(reply_cls)
                    fields = reply.__dict__
                    fields["fingerprint"] = fingerprint
                    fields["is_duplicate"] = True
                    fields["served_from"] = served_ssd
                    fields["node_id"] = node_id
                    fields["service_time"] = service_time
                    append(reply)
                    time_append(service_time)
                    total_ssd_time += ssd_time
                    continue
                bloom_false_positives += 1
            else:
                bloom_negative_shortcuts += 1
                ssd_time = 0.0

            # New fingerprint (bloom negative or false positive): insert.
            # The key is known-absent everywhere (bloom filters have no
            # false negatives; the SSD probe just missed), so the fused
            # known-new store/cache primitives apply.
            new_entries += 1
            bloom_add_one(digest)
            cache_put_new(digest, True)
            pages, random_access = insert_new_pages(digest, fingerprint.chunk_size)
            if pages:
                page_cost = page_write_rand_cost if random_access else page_write_seq_cost
                if pages == 1:
                    insert_time = 0.0 + page_cost
                else:
                    insert_time = 0.0
                    for _ in range(pages):
                        insert_time += page_cost
                ssd_time += insert_time
            service_time = base_time + ssd_time
            reply = new_reply(reply_cls)
            fields = reply.__dict__
            fields["fingerprint"] = fingerprint
            fields["is_duplicate"] = False
            fields["served_from"] = served_new
            fields["node_id"] = node_id
            fields["service_time"] = service_time
            append(reply)
            time_append(service_time)
            total_ssd_time += ssd_time

        if new_entries:
            bloom.count_inserts(new_entries)
        if fingerprints:
            # Settle the raw-dict LRU probes (same totals as per-probe
            # accounting: every fingerprint was exactly one hit or miss).
            cache.hits += ram_hits
            cache.misses += len(fingerprints) - ram_hits
        counters = self.counters
        if fingerprints:
            counters.increment("lookups", len(fingerprints))
        if ram_hits:
            counters.increment("ram_hits", ram_hits)
        if ssd_hits:
            counters.increment("ssd_hits", ssd_hits)
        if new_entries:
            counters.increment("new_entries", new_entries)
        if bloom_negative_shortcuts:
            counters.increment("bloom_negative_shortcuts", bloom_negative_shortcuts)
        if bloom_false_positives:
            counters.increment("bloom_false_positives", bloom_false_positives)
        return replies, service_times, total_ssd_time, new_entries

    def _lookup_core(
        self, fingerprint: Fingerprint, bloom_hint: Optional[bool] = None
    ) -> Tuple[LookupReply, float]:
        """Shared lookup logic: updates state, returns the reply and SSD time.

        The returned ``service_time`` is the analytic (unloaded) cost:
        CPU + RAM + any SSD page accesses.  The second tuple element is the
        SSD-only portion, which the simulated path replays against the SSD
        device to model queueing.  ``bloom_hint``, when not ``None``, is a
        still-valid pre-computed bloom verdict for this digest (batch path);
        it must reflect every insert that happened before this call.
        """
        digest = fingerprint.digest
        self.counters.increment("lookups")
        cpu_time = self.config.cpu_per_lookup
        ram_time = self.ram_device.read_cost(64)
        ssd_time = 0.0

        # 1. RAM LRU probe.
        if self.cache.get(digest) is not None:
            self.counters.increment("ram_hits")
            reply = LookupReply(
                fingerprint=fingerprint,
                is_duplicate=True,
                served_from=ServedFrom.RAM,
                node_id=self.node_id,
                service_time=cpu_time + ram_time,
            )
            return reply, ssd_time

        # 2. Bloom filter guard.
        in_bloom = (digest in self.bloom) if bloom_hint is None else bloom_hint
        if not in_bloom:
            self.counters.increment("bloom_negative_shortcuts")
            ssd_time += self._insert_new(fingerprint)
            reply = LookupReply(
                fingerprint=fingerprint,
                is_duplicate=False,
                served_from=ServedFrom.NEW,
                node_id=self.node_id,
                service_time=cpu_time + ram_time + ssd_time,
            )
            return reply, ssd_time

        # 3. SSD hash-table probe.
        for operation in self.store.lookup_io(digest):
            ssd_time += self._device_cost(operation)
        if digest in self.store:
            self.counters.increment("ssd_hits")
            self.cache.put(digest, True)
            reply = LookupReply(
                fingerprint=fingerprint,
                is_duplicate=True,
                served_from=ServedFrom.SSD,
                node_id=self.node_id,
                service_time=cpu_time + ram_time + ssd_time,
            )
            return reply, ssd_time

        # Bloom false positive: the SSD read found nothing.
        self.counters.increment("bloom_false_positives")
        ssd_time += self._insert_new(fingerprint)
        reply = LookupReply(
            fingerprint=fingerprint,
            is_duplicate=False,
            served_from=ServedFrom.NEW,
            node_id=self.node_id,
            service_time=cpu_time + ram_time + ssd_time,
        )
        return reply, ssd_time

    def insert_replica(self, fingerprint: Fingerprint) -> bool:
        """Store a replica copy of ``fingerprint`` without serving a lookup.

        This is the cluster's replica *write* path: it must not touch the
        ``lookups`` counter or the latency recorder (a replication write is
        not a client lookup, and counting it would inflate per-node load and
        skew ``duplicate_ratio``).  The copy goes into the SSD store and the
        bloom filter but deliberately not into the RAM LRU, which is reserved
        for fingerprints this node actually served.  Returns ``True`` if the
        fingerprint was new on this node.
        """
        digest = fingerprint.digest
        if not self.store.put(digest, fingerprint.chunk_size):
            return False
        self.bloom.add(digest)
        self.counters.increment("replica_inserts")
        if self.persistence is not None:
            self._persist_new([(digest, fingerprint.chunk_size)])
        return True

    def insert_replica_many(self, fingerprints: Sequence[Fingerprint]) -> int:
        """Batched :meth:`insert_replica`: one bloom kernel call per batch.

        Store puts happen in input order and the bloom filter receives the
        new digests through :meth:`~repro.storage.bloom.BloomFilter.add_many`,
        so the final store/bloom state and the ``replica_inserts`` counter
        are identical to looping over :meth:`insert_replica`.  Returns how
        many fingerprints were new on this node.  The cluster's routed
        dispatch uses the fused put-as-holder-check variant of this
        (``_resolve_replies`` + :meth:`finish_replica_inserts`); this
        method is the standalone batched replica-write API (rebalancing,
        re-replication) and the reference the equivalence tests pin.
        """
        store_put = self.store.put
        new_digests = []
        append = new_digests.append
        for fingerprint in fingerprints:
            digest = fingerprint.digest
            if store_put(digest, fingerprint.chunk_size):
                append(digest)
        self.finish_replica_inserts(new_digests)
        return len(new_digests)

    def finish_replica_inserts(self, new_digests: Sequence[bytes]) -> None:
        """Complete replica writes whose store puts already happened.

        The cluster's batched replica propagation combines the
        holder-check and the store write into one ``store.put`` per
        destination (the put's return value *is* the holder verdict) and
        then settles the bloom filter and the ``replica_inserts`` counter
        here, once per bucket.  State-identical to :meth:`insert_replica`
        for the same digests.
        """
        if new_digests:
            # The digests come straight out of the peer's store: 20-byte by
            # construction, so the trusted packed add applies.
            self.bloom.add_digests(new_digests)
            self.counters.increment("replica_inserts", len(new_digests))
            if self.persistence is not None:
                store_get = self.store.get
                self._persist_new((digest, store_get(digest)) for digest in new_digests)

    # ------------------------------------------------------------- persistence
    def _persist_new_replies(self, replies: Sequence[LookupReply]) -> None:
        """Durably log the new fingerprints a served batch acknowledged."""
        self._persist_new(
            (reply.fingerprint.digest, reply.fingerprint.chunk_size)
            for reply in replies
            if not reply.is_duplicate
        )

    def _persist_new(self, pairs) -> None:
        """Append acknowledged inserts to the container; snapshot when due."""
        persistence = self.persistence
        persistence.log_insert_many(pairs)
        if persistence.snapshot_due():
            persistence.take_snapshot(self.bloom, entries=len(self.store), store=self.store)
            self.counters.increment("snapshots")

    def kill(self) -> None:
        """Crash this node: every in-memory structure is destroyed.

        The RAM cache, bloom filter, and hash table are replaced with empty
        ones, exactly as a process kill would lose them; only what the
        persistence layer wrote to disk survives.  Cumulative statistics
        (counters, latency recorder) are harness-side observability and are
        deliberately kept.
        """
        config = self.config
        self.cache = LRUCache(config.ram_cache_entries, on_evict=self._on_destage)
        # A kill models losing *this process's* memory: a shared-memory-backed
        # filter is detached (not unlinked -- other attachments keep their
        # copy) and the replacement is always private.
        self.bloom.close_shared()
        self.bloom = BloomFilter(
            expected_items=config.bloom_expected_items,
            false_positive_rate=config.bloom_false_positive_rate,
        )
        self.store = SSDHashStore(
            num_buckets=config.ssd_buckets,
            page_size=config.ssd_page_size,
            entry_size=config.ssd_entry_size,
            write_buffer_pages=config.ssd_write_buffer_pages,
        )
        self.counters.increment("kills")

    def restart(self) -> Optional[RecoveryReport]:
        """Recover this node's state from disk after :meth:`kill`.

        Returns the :class:`~repro.core.persistence.RecoveryReport`, or
        ``None`` when the node has no persistence layer -- in which case it
        restarts empty (honest data loss, which the failover experiments
        surface as reduced accuracy at replication factor 1).
        """
        self.counters.increment("restarts")
        if self.persistence is None:
            return None
        report = self.persistence.recover_into(self)
        self.last_recovery = report
        return report

    def _insert_new(self, fingerprint: Fingerprint) -> float:
        """Record a previously unseen fingerprint; returns the SSD write time."""
        digest = fingerprint.digest
        self.counters.increment("new_entries")
        self.store.put(digest, fingerprint.chunk_size)
        self.bloom.add(digest)
        self.cache.put(digest, True)
        ssd_time = 0.0
        for operation in self.store.insert_io(digest):
            ssd_time += self._device_cost(operation)
        return ssd_time

    def _device_cost(self, operation) -> float:
        if operation.kind == "read":
            return self.ssd_device.read_cost(operation.size_bytes, operation.random_access)
        return self.ssd_device.write_cost(operation.size_bytes, operation.random_access)

    # --------------------------------------------------------- simulated mode
    def serve_batch(self, request: BatchLookupRequest) -> Event:
        """Serve a batch on the simulated clock.

        The node's CPU worker pool is held for the per-request plus
        per-fingerprint CPU time; accumulated SSD page time is then spent on
        the shared SSD device (modelling its queue).  The returned event
        succeeds with a :class:`BatchLookupReply`.
        """
        if self.sim is None or self._cpu is None:
            raise RuntimeError("serve_batch requires a node constructed with a Simulator")
        return run_process(self.sim, self._serve_batch_process(request), name=f"{self.node_id}.serve")

    def _serve_batch_process(self, request: BatchLookupRequest):
        assert self.sim is not None and self._cpu is not None
        arrival = self.sim.now
        grant = self._cpu.request()
        yield grant
        try:
            replies, _service_times, total_ssd_time, new_entries = self._lookup_batch_core(
                request.fingerprints
            )
            if new_entries and self.persistence is not None:
                self._persist_new_replies(replies)
            cpu_time = (
                self.config.cpu_per_request
                + self.config.cpu_per_lookup * len(request.fingerprints)
            )
            if cpu_time > 0:
                yield self.sim.timeout(cpu_time)
        finally:
            self._cpu.release()
        if total_ssd_time > 0:
            # One aggregated access keeps the event count proportional to the
            # number of batches rather than fingerprints; the SSD device still
            # serialises concurrent batches, so contention is preserved.
            yield self.ssd_device.busy(total_ssd_time)
        service_time = self.sim.now - arrival
        per_reply_time = service_time / max(1, len(replies))
        self.lookup_latency.record_many([per_reply_time] * len(replies))
        self.counters.increment("batches_served")
        return BatchLookupReply(replies=replies, node_id=self.node_id, batch_id=request.batch_id)

    def occupy_cpu(self, duration: float, delay: float = 0.0) -> Optional[Event]:
        """Occupy this node's CPU pool for ``duration`` seconds of control-plane work.

        Used by the cluster's cost model to charge replica propagation and
        migration copies in simulated mode: after ``delay`` (e.g. the fabric
        transfer time) the work requests a worker slot like any batch, holds
        it for ``duration``, and releases it -- so control-plane work queues
        behind and delays concurrent lookups.  Immediate-mode nodes (no
        simulator) return ``None``; callers charge a ledger instead.
        """
        if self.sim is None or self._cpu is None:
            return None
        if duration < 0 or delay < 0:
            raise ValueError("duration and delay must be non-negative")
        self.counters.increment("control_plane_tasks")

        def _occupy():
            if delay > 0:
                yield self.sim.timeout(delay)
            grant = self._cpu.request()
            yield grant
            try:
                if duration > 0:
                    yield self.sim.timeout(duration)
            finally:
                self._cpu.release()

        return run_process(self.sim, _occupy(), name=f"{self.node_id}.control_plane")

    # ---------------------------------------------------------------- reporting
    def snapshot(self) -> NodeSnapshot:
        """Statistics snapshot used by cluster metrics and Figure 6."""
        return NodeSnapshot(
            node_id=self.node_id,
            entries=len(self.store),
            ram_cached=len(self.cache),
            lookups=self.counters.get("lookups"),
            ram_hits=self.counters.get("ram_hits"),
            ssd_hits=self.counters.get("ssd_hits"),
            new_entries=self.counters.get("new_entries"),
            destages=self.counters.get("destages"),
            bloom_negative_shortcuts=self.counters.get("bloom_negative_shortcuts"),
            bloom_false_positives=self.counters.get("bloom_false_positives"),
            counters=self.counters.as_dict(),
        )

    def export_entries(self) -> List[Tuple[bytes, object]]:
        """All stored ``(digest, value)`` pairs -- used by rebalancing/migration."""
        return list(self.store.items())

    def import_entries(self, entries: Sequence[Tuple[bytes, object]]) -> int:
        """Bulk-load entries (e.g. during rebalancing); returns how many were new."""
        store_put = self.store.put
        new_pairs = [(digest, value) for digest, value in entries if store_put(digest, value)]
        self.bloom.add_many([digest for digest, _value in new_pairs])
        if new_pairs and self.persistence is not None:
            self._persist_new(new_pairs)
        return len(new_pairs)

    def remove_entry(self, digest: bytes) -> bool:
        """Drop a fingerprint from the node (bloom bits remain set, by design)."""
        self.cache.remove(digest)
        removed = self.store.remove(digest)
        if removed and self.persistence is not None:
            self.persistence.log_remove(digest)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HybridHashNode {self.node_id} entries={len(self.store)}>"
