"""Real concurrent serving stack over multi-process hash nodes.

This package promotes the simulated ``frontend/`` + ``network/rpc`` shapes
into an actual deployable service (the ROADMAP's "millions of users" item):

* :mod:`~repro.serving.wire` -- length-prefixed msgpack-or-JSON framing
  shared by every peer (clients, gateway, workers).
* :mod:`~repro.serving.worker` -- one OS process per hash node.  Each worker
  owns a :class:`~repro.core.hash_node.HybridHashNode`, warm-starts its
  shard from its PR-7 persistence directory, and serves digest batches over
  a private TCP socket.
* :mod:`~repro.serving.gateway` -- the asyncio front door: routes
  digest-keyed batches to the owning worker (shared-nothing sharding),
  applies admission control and backpressure (bounded per-node queues,
  ``OVERLOADED`` sheds, max in-flight), supervises/respawns crashed
  workers, exposes live metrics over ``/stats``, and drains gracefully.
* :mod:`~repro.serving.loadgen` -- an open/closed-loop load generator
  simulating thousands of clients pushing millions of fingerprints, with a
  post-run audit that proves no acknowledged fingerprint was lost.

``repro serve`` / ``repro loadtest`` are the CLI entry points; the
``service`` scenario preset runs the full stack in-process and reports
through the standard :class:`~repro.scenarios.result.ScenarioResult`
schema.  See ``docs/serving.md`` for the wire protocol and methodology.
"""

from .gateway import ServeConfig, ServiceGateway, ServingError
from .loadgen import LoadtestConfig, LoadtestReport, run_loadtest
from .worker import WorkerSpec

__all__ = [
    "ServeConfig",
    "ServiceGateway",
    "ServingError",
    "LoadtestConfig",
    "LoadtestReport",
    "run_loadtest",
    "WorkerSpec",
]
