"""Wire protocol shared by the serving stack: framing, codecs, verdict masks.

Every peer (loadgen client, gateway, node worker) speaks the same frame
format: a 4-byte big-endian payload length followed by the encoded message.
Messages are dicts; the payload encoding is msgpack when the ``msgpack``
module is importable and JSON (UTF-8) otherwise -- the container image here
has no msgpack, so JSON is the tested default and msgpack stays an
optional fast path rather than a dependency.

Digest batches are carried as one concatenated hex string (``bytes.hex`` /
``bytes.fromhex`` are C-speed, and hex survives both codecs), and per-batch
duplicate verdicts travel as a little-endian bitmask in hex -- bit *i* set
means fingerprint *i* of the batch was a duplicate.

Message vocabulary (``t`` field):

======================  =======================================================
``batch``               ``id``, ``d`` (hex digests), ``s`` (chunk size, scalar
                        or per-digest list) -- client -> gateway -> worker.
``reply``               ``id``, ``ok``; on success ``v`` (verdict mask hex),
                        ``n`` (batch size), ``new``; on failure ``err``
                        (``OVERLOADED``/``UNAVAILABLE``/``SHUTTING_DOWN``)
                        and ``retry``.
``stats``               request; answered with ``stats`` carrying a dict.
``ping`` / ``pong``     liveness probe.
``kill_worker``         ``node`` -- admin fault injection (SIGKILL).
``shutdown``            gateway -> worker: snapshot, ack, exit.
======================  =======================================================
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "WireError",
    "MAX_FRAME_BYTES",
    "LENGTH_PREFIX",
    "get_codec",
    "codec_names",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "pack_verdicts",
    "unpack_verdicts",
]

#: Frames above this are a protocol violation (a batch of 100k digests is
#: ~4 MB of hex; 64 MB leaves generous headroom while catching garbage).
MAX_FRAME_BYTES = 64 * 1024 * 1024

LENGTH_PREFIX = struct.Struct("!I")

try:  # pragma: no cover - absent in the pinned environment
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - the tested default
    msgpack = None


class WireError(Exception):
    """A malformed or oversized frame, or an unknown codec."""


class JsonCodec:
    """UTF-8 JSON payloads; works everywhere, surprisingly fast for dicts."""

    name = "json"

    @staticmethod
    def encode(message: Dict[str, Any]) -> bytes:
        return json.dumps(message, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def decode(payload: bytes) -> Dict[str, Any]:
        try:
            message = json.loads(payload)
        except ValueError as error:
            raise WireError(f"undecodable JSON frame: {error}") from None
        if not isinstance(message, dict):
            raise WireError(f"frame must decode to a dict, got {type(message).__name__}")
        return message


class MsgpackCodec:  # pragma: no cover - requires the optional msgpack module
    """msgpack payloads (optional fast path when the module is installed)."""

    name = "msgpack"

    @staticmethod
    def encode(message: Dict[str, Any]) -> bytes:
        return msgpack.packb(message, use_bin_type=True)

    @staticmethod
    def decode(payload: bytes) -> Dict[str, Any]:
        try:
            message = msgpack.unpackb(payload, raw=False)
        except Exception as error:
            raise WireError(f"undecodable msgpack frame: {error}") from None
        if not isinstance(message, dict):
            raise WireError(f"frame must decode to a dict, got {type(message).__name__}")
        return message


def codec_names() -> List[str]:
    """Codec names accepted by :func:`get_codec` in preference order."""
    names = ["auto", "json"]
    if msgpack is not None:  # pragma: no cover
        names.append("msgpack")
    return names


def get_codec(name: str = "auto"):
    """Resolve a codec by name; ``auto`` prefers msgpack when available."""
    if name == "auto":
        return MsgpackCodec if msgpack is not None else JsonCodec
    if name == "json":
        return JsonCodec
    if name == "msgpack":
        if msgpack is None:
            raise WireError("msgpack codec requested but the msgpack module is not installed")
        return MsgpackCodec  # pragma: no cover
    raise WireError(f"unknown codec {name!r}; available: {', '.join(codec_names())}")


# ---------------------------------------------------------------------- framing
def encode_frame(message: Dict[str, Any], codec=JsonCodec) -> bytes:
    """One wire frame: length prefix + encoded payload."""
    payload = codec.encode(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    return LENGTH_PREFIX.pack(len(payload)) + payload


def _payload_length(header: bytes) -> int:
    length = LENGTH_PREFIX.unpack(header)[0]
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES")
    return length


async def read_frame(reader: asyncio.StreamReader, codec=JsonCodec) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between frames
        raise WireError("connection closed mid-frame") from None
    length = _payload_length(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireError("connection closed mid-frame") from None
    return codec.decode(payload)


def _recv_exactly(conn: socket.socket, length: int) -> Optional[bytes]:
    """Blocking exact read; ``None`` on EOF before any byte arrived."""
    chunks = []
    remaining = length
    while remaining:
        chunk = conn.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == length:
                return None
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]


def recv_frame(conn: socket.socket, codec=JsonCodec) -> Optional[Dict[str, Any]]:
    """Blocking frame read for the worker side; ``None`` on clean EOF."""
    header = _recv_exactly(conn, LENGTH_PREFIX.size)
    if header is None:
        return None
    payload = _recv_exactly(conn, _payload_length(header))
    if payload is None:
        raise WireError("connection closed mid-frame")
    return codec.decode(payload)


def send_frame(conn: socket.socket, message: Dict[str, Any], codec=JsonCodec) -> None:
    """Blocking frame write for the worker side."""
    conn.sendall(encode_frame(message, codec))


# ----------------------------------------------------------------- verdict masks
def pack_verdicts(duplicate_flags: Sequence[bool]) -> str:
    """Pack per-fingerprint duplicate verdicts into a hex bitmask (bit i = fp i)."""
    mask = 0
    for index, flag in enumerate(duplicate_flags):
        if flag:
            mask |= 1 << index
    return format(mask, "x")

def unpack_verdicts(mask_hex: str, count: int) -> Tuple[int, List[bool]]:
    """Unpack a verdict mask; returns ``(duplicates, flags)`` for ``count`` fps."""
    mask = int(mask_hex, 16) if mask_hex else 0
    flags = [bool(mask >> i & 1) for i in range(count)]
    return sum(flags), flags
