"""Open/closed-loop load generator for the serving stack.

Simulates thousands of logical clients pushing digest batches at a running
gateway and measures what a client actually experiences: acknowledged
throughput, batch round-trip percentiles, sheds, retries, and -- after the
run -- whether any *acknowledged* fingerprint was lost.

Methodology notes:

* **Digests are precomputed** from integer chunk identities (the same
  ``synthetic_fingerprint`` mapping the simulator's workloads use) before
  the clock starts, so the measurement is of the service, not of client-side
  SHA-1 throughput.  Duplicate structure is injected by re-drawing earlier
  identities with probability ``duplicate_fraction``.
* **Closed loop** (default): each client keeps at most ``pipeline`` batches
  in flight and submits the next only when one completes -- offered load
  tracks service capacity.  **Open loop**: batches are fired on a fixed
  schedule (``arrival_rate_fps``) regardless of completions, which is what
  pushes a service into its shed regime.
* **Retries**: ``OVERLOADED``/``UNAVAILABLE`` replies are retried with
  exponential backoff up to ``max_retries``; every ``OVERLOADED`` reply is
  counted as an observed shed whether or not the retry later succeeds.
* **Fault injection**: ``kill_node`` sends the gateway a ``kill_worker``
  admin frame once ``kill_after_fraction`` of the offered fingerprints have
  been acknowledged, exercising worker respawn under live load.
* **Burst**: ``burst_batches`` extra batches are fired back-to-back (no
  pipeline cap, no retries) once the run is half done, deliberately
  overrunning admission control -- CI asserts the sheds this provokes.
* **Audit**: after the run, every acknowledged identity is looked up again;
  a verdict of "new" means the acknowledged fingerprint vanished (e.g. a
  worker was killed after acking but lost state) and is reported as
  ``lost_acknowledged``.  The serving stack's persist-before-ack ordering
  makes the expected value exactly zero.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..simulation.stats import LatencyRecorder
from .wire import WireError, encode_frame, get_codec, read_frame

__all__ = ["LoadtestConfig", "LoadtestReport", "run_loadtest", "run_loadtest_async"]


@dataclass(frozen=True)
class LoadtestConfig:
    """One load test run against a gateway."""

    host: str = "127.0.0.1"
    port: int = 7411
    #: Client connections (each multiplexes ``pipeline`` in-flight batches,
    #: so logical concurrency is ``clients * pipeline``).
    clients: int = 32
    pipeline: int = 4
    batch_size: int = 256
    #: Total fingerprints offered by the main run (excluding burst/audit).
    fingerprints: int = 200_000
    #: Probability that an offered fingerprint repeats an earlier identity.
    duplicate_fraction: float = 0.25
    chunk_size: int = 8192
    #: ``0`` = closed loop (as fast as completions allow); ``> 0`` = open
    #: loop firing at this many fingerprints per second regardless.
    arrival_rate_fps: float = 0.0
    seed: int = 17
    codec: str = "json"
    max_retries: int = 8
    retry_backoff: float = 0.02
    #: Worker to SIGKILL mid-run via the gateway admin frame (``None`` = off).
    kill_node: Optional[str] = None
    #: Fraction of offered fingerprints acknowledged before the kill fires.
    kill_after_fraction: float = 0.25
    #: Extra batches fired back-to-back at the half-way point (no retries).
    burst_batches: int = 0
    audit: bool = True
    report_path: Optional[str] = None
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.clients < 1 or self.pipeline < 1 or self.batch_size < 1:
            raise ValueError("clients, pipeline, and batch_size must be >= 1")
        if self.fingerprints < 1:
            raise ValueError("fingerprints must be >= 1")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1)")


@dataclass
class LoadtestReport:
    """What the clients observed, plus the post-run audit verdict."""

    offered_fingerprints: int = 0
    offered_batches: int = 0
    acked_fingerprints: int = 0
    acked_batches: int = 0
    new_fingerprints: int = 0
    duplicate_fingerprints: int = 0
    #: OVERLOADED replies observed (including ones whose retry succeeded).
    sheds: int = 0
    #: UNAVAILABLE replies observed (worker died mid-batch; retried).
    unavailable: int = 0
    retries: int = 0
    #: Batches abandoned after exhausting retries (burst batches shed on
    #: purpose are counted here too -- they are never retried).
    failed_batches: int = 0
    burst_batches: int = 0
    kills_sent: int = 0
    worker_restarts: int = 0
    wall_seconds: float = 0.0
    throughput_fps: float = 0.0
    latency_us: Dict[str, float] = field(default_factory=dict)
    audit_checked: int = 0
    lost_acknowledged: int = 0
    audited: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "offered_fingerprints": self.offered_fingerprints,
            "offered_batches": self.offered_batches,
            "acked_fingerprints": self.acked_fingerprints,
            "acked_batches": self.acked_batches,
            "new_fingerprints": self.new_fingerprints,
            "duplicate_fingerprints": self.duplicate_fingerprints,
            "sheds": self.sheds,
            "unavailable": self.unavailable,
            "retries": self.retries,
            "failed_batches": self.failed_batches,
            "burst_batches": self.burst_batches,
            "kills_sent": self.kills_sent,
            "worker_restarts": self.worker_restarts,
            "wall_seconds": self.wall_seconds,
            "throughput_fps": self.throughput_fps,
            "latency_us": dict(self.latency_us),
            "audit_checked": self.audit_checked,
            "lost_acknowledged": self.lost_acknowledged,
            "audited": self.audited,
        }


def _precompute_digests(universe: int) -> List[str]:
    """Hex digest per identity, identical to ``synthetic_fingerprint``."""
    sha1 = hashlib.sha1
    return [
        sha1(identity.to_bytes(16, "big", signed=False)).hexdigest()
        for identity in range(universe)
    ]


def _build_batches(config: LoadtestConfig) -> Tuple[List[List[int]], int]:
    """Identity stream -> per-batch identity lists; returns the universe size."""
    rng = random.Random(config.seed)
    identities: List[int] = []
    next_unique = 0
    duplicate_fraction = config.duplicate_fraction
    for _ in range(config.fingerprints):
        if next_unique and rng.random() < duplicate_fraction:
            identities.append(rng.randrange(next_unique))
        else:
            identities.append(next_unique)
            next_unique += 1
    batches = [
        identities[start:start + config.batch_size]
        for start in range(0, len(identities), config.batch_size)
    ]
    return batches, next_unique


class _Connection:
    """One TCP connection with id-matched request/reply multiplexing."""

    def __init__(self, codec) -> None:
        self.codec = codec
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.futures: Dict[int, asyncio.Future] = {}
        self.write_lock = asyncio.Lock()
        self._read_task: Optional[asyncio.Task] = None
        self._next_id = 0

    async def open(self, host: str, port: int) -> None:
        self.reader, self.writer = await asyncio.open_connection(host, port)
        sock = self.writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - not a TCP socket
                pass
        self._read_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await read_frame(self.reader, self.codec)
                if message is None:
                    break
                future = self.futures.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (WireError, ConnectionError, OSError) as error:
            for future in self.futures.values():
                if not future.done():
                    future.set_exception(ConnectionError(str(error)))
            self.futures.clear()

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and await its id-matched reply."""
        self._next_id += 1
        message_id = message["id"] = self._next_id
        future = asyncio.get_event_loop().create_future()
        self.futures[message_id] = future
        frame = encode_frame(message, self.codec)
        async with self.write_lock:
            self.writer.write(frame)
            await self.writer.drain()
        return await future

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
        if self.writer is not None:
            self.writer.close()


class _Run:
    """Shared mutable state for one load test (single event loop)."""

    def __init__(self, config: LoadtestConfig, digests: List[str]) -> None:
        self.config = config
        self.digests = digests
        self.report = LoadtestReport()
        self.latency = LatencyRecorder("client_batch_rtt")
        self.acked_identities: Set[int] = set()
        self.halfway = asyncio.Event()
        self.codec = get_codec(config.codec)
        self._halfway_threshold = 0

    def blob_of(self, identities: Sequence[int]) -> str:
        digests = self.digests
        return "".join(digests[identity] for identity in identities)

    def note_progress(self) -> None:
        if (
            not self.halfway.is_set()
            and self.report.acked_fingerprints >= self._halfway_threshold
        ):
            self.halfway.set()

    async def submit(
        self,
        conn: _Connection,
        identities: Sequence[int],
        blob: str,
        retries: int,
    ) -> bool:
        """Offer one batch until acked or out of retries; returns success."""
        config = self.config
        report = self.report
        attempts = 0
        message = {"t": "batch", "d": blob, "s": config.chunk_size}
        while True:
            started = time.perf_counter()
            try:
                reply = await conn.request(dict(message))
            except ConnectionError:
                report.failed_batches += 1
                return False
            if reply.get("ok"):
                rtt = time.perf_counter() - started
                new = int(reply.get("new", 0))
                report.acked_batches += 1
                report.acked_fingerprints += len(identities)
                report.new_fingerprints += new
                report.duplicate_fingerprints += len(identities) - new
                self.latency.record(rtt)
                self.acked_identities.update(identities)
                self.note_progress()
                return True
            error = reply.get("err")
            if error == "OVERLOADED":
                report.sheds += 1
            elif error == "UNAVAILABLE":
                report.unavailable += 1
            if not reply.get("retry") or attempts >= retries:
                report.failed_batches += 1
                return False
            attempts += 1
            report.retries += 1
            await asyncio.sleep(config.retry_backoff * (1 << min(attempts, 5)))


async def _client(run: _Run, batches: List[List[int]], start_at: float,
                  interval: float) -> None:
    """One client connection working through its share of the batches."""
    config = run.config
    conn = _Connection(run.codec)
    await conn.open(config.host, config.port)
    try:
        if interval > 0.0:
            # Open loop: fire on schedule, completions be damned.
            tasks = []
            for index, identities in enumerate(batches):
                delay = start_at + index * interval - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.ensure_future(
                    run.submit(conn, identities, run.blob_of(identities),
                               config.max_retries)
                ))
            if tasks:
                await asyncio.gather(*tasks)
        else:
            # Closed loop: at most ``pipeline`` batches in flight.
            semaphore = asyncio.Semaphore(config.pipeline)

            async def _one(identities: List[int]) -> None:
                try:
                    await run.submit(conn, identities, run.blob_of(identities),
                                     config.max_retries)
                finally:
                    semaphore.release()

            tasks = []
            for identities in batches:
                await semaphore.acquire()
                tasks.append(asyncio.ensure_future(_one(identities)))
            if tasks:
                await asyncio.gather(*tasks)
    finally:
        await conn.close()


async def _burst(run: _Run) -> None:
    """Fire ``burst_batches`` beyond admission control; sheds are the point."""
    config = run.config
    await run.halfway.wait()
    rng = random.Random(config.seed + 1)
    universe = len(run.digests)
    conn = _Connection(run.codec)
    await conn.open(config.host, config.port)
    run.report.burst_batches = config.burst_batches
    run.report.offered_batches += config.burst_batches
    run.report.offered_fingerprints += config.burst_batches * config.batch_size
    try:
        tasks = []
        for _ in range(config.burst_batches):
            identities = [rng.randrange(universe) for _ in range(config.batch_size)]
            tasks.append(asyncio.ensure_future(
                run.submit(conn, identities, run.blob_of(identities), retries=0)
            ))
        await asyncio.gather(*tasks)
    finally:
        await conn.close()


async def _killer(run: _Run) -> None:
    """SIGKILL one worker (via the gateway) once enough load was acked."""
    config = run.config
    threshold = int(config.fingerprints * config.kill_after_fraction)
    while run.report.acked_fingerprints < threshold:
        await asyncio.sleep(0.005)
    conn = _Connection(run.codec)
    await conn.open(config.host, config.port)
    try:
        reply = await conn.request({"t": "kill_worker", "node": config.kill_node})
        if reply.get("ok"):
            run.report.kills_sent += 1
            if config.verbose:
                print(f"[loadtest] killed {config.kill_node} mid-run",
                      file=sys.stderr, flush=True)
    finally:
        await conn.close()


async def _audit(run: _Run) -> None:
    """Re-look-up every acknowledged identity; count the ones that vanished.

    An acknowledged fingerprint is durably stored before its ack leaves the
    worker, so a "new" verdict here means a previously acknowledged
    fingerprint was lost (``lost_acknowledged``) -- the one number the
    kill/respawn scenario must keep at zero.
    """
    config = run.config
    report = run.report
    identities = sorted(run.acked_identities)
    report.audit_checked = len(identities)
    conn = _Connection(run.codec)
    await conn.open(config.host, config.port)
    audit_batch = max(config.batch_size, 256)
    try:
        for start in range(0, len(identities), audit_batch):
            chunk = identities[start:start + audit_batch]
            message = {"t": "batch", "d": run.blob_of(chunk), "s": config.chunk_size}
            attempts = 0
            while True:
                reply = await conn.request(dict(message))
                if reply.get("ok"):
                    report.lost_acknowledged += int(reply.get("new", 0))
                    break
                if attempts >= max(config.max_retries, 8):
                    raise RuntimeError(
                        f"audit batch failed after {attempts} retries: {reply}"
                    )
                attempts += 1
                await asyncio.sleep(config.retry_backoff * (1 << min(attempts, 5)))
    finally:
        await conn.close()
    report.audited = True


async def _fetch_restarts(run: _Run) -> None:
    conn = _Connection(run.codec)
    try:
        await conn.open(run.config.host, run.config.port)
        reply = await conn.request({"t": "stats"})
        workers = reply.get("stats", {}).get("workers", [])
        run.report.worker_restarts = sum(int(w.get("restarts", 0)) for w in workers)
    except (ConnectionError, OSError):  # pragma: no cover - stats are best-effort
        pass
    finally:
        await conn.close()


async def run_loadtest_async(config: LoadtestConfig) -> LoadtestReport:
    """Drive one load test against a running gateway; returns the report."""
    batches, universe = _build_batches(config)
    digests = _precompute_digests(universe)
    run = _Run(config, digests)
    run._halfway_threshold = config.fingerprints // 2
    run.report.offered_fingerprints = config.fingerprints
    run.report.offered_batches = len(batches)

    # Deal batches round-robin so every client sees the full run's timeline.
    shares: List[List[List[int]]] = [[] for _ in range(config.clients)]
    for index, batch in enumerate(batches):
        shares[index % config.clients].append(batch)
    interval = 0.0
    if config.arrival_rate_fps > 0:
        # Per-client firing interval that sums to the target aggregate rate.
        interval = config.batch_size * config.clients / config.arrival_rate_fps

    side_tasks: List[asyncio.Task] = []
    if config.kill_node is not None:
        side_tasks.append(asyncio.ensure_future(_killer(run)))
    if config.burst_batches > 0:
        side_tasks.append(asyncio.ensure_future(_burst(run)))

    started = time.perf_counter()
    start_at = started + 0.01
    await asyncio.gather(*(
        _client(run, share, start_at, interval)
        for share in shares if share
    ))
    # A tiny run can finish before the halfway trigger fires the side tasks.
    run.halfway.set()
    if side_tasks:
        await asyncio.gather(*side_tasks)
    run.report.wall_seconds = time.perf_counter() - started
    run.report.throughput_fps = (
        run.report.acked_fingerprints / run.report.wall_seconds
        if run.report.wall_seconds > 0 else 0.0
    )
    run.report.latency_us = {
        key: value * 1e6 if key not in ("count",) else value
        for key, value in run.latency.as_dict().items()
    }

    if config.audit:
        await _audit(run)
    await _fetch_restarts(run)

    if config.report_path:
        with open(config.report_path, "w", encoding="utf-8") as handle:
            json.dump(run.report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if config.verbose:
        report = run.report
        print(
            f"[loadtest] acked={report.acked_fingerprints}/{report.offered_fingerprints} "
            f"fp in {report.wall_seconds:.2f}s ({report.throughput_fps:.0f} fp/s) "
            f"p50={report.latency_us.get('p50', 0.0):.0f}us "
            f"p99={report.latency_us.get('p99', 0.0):.0f}us "
            f"sheds={report.sheds} retries={report.retries} "
            f"restarts={report.worker_restarts} lost={report.lost_acknowledged}",
            file=sys.stderr, flush=True,
        )
    return run.report


def run_loadtest(config: LoadtestConfig) -> LoadtestReport:
    """Synchronous wrapper around :func:`run_loadtest_async`."""
    return asyncio.run(run_loadtest_async(config))
