"""The serving front door: an asyncio TCP gateway over per-node worker processes.

The gateway owns ``num_nodes`` OS processes (one
:class:`~repro.serving.worker.WorkerSpec` each, shared-nothing), routes each
digest of an incoming batch to its owning worker with the same contiguous
range sharding as :class:`~repro.core.partition.RangePartitioner`, and
merges the per-worker verdict masks back into one reply in the client's
original digest order.

Flow control is explicit and two-level, mirroring the simulated frontend's
admission queue:

* **Per-worker bounded queues** -- a batch is admitted only if *every*
  worker it touches has queue room (checked and enqueued without an
  intervening ``await``, so admission is atomic under asyncio).
* **Global max in-flight** -- a cap on admitted-but-unanswered batches.

A batch that fails admission is *shed* with an ``OVERLOADED`` reply
(``retry: true``) rather than queued without bound: under overload the
service degrades by rejecting, never by growing latency without limit.

Workers are supervised: a worker that dies (e.g. ``kill -9``, or the
``kill_worker`` admin frame used for fault injection) is respawned and
warm-starts from its persistence directory; batches in flight on the dead
worker are answered ``UNAVAILABLE`` (``retry: true``).  Because workers
persist new fingerprints *before* replying, an acknowledged batch can never
be lost to a crash -- the loadgen's audit leans on exactly this.

The listening socket speaks two protocols, sniffed from the first four
bytes: length-prefixed frames (the real protocol) and ``GET `` (a minimal
HTTP ``/stats`` endpoint for humans and CI scripts).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import socket
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..core.partition import KEY_SPACE_SIZE
from ..simulation.stats import LatencyRecorder
from ..storage.shm import unlink_segment
from .wire import WireError, encode_frame, get_codec, read_frame
from .worker import DIGEST_HEX, WorkerSpec, worker_main

__all__ = ["ServeConfig", "ServiceGateway", "ServingError"]


class ServingError(Exception):
    """Service could not start or operate (e.g. port already in use)."""


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one gateway + worker fleet."""

    host: str = "127.0.0.1"
    #: TCP port for clients (0 = ephemeral; read ``gateway.port`` after start).
    port: int = 7411
    num_nodes: int = 4
    #: ``HashNodeConfig`` overrides passed to every worker (dict form).
    node_config: Dict[str, Any] = field(default_factory=dict)
    #: Root persistence directory (one subdirectory per node); ``None`` runs
    #: the nodes fully in memory (no durability, no warm restarts).
    data_dir: Optional[str] = None
    fsync: bool = False
    #: Container records between automatic bloom+store snapshots (0 = off).
    snapshot_every: int = 100_000
    #: Max queued batches per worker before admission sheds.
    max_queue: int = 64
    #: Max admitted-but-unanswered batches across the whole gateway.
    max_inflight: int = 512
    #: Seconds between console stats lines (0 disables the reporter).
    report_interval: float = 0.0
    codec: str = "json"
    #: Seconds to wait for a worker to report readiness after spawn.
    spawn_timeout: float = 60.0
    #: Seconds close() waits for in-flight batches before forcing shutdown.
    drain_timeout: float = 10.0
    #: Back each worker's bloom bits with a named shared-memory segment.
    #: The segment outlives the worker process, so a respawn after a crash
    #: adopts the filter bits instead of replaying them; the gateway unlinks
    #: the segments when it closes.  Falls back to private filters where
    #: shared memory is unavailable.
    shared_bloom: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.max_queue < 1 or self.max_inflight < 1:
            raise ValueError("max_queue and max_inflight must be >= 1")

    def node_id(self, index: int) -> str:
        return f"node{index}"

    def shared_bloom_name(self, index: int) -> Optional[str]:
        """Segment name for one worker's bloom bits (``None`` when off).

        Scoped by the gateway's pid: unique across concurrent gateways on
        one host, stable across that gateway's worker respawns.
        """
        if not self.shared_bloom:
            return None
        return f"repro-{os.getpid()}-{self.node_id(index)}-bloom"

    def worker_spec(self, index: int) -> WorkerSpec:
        directory = None
        if self.data_dir is not None:
            directory = os.path.join(self.data_dir, self.node_id(index))
        return WorkerSpec(
            node_id=self.node_id(index),
            node_config=dict(self.node_config),
            persistence_dir=directory,
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
            codec=self.codec,
            host=self.host,
            shared_bloom_name=self.shared_bloom_name(index),
        )


class _Worker:
    """Gateway-side handle for one node worker process."""

    __slots__ = (
        "index", "node_id", "process", "pipe", "port", "pid", "reader", "writer",
        "queue", "pending", "ready", "restarts", "sent", "replies", "warm_starts",
        "supervisor",
    )

    def __init__(self, index: int, node_id: str, max_queue: int) -> None:
        self.index = index
        self.node_id = node_id
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.pipe = None
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        #: Admitted frames waiting to be written: ``(frame_bytes, future)``.
        self.queue: asyncio.Queue = asyncio.Queue(max_queue)
        #: Futures for frames written but not yet answered (FIFO: the worker
        #: answers frames strictly in arrival order).
        self.pending: Deque[asyncio.Future] = deque()
        #: Set while the worker is connected and accepting frames.
        self.ready = asyncio.Event()
        self.restarts = 0
        self.sent = 0
        self.replies = 0
        self.warm_starts = 0
        self.supervisor: Optional[asyncio.Task] = None

    def fail_outstanding(self, reply: Dict[str, Any]) -> int:
        """Answer every queued/in-flight frame with ``reply`` (worker died)."""
        failed = 0
        while self.pending:
            future = self.pending.popleft()
            if not future.done():
                future.set_result(dict(reply))
                failed += 1
        while True:
            try:
                _frame, future = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if future is not None and not future.done():
                future.set_result(dict(reply))
                failed += 1
        return failed


def _no_nagle(writer: asyncio.StreamWriter) -> None:
    """Batch frames are latency-sensitive and self-contained; disable Nagle."""
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not a TCP socket
            pass


_UNAVAILABLE = {"t": "reply", "ok": False, "err": "UNAVAILABLE", "retry": True}
_OVERLOADED = {"t": "reply", "ok": False, "err": "OVERLOADED", "retry": True}
_SHUTTING_DOWN = {"t": "reply", "ok": False, "err": "SHUTTING_DOWN", "retry": False}


class ServiceGateway:
    """Accepts client batches, shards them to workers, merges the verdicts."""

    def __init__(self, config: ServeConfig, verbose: bool = False) -> None:
        self.config = config
        self.verbose = verbose
        self.codec = get_codec(config.codec)
        self._mp = multiprocessing.get_context("spawn")
        self._range_width = KEY_SPACE_SIZE // config.num_nodes
        self.workers = [
            _Worker(i, config.node_id(i), config.max_queue)
            for i in range(config.num_nodes)
        ]
        self._server: Optional[asyncio.base_events.Server] = None
        self._reporter: Optional[asyncio.Task] = None
        self._closing = False
        self.port: Optional[int] = None
        # -- metrics (event-loop writes; LatencyRecorder is also thread-safe
        # so out-of-loop readers such as tests may poke it directly).
        self.started_at = 0.0
        self.batch_latency = LatencyRecorder("batch_latency")
        self.inflight = 0
        self.acked_batches = 0
        self.acked_fingerprints = 0
        self.duplicate_fingerprints = 0
        self.new_fingerprints = 0
        self.shed_batches = 0
        self.shed_fingerprints = 0
        self.unavailable_batches = 0
        self.protocol_errors = 0
        self._window_acked = 0  # fingerprints acked since the last report line

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Spawn the fleet, wait for every shard to recover, open the door."""
        self.started_at = time.perf_counter()
        await asyncio.gather(*(self._spawn(worker) for worker in self.workers))
        for worker in self.workers:
            worker.supervisor = asyncio.ensure_future(self._supervise(worker))
        # Workers are connected before the listener exists, so the first
        # client batch never races worker startup.
        for worker in self.workers:
            await worker.ready.wait()
        try:
            self._server = await asyncio.start_server(
                self._handle_client, self.config.host, self.config.port
            )
        except OSError as error:
            await self._abort_workers()
            raise ServingError(
                f"cannot listen on {self.config.host}:{self.config.port}: {error}"
            ) from error
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.report_interval > 0:
            self._reporter = asyncio.ensure_future(self._report_loop())
        self._log(
            f"serving on {self.config.host}:{self.port} "
            f"({self.config.num_nodes} nodes, codec={self.codec.name})"
        )

    async def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, stop workers."""
        if self._closing:
            return
        self._closing = True
        if self._reporter is not None:
            self._reporter.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.perf_counter() + self.config.drain_timeout
        while self.inflight and time.perf_counter() < deadline:
            await asyncio.sleep(0.02)
        # Ask every live worker to snapshot and exit; its supervisor sees a
        # clean EOF afterwards and returns instead of respawning.
        shutdowns = []
        for worker in self.workers:
            if worker.ready.is_set():
                future: asyncio.Future = asyncio.get_event_loop().create_future()
                frame = encode_frame({"t": "shutdown"}, self.codec)
                try:
                    worker.queue.put_nowait((frame, future))
                    shutdowns.append(future)
                except asyncio.QueueFull:  # pragma: no cover - drained above
                    pass
        if shutdowns:
            await asyncio.wait(shutdowns, timeout=self.config.drain_timeout)
        await self._abort_workers()
        self._log("drained and stopped")

    async def _abort_workers(self) -> None:
        self._closing = True
        for worker in self.workers:
            if worker.supervisor is not None:
                worker.supervisor.cancel()
            if worker.writer is not None:
                worker.writer.close()
        loop = asyncio.get_event_loop()
        for worker in self.workers:
            process = worker.process
            if process is not None and process.is_alive():
                await loop.run_in_executor(None, process.join, 2.0)
                if process.is_alive():
                    process.kill()
                    await loop.run_in_executor(None, process.join, 2.0)
        self._cleanup_shared_segments()

    def _cleanup_shared_segments(self) -> None:
        """Unlink the workers' shared bloom segments (crash-tolerant).

        Workers disown their segments so respawns can adopt them; once the
        fleet is gone the gateway is the sole owner and must remove them,
        including segments left behind by workers that died to ``kill -9``.
        """
        if not self.config.shared_bloom:
            return
        for worker in self.workers:
            name = self.config.shared_bloom_name(worker.index)
            if name is not None:
                unlink_segment(name)

    # ------------------------------------------------------------- worker fleet
    async def _spawn(self, worker: _Worker) -> None:
        """Start the worker process and wait for its ready report."""
        spec = self.config.worker_spec(worker.index)
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=worker_main, args=(spec, child_conn), daemon=True
        )
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, process.start)
        child_conn.close()

        def _wait_ready() -> Dict[str, Any]:
            if parent_conn.poll(self.config.spawn_timeout):
                return parent_conn.recv()
            raise TimeoutError(
                f"worker {spec.node_id} did not report ready within "
                f"{self.config.spawn_timeout:.0f}s"
            )

        try:
            ready = await loop.run_in_executor(None, _wait_ready)
        except (TimeoutError, EOFError) as error:
            process.kill()
            raise ServingError(f"worker {spec.node_id} failed to start: {error}") from error
        finally:
            parent_conn.close()
        if "error" in ready:
            raise ServingError(f"worker {spec.node_id} failed to start: {ready['error']}")
        worker.process = process
        worker.port = int(ready["port"])
        worker.pid = int(ready["pid"])
        if ready.get("warm"):
            worker.warm_starts += 1
            self._log(
                f"{spec.node_id} warm-started: {ready.get('entries', 0)} entries, "
                f"store_snapshot={bool(ready.get('store_snapshot'))}"
            )

    async def _supervise(self, worker: _Worker) -> None:
        """Connect, pump frames, and respawn the worker for as long as we run."""
        while not self._closing:
            try:
                reader, writer = await asyncio.open_connection(
                    self.config.host, worker.port
                )
            except OSError:
                await asyncio.sleep(0.05)
                continue
            _no_nagle(writer)
            worker.reader, worker.writer = reader, writer
            worker.ready.set()
            clean = await self._pump(worker)
            worker.ready.clear()
            worker.reader = worker.writer = None
            try:
                writer.close()
            except Exception:  # pragma: no cover - close races are harmless
                pass
            if clean or self._closing:
                return
            # The worker died under us: answer its outstanding batches as
            # retryable and bring a fresh process up on the same shard.
            failed = worker.fail_outstanding(_UNAVAILABLE)
            worker.restarts += 1
            self._log(
                f"{worker.node_id} died (pid {worker.pid}); {failed} frames failed "
                f"UNAVAILABLE; respawning"
            )
            try:
                await self._spawn(worker)
            except ServingError as error:  # pragma: no cover - respawn failure
                self._log(f"respawn failed: {error}")
                await asyncio.sleep(0.5)

    async def _pump(self, worker: _Worker) -> bool:
        """Move frames queue -> socket and replies socket -> futures.

        Returns ``True`` on a clean shutdown handshake, ``False`` when the
        worker (or its connection) died.
        """
        sender = asyncio.ensure_future(self._send_loop(worker))
        try:
            while True:
                try:
                    message = await read_frame(worker.reader, self.codec)
                except (WireError, OSError):
                    return False
                if message is None:
                    # EOF: clean only if we asked the worker to shut down
                    # (its reply arrives, FIFO, before the socket closes).
                    return self._closing and not worker.pending
                if worker.pending:
                    future = worker.pending.popleft()
                    worker.replies += 1
                    if not future.done():
                        future.set_result(message)
                else:  # pragma: no cover - protocol violation
                    self.protocol_errors += 1
        finally:
            sender.cancel()

    async def _send_loop(self, worker: _Worker) -> None:
        writer = worker.writer
        while True:
            frame, future = await worker.queue.get()
            try:
                writer.write(frame)
                # Append before the drain await: the receiver matches replies
                # FIFO and must find this future even if the worker answers
                # while the drain is still pending.
                if future is not None:
                    worker.pending.append(future)
                worker.sent += 1
                await writer.drain()
            except (ConnectionError, OSError):
                return

    # ------------------------------------------------------------- client side
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        _no_nagle(writer)
        try:
            sniff = await reader.read(4)
        except (ConnectionError, OSError):
            sniff = b""
        if not sniff:
            writer.close()
            return
        if sniff == b"GET ":
            await self._serve_http(reader, writer)
            return
        # Frame protocol: the 4 sniffed bytes are the first length prefix.
        try:
            await self._serve_frames(sniff, reader, writer)
        except (WireError, ConnectionError, OSError):
            self.protocol_errors += 1
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass

    async def _serve_frames(self, first_header: bytes, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        codec = self.codec
        header: Optional[bytes] = first_header
        write_lock = asyncio.Lock()
        tasks: set = set()

        async def _answer_batch(message: Dict[str, Any]) -> None:
            # Batches run concurrently so a pipelining client actually gets
            # a pipeline; replies are id-matched, so completion order is
            # free to differ from arrival order.
            reply = await self._handle_batch(message)
            frame = encode_frame(reply, codec)
            async with write_lock:
                writer.write(frame)
                await writer.drain()

        try:
            while True:
                if header is None:
                    try:
                        header = await reader.readexactly(4)
                    except asyncio.IncompleteReadError as error:
                        if not error.partial:
                            return  # clean EOF between frames
                        raise WireError("connection closed mid-frame") from None
                length = int.from_bytes(header, "big")
                header = None
                if length > 64 * 1024 * 1024:
                    raise WireError("oversized frame")
                payload = await reader.readexactly(length)
                message = codec.decode(payload)
                kind = message.get("t")
                if kind == "batch":
                    task = asyncio.ensure_future(_answer_batch(message))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                    continue
                if kind == "stats":
                    reply = {"t": "stats", "id": message.get("id"), "stats": self.stats()}
                elif kind == "ping":
                    reply = {"t": "pong", "id": message.get("id")}
                elif kind == "kill_worker":
                    reply = self._handle_kill(message)
                else:
                    reply = {"t": "reply", "id": message.get("id"), "ok": False,
                             "err": f"unknown message type {kind!r}", "retry": False}
                frame = encode_frame(reply, codec)
                async with write_lock:
                    writer.write(frame)
                    await writer.drain()
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    def _route(self, blob_hex: str, count: int) -> Dict[int, Tuple[List[str], List[int]]]:
        """Group a batch's digests by owning worker, remembering positions."""
        width = self._range_width
        last = self.config.num_nodes - 1
        groups: Dict[int, Tuple[List[str], List[int]]] = {}
        for position in range(count):
            digest_hex = blob_hex[position * DIGEST_HEX:(position + 1) * DIGEST_HEX]
            # Same math as RangePartitioner.owners_by_key: the top 64 bits
            # of the digest are its first 16 hex characters.
            index = int(digest_hex[:16], 16) // width
            if index > last:
                index = last
            group = groups.get(index)
            if group is None:
                groups[index] = group = ([], [])
            group[0].append(digest_hex)
            group[1].append(position)
        return groups

    async def _handle_batch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        started = time.perf_counter()
        message_id = message.get("id")
        blob_hex = message.get("d", "")
        if not blob_hex or len(blob_hex) % DIGEST_HEX:
            return {"t": "reply", "id": message_id, "ok": False,
                    "err": "malformed digest blob", "retry": False}
        count = len(blob_hex) // DIGEST_HEX
        if self._closing:
            reply = dict(_SHUTTING_DOWN)
            reply["id"] = message_id
            return reply
        groups = self._route(blob_hex, count)

        # -- admission: every touched worker must be up with queue room, and
        # the global in-flight cap must have space.  No await between the
        # checks and the put_nowait calls, so admission is atomic.
        if self.inflight >= self.config.max_inflight or any(
            not self.workers[index].ready.is_set() or self.workers[index].queue.full()
            for index in groups
        ):
            self.shed_batches += 1
            self.shed_fingerprints += count
            reply = dict(_OVERLOADED)
            reply["id"] = message_id
            return reply

        sizes = message.get("s", 0)
        loop = asyncio.get_event_loop()
        submitted: List[Tuple[asyncio.Future, List[int]]] = []
        for index, (parts, positions) in groups.items():
            if isinstance(sizes, list):
                sub_sizes: Any = [sizes[position] for position in positions]
            else:
                sub_sizes = sizes
            frame = encode_frame(
                {"t": "batch", "id": message_id, "d": "".join(parts), "s": sub_sizes},
                self.codec,
            )
            future = loop.create_future()
            self.workers[index].queue.put_nowait((frame, future))
            submitted.append((future, positions))
        self.inflight += 1
        try:
            replies = await asyncio.gather(*(future for future, _ in submitted))
        finally:
            self.inflight -= 1

        mask = 0
        new_entries = 0
        for (_, positions), sub_reply in zip(submitted, replies):
            if not sub_reply.get("ok"):
                # A worker died mid-batch.  Nothing was acknowledged, so the
                # client may retry the whole batch against the respawned shard.
                self.unavailable_batches += 1
                reply = dict(sub_reply)
                reply["id"] = message_id
                return reply
            sub_mask = int(sub_reply.get("v", "0"), 16)
            new_entries += int(sub_reply.get("new", 0))
            bit = 0
            while sub_mask:
                if sub_mask & 1:
                    mask |= 1 << positions[bit]
                sub_mask >>= 1
                bit += 1
        duplicates = count - new_entries
        self.acked_batches += 1
        self.acked_fingerprints += count
        self._window_acked += count
        self.new_fingerprints += new_entries
        self.duplicate_fingerprints += duplicates
        self.batch_latency.record(time.perf_counter() - started)
        return {"t": "reply", "id": message_id, "ok": True,
                "v": format(mask, "x"), "n": count, "new": new_entries}

    def _handle_kill(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Admin fault injection: SIGKILL one worker (it will be respawned)."""
        node = message.get("node")
        for worker in self.workers:
            if worker.node_id == node or worker.index == node:
                if worker.process is not None and worker.process.is_alive():
                    worker.process.kill()
                    self._log(f"killed {worker.node_id} (pid {worker.pid}) on request")
                    return {"t": "reply", "id": message.get("id"), "ok": True,
                            "node": worker.node_id, "pid": worker.pid}
                return {"t": "reply", "id": message.get("id"), "ok": False,
                        "err": f"worker {node!r} is not running", "retry": False}
        return {"t": "reply", "id": message.get("id"), "ok": False,
                "err": f"no such worker {node!r}", "retry": False}

    # ------------------------------------------------------------- observability
    def stats(self) -> Dict[str, Any]:
        elapsed = max(time.perf_counter() - self.started_at, 1e-9)
        offered = self.acked_fingerprints + self.shed_fingerprints
        latency = self.batch_latency.as_dict()
        return {
            "uptime_s": elapsed,
            "nodes": self.config.num_nodes,
            "acked_batches": self.acked_batches,
            "acked_fingerprints": self.acked_fingerprints,
            "new_fingerprints": self.new_fingerprints,
            "duplicate_fingerprints": self.duplicate_fingerprints,
            "throughput_fps": self.acked_fingerprints / elapsed,
            "inflight": self.inflight,
            "shed_batches": self.shed_batches,
            "shed_fingerprints": self.shed_fingerprints,
            "shed_rate": self.shed_fingerprints / offered if offered else 0.0,
            "unavailable_batches": self.unavailable_batches,
            "protocol_errors": self.protocol_errors,
            "batch_latency_us": {
                key: value * 1e6 if key not in ("count",) else value
                for key, value in latency.items()
            },
            "workers": [
                {
                    "node_id": worker.node_id,
                    "pid": worker.pid,
                    "port": worker.port,
                    "up": worker.ready.is_set(),
                    "queue_depth": worker.queue.qsize(),
                    "pending": len(worker.pending),
                    "sent": worker.sent,
                    "replies": worker.replies,
                    "restarts": worker.restarts,
                    "warm_starts": worker.warm_starts,
                }
                for worker in self.workers
            ],
        }

    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """Answer one ``GET /stats`` (anything else 404s) and close."""
        try:
            request = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=5.0)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, OSError):
            writer.close()
            return
        # The sniff already consumed the leading ``GET ``, so the request
        # line starts at the path: ``/stats HTTP/1.1``.
        path = request.split(b"\r\n", 1)[0].split(b" ")[0] or b"/"
        if path in (b"/stats", b"/"):
            body = json.dumps(self.stats(), indent=2).encode("utf-8")
            status = b"200 OK"
        else:
            body = b'{"error": "not found"}'
            status = b"404 Not Found"
        writer.write(
            b"HTTP/1.1 " + status + b"\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + body
        )
        try:
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
        writer.close()

    async def _report_loop(self) -> None:
        interval = self.config.report_interval
        while True:
            await asyncio.sleep(interval)
            window = self._window_acked
            self._window_acked = 0
            stats = self.stats()
            latency = stats["batch_latency_us"]
            self._log(
                f"t={stats['uptime_s']:.1f}s acked={stats['acked_fingerprints']} "
                f"fp/s={window / interval:.0f} "
                f"p50={latency.get('p50', 0.0):.0f}us p99={latency.get('p99', 0.0):.0f}us "
                f"inflight={stats['inflight']} shed={stats['shed_batches']} "
                f"restarts={sum(w['restarts'] for w in stats['workers'])}"
            )

    def _log(self, line: str) -> None:
        if self.verbose:
            print(f"[serve] {line}", file=sys.stderr, flush=True)

    # ------------------------------------------------------------- convenience
    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI wraps this with signal handling)."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
