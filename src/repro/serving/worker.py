"""Node worker process: one OS process per hash node, shared-nothing.

Each worker owns exactly one :class:`~repro.core.hash_node.HybridHashNode`
(immediate mode) and serves digest batches over a private localhost TCP
socket.  The socket binds an ephemeral port (no collisions across respawns)
which the worker reports back to the gateway through a ``multiprocessing``
pipe once the node is ready to serve -- *after* any warm-start recovery, so
a respawned worker never acknowledges a batch before its shard is restored.

Durability contract: the node's ``serve_bucket`` persists new fingerprints
to the PR-7 container log *before* returning, so a reply frame on the wire
implies the acknowledged fingerprints survive a process kill.  That
ordering is what the loadgen's post-run audit (zero lost acknowledged
fingerprints after ``kill -9`` + respawn) leans on.

The frame loop is single-threaded by design: the gateway is the only
client, one connection at a time, and requests are answered in arrival
order -- which lets the gateway match replies to requests FIFO without ids
on this hop (ids still travel for debuggability).
"""

from __future__ import annotations

import os
import socket
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.config import HashNodeConfig
from ..core.digest_batch import DigestBatch
from ..core.hash_node import HybridHashNode
from ..core.persistence import NodePersistence
from ..storage.bloom import BloomFilter
from ..storage.shm import disown_segment
from .wire import WireError, get_codec, recv_frame, send_frame

__all__ = ["WorkerSpec", "worker_main"]

DIGEST_BYTES = 20
DIGEST_HEX = DIGEST_BYTES * 2


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build and serve its node.

    Kept picklable (plain scalars + a config dict) so it crosses the
    ``spawn`` start-method boundary; ``spawn`` is used instead of ``fork``
    because the gateway forks from inside a running asyncio loop, whose
    state must not leak into children.
    """

    node_id: str
    node_config: Dict[str, Any] = field(default_factory=dict)
    #: Per-node persistence directory (``None`` = fully in-memory node).
    persistence_dir: Optional[str] = None
    fsync: bool = False
    snapshot_every: int = 0
    codec: str = "json"
    host: str = "127.0.0.1"
    #: Name of a shared-memory segment to back the node's bloom bits with
    #: (``None`` keeps the filter private).  The first spawn creates the
    #: segment; a respawn after ``kill -9`` adopts it, so the bloom bits
    #: survive the crash and recovery only replays the count.  The gateway
    #: owns the segment's lifetime (it unlinks on close).
    shared_bloom_name: Optional[str] = None

    def build_node(self) -> HybridHashNode:
        """Construct the node (warm-starts from ``persistence_dir`` if it exists)."""
        config = HashNodeConfig.from_dict(self.node_config) if self.node_config else HashNodeConfig()
        persistence = None
        if self.persistence_dir is not None:
            persistence = NodePersistence(
                self.persistence_dir, fsync=self.fsync, snapshot_every=self.snapshot_every
            )
        bloom = None
        if self.shared_bloom_name is not None:
            bloom = BloomFilter(
                expected_items=config.bloom_expected_items,
                false_positive_rate=config.bloom_false_positive_rate,
                shared=True,
                shared_name=self.shared_bloom_name,
            )
            if bloom.shared_segment_name is not None:
                # The gateway supervises segment cleanup; keep this worker's
                # atexit sweep from unlinking the bits a respawn will adopt.
                disown_segment(bloom.shared_segment_name)
        return HybridHashNode(
            self.node_id, config=config, persistence=persistence, bloom=bloom
        )


def _serve_batch(node: HybridHashNode, message: Dict[str, Any]) -> Dict[str, Any]:
    """Answer one digest batch; the hot path of the whole serving stack.

    The wire blob goes straight into a :class:`DigestBatch` and through the
    node's verdict-only fused kernel: no ``Fingerprint`` or ``LookupReply``
    objects exist on this path at all -- per-key Python object construction
    is what capped the worker's throughput before.
    """
    blob = bytes.fromhex(message["d"])
    sizes = message.get("s", 0)
    try:
        batch = DigestBatch.from_blob(blob, sizes)
    except ValueError as error:
        raise WireError(str(error)) from None
    verdicts, new_entries = node.serve_digest_batch(batch)
    mask = 0
    bit = 1
    for verdict in verdicts:
        if verdict:
            mask |= bit
        bit <<= 1
    return {
        "t": "reply",
        "id": message.get("id"),
        "ok": True,
        "v": format(mask, "x"),
        "n": len(batch),
        "new": new_entries,
    }


def _stats(node: HybridHashNode) -> Dict[str, Any]:
    latency = node.lookup_latency.as_dict()
    persistence = node.persistence
    payload: Dict[str, Any] = {
        "node_id": node.node_id,
        "pid": os.getpid(),
        "entries": len(node.store),
        "ram_cached": len(node.cache),
        "kernel_backend": node.kernel_backend,
        "counters": node.counters.as_dict(),
        "lookup_latency_us": {
            key: value * 1e6 if key not in ("count",) else value
            for key, value in latency.items()
        },
    }
    if persistence is not None:
        payload["persisted_records"] = persistence.records
        payload["snapshots_taken"] = persistence.snapshots_taken
    if node.last_recovery is not None:
        payload["recovery"] = node.last_recovery.to_dict()
    return payload


def _serve_connection(conn: socket.socket, node: HybridHashNode, codec) -> bool:
    """Serve frames on one gateway connection; returns True on shutdown."""
    while True:
        message = recv_frame(conn, codec)
        if message is None:
            return False  # gateway went away; go back to accept()
        kind = message.get("t")
        if kind == "batch":
            send_frame(conn, _serve_batch(node, message), codec)
        elif kind == "stats":
            send_frame(conn, {"t": "stats", "stats": _stats(node)}, codec)
        elif kind == "ping":
            send_frame(conn, {"t": "pong"}, codec)
        elif kind == "shutdown":
            _shutdown(node)
            send_frame(conn, {"t": "reply", "id": message.get("id"), "ok": True}, codec)
            return True
        else:
            raise WireError(f"worker got unknown message type {kind!r}")


def _shutdown(node: HybridHashNode) -> None:
    """Graceful exit: checkpoint the shard so the next start is warm."""
    persistence = node.persistence
    if persistence is not None:
        if persistence.records:
            persistence.take_snapshot(node.bloom, entries=len(node.store), store=node.store)
        persistence.close()
    # Detach from a shared-memory-backed filter while its views can still be
    # released in order (interpreter teardown would close the segment with
    # exported memoryviews alive and warn).  The segment itself survives for
    # the gateway to unlink.
    node.bloom.close_shared()


def worker_main(spec: WorkerSpec, ready_conn) -> None:
    """Process entry point: build the node, report readiness, serve forever.

    ``ready_conn`` is the gateway's end of a ``multiprocessing.Pipe``; the
    worker sends ``{"port", "pid", "entries", "warm"}`` exactly once, after
    recovery, and closes it.  Startup failures are reported over the same
    pipe as ``{"error": ...}`` so the gateway can raise a useful message
    instead of timing out.
    """
    try:
        node = spec.build_node()
        codec = get_codec(spec.codec)
        listener = socket.create_server((spec.host, 0))
        listener.listen(4)
    except Exception as error:  # noqa: BLE001 - anything here must reach the gateway
        try:
            ready_conn.send({"error": f"{type(error).__name__}: {error}"})
        finally:
            ready_conn.close()
        sys.exit(1)

    recovery = node.last_recovery
    ready_conn.send(
        {
            "port": listener.getsockname()[1],
            "pid": os.getpid(),
            "entries": len(node.store),
            "warm": recovery is not None,
            "recovered_records": recovery.records if recovery is not None else 0,
            "store_snapshot": bool(recovery is not None and recovery.store_snapshot_loaded),
        }
    )
    ready_conn.close()

    while True:
        conn, _peer = listener.accept()
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            finished = _serve_connection(conn, node, codec)
        except WireError as error:
            print(f"[worker {spec.node_id}] protocol error: {error}", file=sys.stderr)
            finished = False
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close races are harmless
                pass
        if finished:
            listener.close()
            return
