"""repro -- a reproduction of SHHC, the Scalable Hybrid Hash Cluster.

SHHC (Xu, Hu, Mkandawire, Jiang -- ICDCS Workshops 2011) is a distributed
fingerprint store and lookup service for in-line deduplicating cloud backup:
fingerprints are range-partitioned over *hybrid hash nodes* that pair an
in-RAM LRU cache and bloom filter with an SSD-resident hash table.

The package is organised in layers:

``repro.simulation``
    Discrete-event simulation kernel (clock, processes, resources, RNG,
    statistics) used by every timing experiment.
``repro.storage``
    Device models (RAM/SSD/HDD), bloom filter, LRU cache, cuckoo hash, the
    SSD-resident hash store, write-ahead log and the cloud object store.
``repro.network``
    Messages, links, switch fabric, RPC layer and HAProxy-style load
    balancing policies.
``repro.dedup``
    Chunking (fixed and content-defined), SHA-1 fingerprints, chunk-index
    interfaces and the client-side dedup pipeline.
``repro.core``
    The paper's contribution: hybrid hash nodes, partitioners, the SHHC
    cluster, batching, membership/rebalancing and replication.
``repro.frontend``
    Backup clients, web front-end servers, upload plans and the one-call
    :class:`~repro.frontend.gateway.BackupService` facade.
``repro.baselines``
    Centralized comparison points (disk index, DDFS-style, ChunkStash-style,
    single hybrid node).
``repro.workloads``
    Table-I workload profiles, synthetic trace generation and arrival
    processes.
``repro.analysis``
    Experiment runners for every table and figure, plus report rendering.
``repro.scenarios``
    The unified experiment API: declarative :class:`ScenarioSpec` +
    :class:`SweepGrid`, executed by ``run_scenario`` / ``run_sweep`` over
    the preset catalogue (every paper figure/table is a preset).  See
    ``docs/scenarios.md``.

Quickstart
----------
>>> from repro import BackupService
>>> service = BackupService()
>>> plan = service.backup("alice", b"some data" * 1024)
>>> plan.total_chunks >= 1
True
"""

from .core.cluster import SHHCCluster
from .core.config import ClusterConfig, HashNodeConfig
from .core.hash_node import HybridHashNode
from .dedup.pipeline import DedupPipeline
from .frontend.gateway import BackupService, build_simulated_service
from .scenarios import ScenarioSpec, SweepGrid, run_scenario, run_sweep, spec_for
from .workloads.profiles import TABLE_I_PROFILES, WorkloadProfile
from .workloads.traces import TraceGenerator

__version__ = "1.0.0"

__all__ = [
    "SHHCCluster",
    "ClusterConfig",
    "HashNodeConfig",
    "HybridHashNode",
    "DedupPipeline",
    "BackupService",
    "build_simulated_service",
    "ScenarioSpec",
    "SweepGrid",
    "run_scenario",
    "run_sweep",
    "spec_for",
    "TABLE_I_PROFILES",
    "WorkloadProfile",
    "TraceGenerator",
    "__version__",
]
