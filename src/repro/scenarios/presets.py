"""Built-in presets: every paper figure/table runner, spec-addressable.

Each preset maps a validated :class:`~repro.scenarios.spec.ScenarioSpec`
onto the corresponding experiment module in
:mod:`repro.analysis.experiments` and folds its native result into the
uniform metrics schema (see :mod:`repro.scenarios.result`).  An
all-defaults spec reproduces the legacy runner's defaults exactly --
``run_scenario("figure5").render()`` is byte-identical to what
``run_figure5().render()`` printed before the scenario API existed, which
the golden tests pin down.

Node-config overrides (``spec.node``) replace the runner's auto-sized
:class:`~repro.core.config.HashNodeConfig` wholesale: the experiment
runners size bloom filters from the workload they are about to replay, and
a caller overriding the node tier takes over that sizing too (set
``bloom_expected_items`` alongside your override for large runs).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..core.config import HashNodeConfig
from ..workloads.generations import GenerationConfig
from ..workloads.mixer import WorkloadMix, table_i_mix
from ..workloads.profiles import WorkloadProfile, profile_by_name
from ..analysis.experiments import (
    ablations,
    control_plane,
    elasticity,
    failover,
    figure1,
    figure5,
    figure6,
    generational,
    restart,
    service,
    table1,
)
from .engine import Preset, register_preset
from .result import ScenarioResult
from .spec import NODE_KEYS, ScenarioSpec, SpecError

__all__ = ["CompositeResult"]


# ----------------------------------------------------------------------- helpers
def _seed(spec: ScenarioSpec, legacy_default: int) -> int:
    """The spec's seed, or the ported runner's legacy default seed."""
    return legacy_default if spec.seed is None else spec.seed


def _node_config(spec: ScenarioSpec) -> Optional[HashNodeConfig]:
    """An explicit node config when the spec overrides the node tier."""
    return HashNodeConfig.from_dict(spec.node) if spec.node else None


def _as_list(value: Any) -> List[Any]:
    """Spec values that are semantically lists, tolerating a bare scalar.

    CLI ``--set`` only builds a list when the value contains a comma, so
    ``--set batch_sizes=128`` or ``--set profiles=mail-server`` arrive as
    scalars; strings in particular must not be iterated character-wise.
    """
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def _profile(name: str) -> WorkloadProfile:
    try:
        return profile_by_name(name)
    except KeyError as error:
        raise SpecError(str(error.args[0]) if error.args else f"unknown workload {name!r}") from None


def _profiles(names: Optional[Any]) -> Optional[List[WorkloadProfile]]:
    return None if names is None else [_profile(name) for name in _as_list(names)]


def _mix(spec: ScenarioSpec, seed: int) -> Optional[WorkloadMix]:
    """A workload mix when the spec selects profiles (else runner default)."""
    names = spec.workload.get("profiles")
    if names is None:
        return None
    return table_i_mix(seed=seed, profiles=_profiles(names))


class CompositeResult:
    """Several experiment results rendered one after another."""

    def __init__(self, parts: Sequence[Any]) -> None:
        self.parts = list(parts)

    def render(self) -> str:
        return "\n\n".join(part.render() for part in self.parts)


# ----------------------------------------------------------------------- figure1
def _run_figure1(spec: ScenarioSpec) -> ScenarioResult:
    workload = spec.workload
    seed = _seed(spec, 1)
    result = figure1.run_figure1(
        node_counts=tuple(_as_list(workload.get("node_counts", figure1.DEFAULT_NODE_COUNTS))),
        rates=tuple(_as_list(workload.get("rates", figure1.DEFAULT_RATES))),
        requests=workload.get("requests", 20_000),
        node_config=_node_config(spec),
        chunk_size=workload.get("chunk_size", 8192),
        seed=seed,
    )
    metrics: Dict[str, Any] = {
        "fingerprints": result.requests,
        "points": [
            {
                "nodes": point.nodes,
                "offered_rate": point.offered_rate,
                "execution_time_us": point.execution_time_us,
                "achieved_rate": point.achieved_rate,
            }
            for point in result.points
        ],
        "throughput": max((p.achieved_rate for p in result.points), default=None),
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="figure1",
        description="Execution time of a fixed lookup count vs offered rate and cluster size",
        runner=_run_figure1,
        node_keys=NODE_KEYS,
        workload_keys=frozenset({"requests", "rates", "node_counts", "chunk_size"}),
    )
)


# ----------------------------------------------------------------------- figure5
def _run_figure5(spec: ScenarioSpec) -> ScenarioResult:
    workload, client = spec.workload, spec.client
    seed = _seed(spec, 0)
    result = figure5.run_figure5(
        node_counts=tuple(_as_list(workload.get("node_counts", figure5.DEFAULT_NODE_COUNTS))),
        batch_sizes=tuple(_as_list(workload.get("batch_sizes", figure5.DEFAULT_BATCH_SIZES))),
        scale=workload.get("scale", 0.001),
        num_clients=client.get("num_clients", 2),
        num_web_servers=client.get("num_web_servers", 3),
        window=client.get("window", 1),
        mix=_mix(spec, seed),
        node_config=_node_config(spec),
        seed=seed,
    )
    metrics: Dict[str, Any] = {
        "fingerprints": result.points[0].fingerprints if result.points else 0,
        "points": [
            {
                "nodes": point.nodes,
                "batch_size": point.batch_size,
                "throughput": point.throughput,
                "duplicates": point.duplicates,
            }
            for point in result.points
        ],
        "throughput": max((p.throughput for p in result.points), default=None),
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="figure5",
        description="Cluster throughput vs number of servers and batch size (full simulated stack)",
        runner=_run_figure5,
        node_keys=NODE_KEYS,
        workload_keys=frozenset({"scale", "node_counts", "batch_sizes", "profiles"}),
        client_keys=frozenset({"num_clients", "num_web_servers", "window"}),
    )
)


# ----------------------------------------------------------------------- figure6
def _run_figure6(spec: ScenarioSpec) -> ScenarioResult:
    workload, cluster = spec.workload, spec.cluster
    seed = _seed(spec, 0)
    result = figure6.run_figure6(
        num_nodes=cluster.get("num_nodes", 4),
        scale=workload.get("scale", 0.01),
        mix=_mix(spec, seed),
        node_config=_node_config(spec),
        virtual_nodes=cluster.get("virtual_nodes", 0),
        seed=seed,
    )
    metrics: Dict[str, Any] = {
        "fingerprints": result.fingerprints_processed,
        "storage_fractions": result.fractions(),
        "coefficient_of_variation": result.storage_report.coefficient_of_variation,
        "max_deviation_from_even": result.max_deviation_from_even(),
        "lookup_max_over_mean": result.lookup_report.max_over_mean,
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="figure6",
        description="Hash value storage distribution across cluster nodes (load balance)",
        runner=_run_figure6,
        cluster_keys=frozenset({"num_nodes", "virtual_nodes"}),
        node_keys=NODE_KEYS,
        workload_keys=frozenset({"scale", "profiles"}),
    )
)


# ----------------------------------------------------------------------- table1
def _run_table1(spec: ScenarioSpec) -> ScenarioResult:
    workload = spec.workload
    result = table1.run_table1(
        scale=workload.get("scale", 0.01),
        profiles=_profiles(workload.get("profiles")),
        seed=_seed(spec, 42),
    )
    metrics: Dict[str, Any] = {
        "fingerprints": sum(row.measured.fingerprints for row in result.rows),
        "rows": [
            {
                "workload": row.workload,
                "fingerprints": row.measured.fingerprints,
                "target_redundancy": row.target_redundancy,
                "measured_redundancy": row.measured.redundancy,
                "target_distance": row.target_distance,
                "measured_distance": row.measured.mean_duplicate_distance,
                "redundancy_error": row.redundancy_error,
            }
            for row in result.rows
        ],
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="table1",
        description="Workload characteristics: published targets vs generated traces",
        runner=_run_table1,
        workload_keys=frozenset({"scale", "profiles"}),
    )
)


# ----------------------------------------------------------------- generational
def _run_generational(spec: ScenarioSpec) -> ScenarioResult:
    workload = spec.workload
    config = GenerationConfig(
        initial_chunks=workload.get("initial_chunks", 20_000),
        generations=workload.get("generations", 7),
        modify_fraction=workload.get("modify_fraction", 0.03),
        growth_fraction=workload.get("growth_fraction", 0.01),
        chunk_size=workload.get("chunk_size", 8192),
        seed=_seed(spec, 0),
    )
    result = generational.run_generational_backup(
        config=config,
        num_nodes=spec.cluster.get("num_nodes", 4),
        ram_cache_entries=spec.node.get("ram_cache_entries"),
    )
    chunks = sum(row.chunks for row in result.rows)
    duplicates = sum(row.duplicates for row in result.rows)
    metrics: Dict[str, Any] = {
        "fingerprints": chunks,
        "duplicate_ratio": duplicates / chunks if chunks else 0.0,
        "final_dedup_ratio": result.final_dedup_ratio(),
        "rows": [
            {
                "generation": row.generation,
                "chunks": row.chunks,
                "redundancy": row.redundancy,
                "ram_hit_ratio": row.ram_hit_ratio,
                "cumulative_dedup_ratio": row.cumulative_dedup_ratio,
            }
            for row in result.rows
        ],
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="generational",
        description="Repeated full backups: per-generation redundancy, cache hits, dedup ratio",
        runner=_run_generational,
        cluster_keys=frozenset({"num_nodes"}),
        node_keys=frozenset({"ram_cache_entries"}),
        workload_keys=frozenset(
            {"initial_chunks", "generations", "modify_fraction", "growth_fraction", "chunk_size"}
        ),
    )
)


# ---------------------------------------------------------------- tier ablation
def _run_tier_ablation(spec: ScenarioSpec) -> ScenarioResult:
    workload = spec.workload
    profile = workload.get("profile")
    result = ablations.run_tier_ablation(
        profile=None if profile is None else _profile(profile),
        scale=workload.get("scale", 0.005),
        seed=_seed(spec, 7),
    )
    metrics: Dict[str, Any] = {
        "fingerprints": result.rows[0].lookups if result.rows else 0,
        "rows": [
            {
                "design": row.design,
                "lookups": row.lookups,
                "duplicates": row.duplicates,
                "mean_latency_us": row.mean_latency_us,
            }
            for row in result.rows
        ],
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="tier_ablation",
        description="Index designs (disk, DDFS, ChunkStash, hybrid, RAM) head to head",
        runner=_run_tier_ablation,
        workload_keys=frozenset({"scale", "profile"}),
    )
)


# --------------------------------------------------------------- batch tradeoff
def _run_batch_tradeoff(spec: ScenarioSpec) -> ScenarioResult:
    workload = spec.workload
    result = ablations.run_batch_tradeoff(
        batch_sizes=tuple(_as_list(workload.get("batch_sizes", (1, 8, 32, 128, 512, 2048)))),
        num_nodes=spec.cluster.get("num_nodes", 4),
        scale=workload.get("scale", 0.0005),
        num_clients=spec.client.get("num_clients", 2),
        seed=_seed(spec, 0),
    )
    metrics: Dict[str, Any] = {
        "throughput": max((p.throughput for p in result.points), default=None),
        "points": [
            {
                "batch_size": point.batch_size,
                "throughput": point.throughput,
                "mean_request_latency_ms": point.mean_request_latency * 1e3,
                "mean_per_chunk_latency_us": point.mean_per_chunk_latency * 1e6,
            }
            for point in result.points
        ],
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="batch_tradeoff",
        description="Throughput vs per-request latency as the query batch size grows",
        runner=_run_batch_tradeoff,
        cluster_keys=frozenset({"num_nodes"}),
        workload_keys=frozenset({"scale", "batch_sizes"}),
        client_keys=frozenset({"num_clients"}),
    )
)


# ------------------------------------------------------------- scaling ablation
def _run_scaling_ablation(spec: ScenarioSpec) -> ScenarioResult:
    workload, cluster = spec.workload, spec.cluster
    profile = workload.get("profile")
    result = ablations.run_scaling_ablation(
        profile=None if profile is None else _profile(profile),
        scale=workload.get("scale", 0.01),
        num_nodes=cluster.get("num_nodes", 4),
        virtual_nodes=cluster.get("virtual_nodes", 64),
        seed=_seed(spec, 11),
    )
    metrics: Dict[str, Any] = {
        "fingerprints": result.fingerprints,
        "moved_fraction_range": result.moved_fraction_range,
        "moved_fraction_consistent": result.moved_fraction_consistent,
        "balance_after_range": result.balance_after_range,
        "balance_after_consistent": result.balance_after_consistent,
        "replication_entry_overhead": result.replication_entry_overhead,
        "replication_latency_overhead": result.replication_latency_overhead,
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="scaling_ablation",
        description="Join-time data movement (range vs consistent hashing) and replication overhead",
        runner=_run_scaling_ablation,
        cluster_keys=frozenset({"num_nodes", "virtual_nodes"}),
        workload_keys=frozenset({"scale", "profile"}),
    )
)


# -------------------------------------------------------------------- ablations
def _run_ablations(spec: ScenarioSpec) -> ScenarioResult:
    """The CLI's composite: tiers at ``scale``, batching at ``scale/10``, scaling at ``scale``."""
    scale = spec.workload.get("scale", 0.002)
    tier = _run_tier_ablation(
        ScenarioSpec(preset="tier_ablation", seed=spec.seed, workload={"scale": scale})
    )
    batch = _run_batch_tradeoff(
        ScenarioSpec(preset="batch_tradeoff", seed=spec.seed, workload={"scale": scale / 10})
    )
    scaling = _run_scaling_ablation(
        ScenarioSpec(preset="scaling_ablation", seed=spec.seed, workload={"scale": scale})
    )
    metrics: Dict[str, Any] = {
        "tier_ablation": tier.metrics,
        "batch_tradeoff": batch.metrics,
        "scaling_ablation": scaling.metrics,
    }
    detail = CompositeResult([tier.detail, batch.detail, scaling.detail])
    return ScenarioResult(spec=spec, metrics=metrics, detail=detail)


register_preset(
    Preset(
        name="ablations",
        description="All three ablation studies (tiers, batching, scaling) in one run",
        runner=_run_ablations,
        workload_keys=frozenset({"scale"}),
    )
)


# --------------------------------------------------------------------- failover
def _run_failover(spec: ScenarioSpec) -> ScenarioResult:
    cluster, client, workload = spec.cluster, spec.client, spec.workload
    seed = _seed(spec, 0)
    result = failover.run_failover(
        scale=workload.get("scale", 0.002),
        num_nodes=cluster.get("num_nodes", 4),
        replication_factor=cluster.get("replication_factor", 2),
        virtual_nodes=cluster.get("virtual_nodes", 64),
        batch_size=client.get("batch_size", 256),
        mix=_mix(spec, seed),
        fault_plan=spec.faults,
        node_config=_node_config(spec),
        repair_on_recovery=client.get("repair_on_recovery", True),
        seed=seed,
    )
    percentiles = result.latency_percentiles_faulty
    metrics: Dict[str, Any] = {
        "fingerprints": result.fingerprints_processed,
        "dedup_accuracy": result.accuracy,
        "false_uniques": result.false_uniques,
        "false_duplicates": result.false_duplicates,
        "unserved": result.unserved,
        "grey_drops": result.grey_drops,
        "mean_latency_us": result.mean_latency_faulty * 1e6,
        "p50_latency_us": percentiles.get("p50", 0.0) * 1e6,
        "p95_latency_us": percentiles.get("p95", 0.0) * 1e6,
        "p99_latency_us": percentiles.get("p99", 0.0) * 1e6,
        "baseline_mean_latency_us": result.mean_latency_baseline * 1e6,
        "latency_overhead": result.latency_overhead,
        "served_from": dict(result.tier_hits),
        "read_repairs": result.read_repairs,
        "failovers": result.failovers,
        "replica_inserts": result.replica_inserts,
        "repaired_copies": result.repaired_copies,
        "crashes": result.crashes,
        "recoveries": result.recoveries,
        "distinct_fingerprints": result.distinct,
        "total_stored": result.total_stored,
        "fully_replicated": result.fully_replicated,
        "under_replicated": result.under_replicated,
        "lost": result.lost,
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="failover",
        description="Dedup accuracy and latency under injected failures (crashes and grey failures)",
        runner=_run_failover,
        cluster_keys=frozenset({"num_nodes", "replication_factor", "virtual_nodes"}),
        node_keys=NODE_KEYS,
        workload_keys=frozenset({"scale", "profiles"}),
        client_keys=frozenset({"batch_size", "repair_on_recovery"}),
        accepts_faults=True,
    )
)


# ------------------------------------------------------------------- elasticity
def _run_elasticity(spec: ScenarioSpec) -> ScenarioResult:
    cluster, client, workload = spec.cluster, spec.client, spec.workload
    seed = _seed(spec, 0)
    result = elasticity.run_elasticity(
        scale=workload.get("scale", 0.002),
        num_nodes=cluster.get("num_nodes", 4),
        replication_factor=cluster.get("replication_factor", 2),
        virtual_nodes=cluster.get("virtual_nodes", 64),
        batch_size=client.get("batch_size", 256),
        mix=_mix(spec, seed),
        churn_plan=spec.churn,
        node_config=_node_config(spec),
        seed=seed,
    )
    metrics: Dict[str, Any] = {
        "fingerprints": result.fingerprints_processed,
        "dedup_accuracy": result.accuracy,
        "false_uniques": result.false_uniques,
        "false_duplicates": result.false_duplicates,
        "joins": result.joins,
        "leaves": result.leaves,
        "skipped_events": result.skipped_events,
        "final_nodes": result.final_nodes,
        "entries_moved": result.entries_moved,
        "moved_fraction": result.moved_fraction,
        "primary_moves": result.primary_moves,
        "replica_copies": result.replica_copies,
        "replica_drops": result.replica_drops,
        "read_repairs": result.read_repairs,
        "replica_inserts": result.replica_inserts,
        "distinct_fingerprints": result.distinct,
        "total_stored": result.total_stored,
        "fully_replicated": result.fully_replicated,
        "under_replicated": result.under_replicated,
        "lost": result.lost,
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="elasticity",
        description="Dedup accuracy and migration traffic under membership churn (joins/leaves)",
        runner=_run_elasticity,
        cluster_keys=frozenset({"num_nodes", "replication_factor", "virtual_nodes"}),
        node_keys=NODE_KEYS,
        workload_keys=frozenset({"scale", "profiles"}),
        client_keys=frozenset({"batch_size"}),
        accepts_churn=True,
    )
)


# ----------------------------------------------------------- timed control plane
def _timed_metrics(result: Any) -> Dict[str, Any]:
    """Common metrics schema for the timed control-plane presets."""
    steady, taxed = result.steady, result.taxed
    metrics: Dict[str, Any] = {
        "fingerprints": result.fingerprints_processed,
        "offered_load": result.offered_load,
        "arrival_interval_us": result.interval * 1e6,
        "throughput": result.throughput,
        "p99_tax": result.p99_tax,
        "control_plane_cpu_seconds": result.control_plane_cpu_seconds,
        "unserved": result.unserved,
    }
    for label, stats in (("steady", steady), (result.headline_phase, taxed)):
        if stats is None:
            continue
        metrics[f"{label}_lookups"] = stats.count
        metrics[f"{label}_mean_latency_us"] = stats.mean * 1e6
        metrics[f"{label}_p50_latency_us"] = stats.p50 * 1e6
        metrics[f"{label}_p99_latency_us"] = stats.p99 * 1e6
    metrics.update(result.counters)
    return metrics


def _run_failover_timed(spec: ScenarioSpec) -> ScenarioResult:
    cluster, client, workload = spec.cluster, spec.client, spec.workload
    seed = _seed(spec, 0)
    result = control_plane.run_failover_timed(
        scale=workload.get("scale", 0.002),
        num_nodes=cluster.get("num_nodes", 4),
        replication_factor=cluster.get("replication_factor", 2),
        virtual_nodes=cluster.get("virtual_nodes", 64),
        batch_size=client.get("batch_size", 256),
        offered_load=client.get("offered_load", 0.7),
        mix=_mix(spec, seed),
        fault_plan=spec.faults,
        node_config=_node_config(spec),
        seed=seed,
    )
    return ScenarioResult(spec=spec, metrics=_timed_metrics(result), detail=result)


register_preset(
    Preset(
        name="failover_timed",
        description="Lookup p50/p99 and throughput during outages, control-plane costs charged",
        runner=_run_failover_timed,
        cluster_keys=frozenset({"num_nodes", "replication_factor", "virtual_nodes"}),
        node_keys=NODE_KEYS,
        workload_keys=frozenset({"scale", "profiles"}),
        client_keys=frozenset({"batch_size", "offered_load"}),
        accepts_faults=True,
    )
)


def _run_churn_timed(spec: ScenarioSpec) -> ScenarioResult:
    cluster, client, workload = spec.cluster, spec.client, spec.workload
    seed = _seed(spec, 0)
    result = control_plane.run_churn_timed(
        scale=workload.get("scale", 0.002),
        num_nodes=cluster.get("num_nodes", 4),
        replication_factor=cluster.get("replication_factor", 2),
        virtual_nodes=cluster.get("virtual_nodes", 64),
        batch_size=client.get("batch_size", 256),
        offered_load=client.get("offered_load", 0.7),
        mix=_mix(spec, seed),
        churn_plan=spec.churn,
        node_config=_node_config(spec),
        seed=seed,
    )
    return ScenarioResult(spec=spec, metrics=_timed_metrics(result), detail=result)


register_preset(
    Preset(
        name="churn_timed",
        description="Lookup p50/p99 and throughput during membership churn, migration costs charged",
        runner=_run_churn_timed,
        cluster_keys=frozenset({"num_nodes", "replication_factor", "virtual_nodes"}),
        node_keys=NODE_KEYS,
        workload_keys=frozenset({"scale", "profiles"}),
        client_keys=frozenset({"batch_size", "offered_load"}),
        accepts_churn=True,
    )
)


# ----------------------------------------------------------------- kill/restart
def _run_restart(spec: ScenarioSpec) -> ScenarioResult:
    cluster, client, workload = spec.cluster, spec.client, spec.workload
    seed = _seed(spec, 0)
    result = restart.run_restart(
        scale=workload.get("scale", 0.002),
        num_nodes=cluster.get("num_nodes", 4),
        replication_factor=cluster.get("replication_factor", 2),
        virtual_nodes=cluster.get("virtual_nodes", 64),
        batch_size=client.get("batch_size", 256),
        offered_load=client.get("offered_load", 0.7),
        kill_batch=client.get("kill_batch"),
        downtime=client.get("downtime", 2),
        warm_restart=client.get("warm_restart", True),
        snapshot_every=client.get("snapshot_every"),
        fsync=client.get("fsync", False),
        mix=_mix(spec, seed),
        node_config=_node_config(spec),
        seed=seed,
    )
    metrics: Dict[str, Any] = {
        "fingerprints": result.fingerprints_processed,
        "offered_load": result.offered_load,
        "arrival_interval_us": result.interval * 1e6,
        "throughput": result.throughput,
        "dedup_accuracy": result.accuracy,
        "acknowledged": result.acknowledged,
        "lost_acknowledged": result.lost_acknowledged,
        "acknowledged_accuracy": result.acknowledged_accuracy,
        "unserved": result.unserved,
        "recovery_time_ms": result.recovery_time * 1e3,
        "recovery_wall_ms": result.recovery_wall_seconds * 1e3,
        "recovered_entries": result.recovered_entries,
        "replayed_records": result.replayed_records,
        "snapshot_loaded": result.snapshot_loaded,
        "snapshot_bytes": result.snapshot_bytes,
        "degraded_p99_tax": result.degraded_p99_tax,
        "recovery_p99_tax": result.recovery_p99_tax,
        "control_plane_cpu_seconds": result.control_plane_cpu_seconds,
    }
    for name in ("steady", "degraded", "recovering"):
        stats = result.phases.get(name)
        if stats is None:
            continue
        metrics[f"{name}_lookups"] = stats.count
        metrics[f"{name}_p50_latency_us"] = stats.p50 * 1e6
        metrics[f"{name}_p99_latency_us"] = stats.p99 * 1e6
    metrics.update(result.counters)
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="restart",
        description="Kill a node mid-workload, restart from WAL+snapshot, measure recovery",
        runner=_run_restart,
        cluster_keys=frozenset({"num_nodes", "replication_factor", "virtual_nodes"}),
        node_keys=NODE_KEYS,
        workload_keys=frozenset({"scale", "profiles"}),
        client_keys=frozenset(
            {
                "batch_size",
                "offered_load",
                "kill_batch",
                "downtime",
                "warm_restart",
                "snapshot_every",
                "fsync",
            }
        ),
    )
)


# ----------------------------------------------------------------- live service
def _run_service(spec: ScenarioSpec) -> ScenarioResult:
    """The only preset that is not simulated: real sockets, real processes."""
    cluster, client = spec.cluster, spec.client
    seed = _seed(spec, 17)
    result = service.run_service(
        num_nodes=cluster.get("num_nodes", 4),
        clients=client.get("clients", 8),
        pipeline=client.get("pipeline", 4),
        batch_size=client.get("batch_size", 256),
        fingerprints=client.get("fingerprints", 50_000),
        duplicate_fraction=client.get("duplicate_fraction", 0.25),
        arrival_rate_fps=client.get("arrival_rate_fps", 0.0),
        kill_node=client.get("kill_node"),
        kill_after_fraction=client.get("kill_after_fraction", 0.25),
        burst_batches=client.get("burst_batches", 0),
        snapshot_every=client.get("snapshot_every", 100_000),
        fsync=client.get("fsync", False),
        max_queue=client.get("max_queue", 64),
        max_inflight=client.get("max_inflight", 512),
        node_config=dict(spec.node) if spec.node else None,
        seed=seed,
    )
    metrics: Dict[str, Any] = {
        "fingerprints": result.offered,
        "acknowledged": result.acknowledged,
        "new_fingerprints": result.new_fingerprints,
        "duplicate_fingerprints": result.duplicate_fingerprints,
        "throughput": result.throughput,
        "wall_seconds": result.wall_seconds,
        "p50_latency_us": result.latency_us.get("p50", 0.0),
        "p99_latency_us": result.latency_us.get("p99", 0.0),
        "sheds": result.sheds,
        "shed_rate": result.shed_rate,
        "retries": result.retries,
        "unavailable": result.unavailable,
        "failed_batches": result.failed_batches,
        "kills_sent": result.kills_sent,
        "worker_restarts": result.worker_restarts,
        "audit_checked": result.audit_checked,
        "lost_acknowledged": result.lost_acknowledged,
    }
    return ScenarioResult(spec=spec, metrics=metrics, detail=result)


register_preset(
    Preset(
        name="service",
        description="Boot the real serving stack (TCP gateway + worker processes) and load it",
        runner=_run_service,
        cluster_keys=frozenset({"num_nodes"}),
        node_keys=NODE_KEYS,
        workload_keys=frozenset(),
        client_keys=frozenset(
            {
                "clients",
                "pipeline",
                "batch_size",
                "fingerprints",
                "duplicate_fraction",
                "arrival_rate_fps",
                "kill_node",
                "kill_after_fraction",
                "burst_batches",
                "snapshot_every",
                "fsync",
                "max_queue",
                "max_inflight",
            }
        ),
    )
)
