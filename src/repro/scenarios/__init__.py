"""The unified scenario API: declarative specs, presets, and sweeps.

This package is the single public entry point for running experiments::

    from repro.scenarios import run_scenario, run_sweep, spec_for, SweepGrid

    # One run of a ported paper experiment, with overrides.
    result = run_scenario("failover", replication_factor=3, scale=0.001)
    print(result.render())          # the same table the legacy runner printed
    print(result.metrics)           # uniform machine-readable metrics

    # The ROADMAP failover sweep: replication factor x outage density,
    # with a grey-failure axis riding along.
    sweep = run_sweep(
        spec_for("failover", scale=0.001),
        SweepGrid({"replication_factor": [1, 2, 3], "outage_density": [0.1, 0.3]}),
    )
    sweep.write_json("failover_sweep.json")

Specs serialize to JSON (``spec.to_json()`` / ``ScenarioSpec.from_json``),
so a scenario can be stored next to its results and re-run bit-for-bit.
The CLI front end is ``repro run <preset>`` / ``repro sweep <preset>``.
"""

from .engine import (
    Preset,
    apply_overrides,
    available_presets,
    get_preset,
    register_preset,
    run_scenario,
    run_sweep,
    spec_for,
)
from .result import ScenarioResult, SweepResult, SweepRun
from .spec import (
    ScenarioSpec,
    SpecError,
    SweepGrid,
    UnknownSpecKeyError,
    coerce_scalar,
    parse_setting,
)

__all__ = [
    "Preset",
    "ScenarioResult",
    "ScenarioSpec",
    "SpecError",
    "SweepGrid",
    "SweepResult",
    "SweepRun",
    "UnknownSpecKeyError",
    "apply_overrides",
    "available_presets",
    "coerce_scalar",
    "get_preset",
    "parse_setting",
    "register_preset",
    "run_scenario",
    "run_sweep",
    "spec_for",
]
