"""Declarative experiment specs and sweep grids.

A :class:`ScenarioSpec` is the serializable description of one experiment
run: which preset, which cluster/node configuration overrides, which
workload, which fault plan, which client parameters, and one seed.  A
:class:`SweepGrid` names axes over spec keys and expands them into the
cartesian (or zipped) family of specs.  Together they replace the
hand-wired plumbing each figure/table runner used to re-implement: the
engine in :mod:`repro.scenarios.engine` is the only place that knows how to
execute a spec.

Spec layout
-----------
A spec has five override sections plus the seed::

    {
      "preset": "failover",
      "seed": 0,
      "cluster":  {"num_nodes": 4, "replication_factor": 2},   # ClusterConfig
      "node":     {"ram_cache_entries": 200000},               # HashNodeConfig
      "workload": {"scale": 0.002, "profiles": ["mail-server"]},
      "client":   {"batch_size": 256},
      "faults":   {"kind": "rolling_outage", "outage_density": 0.3, ...},
      "churn":    {"kind": "join_leave", "events": 6, ...},
    }

Every section holds *overrides*: an empty section means "the preset's
legacy defaults", which is what keeps ported presets byte-identical to the
runners they replaced.  Sections are validated against the preset's
accepted keys when the spec is applied (see
:func:`repro.scenarios.engine.apply_overrides`), so a typo'd ``--set`` key
fails loudly instead of silently doing nothing.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.config import ClusterConfig, HashNodeConfig
from ..core.fault_injection import FaultPlan
from ..core.membership import ChurnPlan

__all__ = [
    "ScenarioSpec",
    "SweepGrid",
    "SpecError",
    "UnknownSpecKeyError",
    "CLUSTER_KEYS",
    "NODE_KEYS",
    "FAULT_KEYS",
    "CHURN_KEYS",
    "KEY_ALIASES",
    "coerce_scalar",
    "parse_setting",
]

#: Spec sections, in serialization order.
SECTIONS = ("cluster", "node", "workload", "client")

#: ClusterConfig overrides a spec may carry.
CLUSTER_KEYS = frozenset(
    name for name in ClusterConfig.__dataclass_fields__ if name != "node"
)

#: HashNodeConfig overrides a spec may carry.
NODE_KEYS = frozenset(HashNodeConfig.__dataclass_fields__)

#: Flat keys that configure the fault plan (merged into ``spec.faults``).
FAULT_KEYS = frozenset(
    {"fault_kind", "outage_density", "failure_rate", "flaky_nodes", "rounds"}
)

#: Flat keys that configure the churn plan (merged into ``spec.churn``).
CHURN_KEYS = frozenset({"churn_kind", "churn_events", "churn_start"})

#: Friendly CLI spellings for common keys.
KEY_ALIASES = {
    "nodes": "num_nodes",
    "replication": "replication_factor",
}


class SpecError(ValueError):
    """A scenario spec (or an override applied to one) is invalid."""


class UnknownSpecKeyError(SpecError):
    """A ``--set``/``--axis`` key is not accepted by the target preset."""

    def __init__(self, key: str, preset: str, valid: Sequence[str]) -> None:
        self.key = key
        self.preset = preset
        self.valid = sorted(valid)
        super().__init__(
            f"unknown key {key!r} for preset {preset!r}; "
            f"valid keys: {', '.join(self.valid)}"
        )


def _frozen_section(payload: Optional[Mapping[str, Any]], name: str) -> Dict[str, Any]:
    if payload is None:
        return {}
    if not isinstance(payload, Mapping):
        raise SpecError(f"spec section {name!r} must be a mapping, got {type(payload).__name__}")
    return dict(payload)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: preset + overrides + fault plan + seed.

    ``seed = None`` means "the preset's legacy default seed" -- that is
    what keeps an all-defaults spec byte-identical to the runner it
    replaced (the legacy runners use different default seeds).
    """

    preset: str
    seed: Optional[int] = None
    cluster: Mapping[str, Any] = field(default_factory=dict)
    node: Mapping[str, Any] = field(default_factory=dict)
    workload: Mapping[str, Any] = field(default_factory=dict)
    client: Mapping[str, Any] = field(default_factory=dict)
    faults: Optional[FaultPlan] = None
    churn: Optional[ChurnPlan] = None

    def __post_init__(self) -> None:
        if not self.preset:
            raise SpecError("spec needs a preset name")
        for name in SECTIONS:
            object.__setattr__(self, name, _frozen_section(getattr(self, name), name))
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise SpecError("faults must be a FaultPlan (or None)")
        if self.churn is not None and not isinstance(self.churn, ChurnPlan):
            raise SpecError("churn must be a ChurnPlan (or None)")

    # -- derived views ---------------------------------------------------------------
    def section(self, name: str) -> Dict[str, Any]:
        """Copy of one override section."""
        if name not in SECTIONS:
            raise SpecError(f"unknown section {name!r}")
        return dict(getattr(self, name))

    def flat(self) -> Dict[str, Any]:
        """All overrides as one flat ``key -> value`` mapping (for display).

        Section keys never collide: cluster/node keys come from disjoint
        dataclasses and preset extras are validated against both.
        """
        merged: Dict[str, Any] = {} if self.seed is None else {"seed": self.seed}
        for name in SECTIONS:
            merged.update(getattr(self, name))
        if self.faults is not None:
            merged.update(
                {
                    "fault_kind": self.faults.kind,
                    "outage_density": self.faults.outage_density,
                    "failure_rate": self.faults.failure_rate,
                    "flaky_nodes": self.faults.flaky_nodes,
                    "rounds": self.faults.rounds,
                }
            )
        if self.churn is not None:
            merged.update(
                {
                    "churn_kind": self.churn.kind,
                    "churn_events": self.churn.events,
                    "churn_start": self.churn.start,
                }
            )
        return merged

    def replace_sections(self, **sections: Any) -> "ScenarioSpec":
        """Copy with whole sections (or ``seed``/``faults``/``churn``) replaced."""
        payload = {
            "preset": self.preset,
            "seed": self.seed,
            "faults": self.faults,
            "churn": self.churn,
            **{name: getattr(self, name) for name in SECTIONS},
        }
        payload.update(sections)
        return ScenarioSpec(**payload)

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        payload: Dict[str, Any] = {"preset": self.preset}
        if self.seed is not None:
            payload["seed"] = self.seed
        for name in SECTIONS:
            section = getattr(self, name)
            if section:
                payload[name] = dict(section)
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        if self.churn is not None:
            payload["churn"] = self.churn.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(payload, Mapping):
            raise SpecError("spec payload must be a mapping")
        known = {"preset", "seed", "faults", "churn", *SECTIONS}
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"unknown spec fields: {sorted(unknown)}")
        if "preset" not in payload:
            raise SpecError("spec payload needs a 'preset'")
        faults = payload.get("faults")
        if isinstance(faults, Mapping):
            faults = FaultPlan.from_dict(dict(faults))
        churn = payload.get("churn")
        if isinstance(churn, Mapping):
            churn = ChurnPlan.from_dict(dict(churn))
        seed = payload.get("seed")
        return cls(
            preset=payload["preset"],
            seed=None if seed is None else int(seed),
            faults=faults,
            churn=churn,
            **{name: payload.get(name) for name in SECTIONS},
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SweepGrid:
    """Named axes over spec keys, expanded cartesian or zipped.

    ``axes`` preserves insertion order; with ``mode="cartesian"`` the last
    axis varies fastest (like nested for-loops), with ``mode="zip"`` all
    axes must have equal length and are walked in lockstep.
    """

    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    mode: str = "cartesian"

    MODES = ("cartesian", "zip")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise SpecError(f"mode must be one of {self.MODES}, got {self.mode!r}")
        axes: Dict[str, List[Any]] = {}
        for name, values in dict(self.axes).items():
            values = list(values)
            if not values:
                raise SpecError(f"axis {name!r} has no values")
            axes[name] = values
        if not axes:
            raise SpecError("a sweep needs at least one axis")
        if self.mode == "zip":
            lengths = {len(v) for v in axes.values()}
            if len(lengths) > 1:
                raise SpecError(f"zip mode needs equal-length axes, got lengths {sorted(lengths)}")
        object.__setattr__(self, "axes", axes)

    def __len__(self) -> int:
        if self.mode == "zip":
            return len(next(iter(self.axes.values())))
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> Iterator[Dict[str, Any]]:
        """Yield one ``{axis: value}`` mapping per grid point, in order."""
        names = list(self.axes)
        if self.mode == "zip":
            for row in zip(*(self.axes[name] for name in names)):
                yield dict(zip(names, row))
            return
        for row in itertools.product(*(self.axes[name] for name in names)):
            yield dict(zip(names, row))

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"axes": {name: list(values) for name, values in self.axes.items()},
                "mode": self.mode}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepGrid":
        unknown = set(payload) - {"axes", "mode"}
        if unknown:
            raise SpecError(f"unknown sweep fields: {sorted(unknown)}")
        return cls(axes=payload.get("axes", {}), mode=payload.get("mode", "cartesian"))

    @classmethod
    def parse(cls, axis_settings: Sequence[str], mode: str = "cartesian") -> "SweepGrid":
        """Build a grid from CLI ``name=v1,v2,...`` strings."""
        axes: Dict[str, List[Any]] = {}
        for setting in axis_settings:
            name, values = parse_setting(setting)
            axes[name] = values if isinstance(values, list) else [values]
        return cls(axes=axes, mode=mode)


# ------------------------------------------------------------------------- CLI parsing
def coerce_scalar(text: str) -> Any:
    """Interpret a CLI value string as bool, int, float, or str (in that order)."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip()


def parse_setting(setting: str) -> Tuple[str, Any]:
    """Split one ``key=value`` (or ``key=v1,v2,...``) CLI setting.

    A comma in the value yields a list -- that is how ``--axis`` carries its
    values and how ``--set profiles=web-server,mail-server`` passes a list.
    """
    key, separator, raw = setting.partition("=")
    key = key.strip()
    if not separator or not key or not raw.strip():
        raise SpecError(f"expected key=value, got {setting!r}")
    if "," in raw:
        return key, [coerce_scalar(part) for part in raw.split(",") if part.strip()]
    return key, coerce_scalar(raw)
