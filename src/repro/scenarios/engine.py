"""The scenario engine: preset registry, override resolution, run/sweep.

This module is the single execution path for experiments.  A
:class:`Preset` couples a name with (a) the set of spec keys it accepts per
section and (b) a runner that turns a validated :class:`ScenarioSpec` into
a :class:`ScenarioResult`.  :func:`run_scenario` executes one spec;
:func:`run_sweep` expands a :class:`SweepGrid` against a base spec and
collects the uniform metrics of every point into a :class:`SweepResult`.

Override resolution
-------------------
Callers address spec keys *flat* (``--set replication_factor=2``,
``--axis outage_density=0.1,0.3``); :func:`apply_overrides` routes each key
into its section using the preset's declared key sets, applies aliases
(``nodes`` -> ``num_nodes``), folds fault keys into the spec's
:class:`~repro.core.fault_injection.FaultPlan`, and raises
:class:`~repro.scenarios.spec.UnknownSpecKeyError` for anything the preset
does not understand.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from ..core.fault_injection import FaultPlan
from ..core.membership import ChurnPlan
from ..storage.npy import backend_name
from ..workloads.trace_cache import TRACE_CACHE_ENV, cleanup_shared_traces
from .result import ScenarioResult, SweepResult, SweepRun
from .spec import (
    CHURN_KEYS,
    CLUSTER_KEYS,
    FAULT_KEYS,
    KEY_ALIASES,
    NODE_KEYS,
    ScenarioSpec,
    SpecError,
    SweepGrid,
    UnknownSpecKeyError,
)

__all__ = [
    "Preset",
    "register_preset",
    "get_preset",
    "available_presets",
    "spec_for",
    "apply_overrides",
    "canonicalize_grid",
    "run_scenario",
    "run_sweep",
]


@dataclass(frozen=True)
class Preset:
    """One named scenario family (usually a ported paper figure/table)."""

    name: str
    description: str
    runner: Callable[[ScenarioSpec], ScenarioResult]
    #: Accepted spec keys per section.  ``workload``/``client`` keys are
    #: preset-specific; ``cluster``/``node`` keys must be subsets of the
    #: config dataclasses; ``faults`` is all-or-nothing.
    cluster_keys: FrozenSet[str] = frozenset()
    node_keys: FrozenSet[str] = frozenset()
    workload_keys: FrozenSet[str] = frozenset()
    client_keys: FrozenSet[str] = frozenset()
    accepts_faults: bool = False
    accepts_churn: bool = False

    def __post_init__(self) -> None:
        if not self.cluster_keys <= CLUSTER_KEYS:
            raise SpecError(
                f"preset {self.name!r}: cluster keys {sorted(self.cluster_keys - CLUSTER_KEYS)} "
                "are not ClusterConfig fields"
            )
        if not self.node_keys <= NODE_KEYS:
            raise SpecError(
                f"preset {self.name!r}: node keys {sorted(self.node_keys - NODE_KEYS)} "
                "are not HashNodeConfig fields"
            )

    def valid_keys(self) -> List[str]:
        """Every flat key this preset accepts (for error messages / docs)."""
        keys = {"seed"}
        keys |= self.cluster_keys | self.node_keys | self.workload_keys | self.client_keys
        if self.accepts_faults:
            keys |= FAULT_KEYS
        if self.accepts_churn:
            keys |= CHURN_KEYS
        return sorted(keys)

    def section_of(self, key: str) -> Optional[str]:
        """Which spec section a flat key belongs to (``None`` if unknown)."""
        if key == "seed":
            return "seed"
        if key in FAULT_KEYS:
            return "faults" if self.accepts_faults else None
        if key in CHURN_KEYS:
            return "churn" if self.accepts_churn else None
        for section, accepted in (
            ("cluster", self.cluster_keys),
            ("node", self.node_keys),
            ("workload", self.workload_keys),
            ("client", self.client_keys),
        ):
            if key in accepted:
                return section
        return None


_PRESETS: Dict[str, Preset] = {}
_BUILTINS_LOADED = False


def register_preset(preset: Preset) -> Preset:
    """Add (or replace) a preset in the registry; returns it for chaining."""
    _PRESETS[preset.name] = preset
    return preset


def get_preset(name: str) -> Preset:
    _ensure_presets_loaded()
    try:
        return _PRESETS[name]
    except KeyError:
        raise SpecError(
            f"unknown preset {name!r}; available: {', '.join(available_presets())}"
        ) from None


def available_presets() -> List[str]:
    """Registered preset names, sorted."""
    _ensure_presets_loaded()
    return sorted(_PRESETS)


def _ensure_presets_loaded() -> None:
    # The built-in presets live in .presets, which imports this module; a
    # lazy import avoids the cycle while keeping `get_preset` self-contained.
    # A dedicated flag (not `_PRESETS` emptiness) so user-registered presets
    # never mask the built-ins.
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import presets  # noqa: F401  (registers on import)


# ------------------------------------------------------------------- overrides
def _merge_fault_key(plan: Optional[FaultPlan], key: str, value: Any) -> FaultPlan:
    """Fold one flat fault key into a plan, inferring the kind upgrades.

    Setting an outage density on a grey plan yields ``rolling_grey`` (and
    vice versa), so ``--axis outage_density=... --axis failure_rate=...``
    composes without the caller spelling the kind explicitly.
    """
    plan = plan if plan is not None else FaultPlan.none()
    if key == "fault_kind":
        return replace(plan, kind=str(value))
    if key == "outage_density":
        kind = plan.kind
        if value and kind == "none":
            kind = "rolling_outage"
        elif value and kind == "grey_failure":
            kind = "rolling_grey"
        return replace(plan, outage_density=float(value), kind=kind)
    if key == "failure_rate":
        kind = plan.kind
        if value and kind == "none":
            kind = "grey_failure"
        elif value and kind == "rolling_outage":
            kind = "rolling_grey"
        return replace(plan, failure_rate=float(value), kind=kind)
    if key == "flaky_nodes":
        return replace(plan, flaky_nodes=int(value))
    if key == "rounds":
        return replace(plan, rounds=int(value))
    raise SpecError(f"unknown fault key {key!r}")  # pragma: no cover - guarded by caller


def _merge_churn_key(plan: Optional[ChurnPlan], key: str, value: Any) -> ChurnPlan:
    """Fold one flat churn key into a plan (``churn_events=6`` etc.)."""
    plan = plan if plan is not None else ChurnPlan.none()
    if key == "churn_kind":
        return replace(plan, kind=str(value))
    if key == "churn_events":
        return replace(plan, events=int(value))
    if key == "churn_start":
        return replace(plan, start=float(value))
    raise SpecError(f"unknown churn key {key!r}")  # pragma: no cover - guarded by caller


def apply_overrides(spec: ScenarioSpec, values: Mapping[str, Any]) -> ScenarioSpec:
    """Route flat ``key -> value`` overrides into a spec's sections.

    Raises :class:`UnknownSpecKeyError` for keys the spec's preset does not
    accept -- a typo'd sweep axis must fail before any experiment runs.
    """
    preset = get_preset(spec.preset)
    sections: Dict[str, Dict[str, Any]] = {
        "cluster": spec.section("cluster"),
        "node": spec.section("node"),
        "workload": spec.section("workload"),
        "client": spec.section("client"),
    }
    seed = spec.seed
    faults = spec.faults
    churn = spec.churn
    for raw_key, value in values.items():
        key = KEY_ALIASES.get(raw_key, raw_key)
        section = preset.section_of(key)
        if section is None:
            raise UnknownSpecKeyError(raw_key, preset.name, preset.valid_keys())
        if section == "seed":
            seed = int(value)
        elif section == "faults":
            faults = _merge_fault_key(faults, key, value)
        elif section == "churn":
            churn = _merge_churn_key(churn, key, value)
        else:
            sections[section][key] = value
    return spec.replace_sections(seed=seed, faults=faults, churn=churn, **sections)


def _validate_spec(spec: ScenarioSpec, preset: Preset) -> None:
    """Reject spec sections carrying keys the preset does not accept."""
    for section, accepted in (
        ("cluster", preset.cluster_keys),
        ("node", preset.node_keys),
        ("workload", preset.workload_keys),
        ("client", preset.client_keys),
    ):
        unknown = set(getattr(spec, section)) - accepted
        if unknown:
            raise UnknownSpecKeyError(sorted(unknown)[0], preset.name, preset.valid_keys())
    if spec.faults is not None and not preset.accepts_faults:
        raise SpecError(f"preset {spec.preset!r} does not take a fault plan")
    if spec.churn is not None and not preset.accepts_churn:
        raise SpecError(f"preset {spec.preset!r} does not take a churn plan")


def spec_for(preset_name: str, **overrides: Any) -> ScenarioSpec:
    """The preset's default spec with flat ``overrides`` applied.

    An empty override set reproduces the legacy runner's defaults exactly;
    that equivalence is what the golden tests pin down.
    """
    get_preset(preset_name)  # fail fast on unknown names
    return apply_overrides(ScenarioSpec(preset=preset_name), overrides)


# ------------------------------------------------------------------- execution
def run_scenario(
    spec: Union[ScenarioSpec, str], **overrides: Any
) -> ScenarioResult:
    """Execute one scenario and return its uniform result.

    ``spec`` may be a :class:`ScenarioSpec` or a preset name; keyword
    overrides are applied through :func:`apply_overrides` either way.
    """
    if isinstance(spec, str):
        spec = spec_for(spec, **overrides)
    elif overrides:
        spec = apply_overrides(spec, overrides)
    preset = get_preset(spec.preset)
    _validate_spec(spec, preset)
    result = preset.runner(spec)
    # Every result records which data-plane backend produced it (resolved
    # once per process at import; see repro/storage/npy.py).  Sweep workers
    # inherit the parent's environment, so sequential and parallel sweep
    # JSON stay byte-identical.
    result.metrics.setdefault("kernel_backend", backend_name())
    return result


def canonicalize_grid(grid: SweepGrid) -> SweepGrid:
    """Resolve axis-name aliases (``nodes`` -> ``num_nodes``) once, up front.

    Alias resolution used to happen per grid point inside
    ``apply_overrides``, which meant an aliased axis produced sweep JSON
    whose ``point``/``grid`` keys differed from the canonical spelling.
    Canonicalizing the grid makes aliased and canonical axis names emit
    identical sweeps, and leaves nothing for the per-point loop to
    resolve.  An alias colliding with its canonical form (``nodes`` and
    ``num_nodes`` as separate axes) is rejected.
    """
    renamed = {KEY_ALIASES.get(name, name): values for name, values in grid.axes.items()}
    if len(renamed) != len(grid.axes):
        raise SpecError(
            "sweep axes collide after alias resolution: "
            f"{sorted(grid.axes)} -> {sorted(renamed)}"
        )
    if list(renamed) == list(grid.axes):
        return grid
    return SweepGrid(axes=renamed, mode=grid.mode)


def _run_sweep_point(
    payload: Tuple[ScenarioSpec, Dict[str, Any], bool]
) -> Tuple[bool, Any]:
    """Worker-side execution of one grid point (module-level: picklable).

    Returns ``(True, metrics)`` or ``(False, error_string)``; with
    ``catch`` false the exception propagates to the caller (strict mode),
    pickled back across the process boundary by the pool.
    """
    spec, point, catch = payload
    if not catch:
        return True, run_scenario(apply_overrides(spec, point)).metrics
    try:
        result = run_scenario(apply_overrides(spec, point))
    except Exception as error:  # noqa: BLE001 - error rows carry any failure
        message = f"{type(error).__name__}: {error}"
        traceback.clear_frames(error.__traceback__)
        return False, message
    return True, result.metrics


def run_sweep(
    spec: Union[ScenarioSpec, str],
    grid: SweepGrid,
    strict: bool = False,
    progress: Optional[Callable[[Dict[str, Any], Optional[SweepRun]], None]] = None,
    workers: int = 1,
) -> SweepResult:
    """Run every grid point against ``spec``; collect metrics per point.

    A failing point is recorded as an error row (so one infeasible corner
    -- say, an unreplicated cluster under total outage -- does not discard
    the rest of an expensive sweep) unless ``strict`` is true.  ``progress``
    is called as ``progress(point, None)`` before each run and
    ``progress(point, run)`` after it.

    ``workers > 1`` executes the grid on a process pool.  Every point is
    independently seeded and the rows are collected in grid order, so the
    result -- including its JSON serialization -- is byte-identical to a
    sequential run for any worker count (pinned by
    tests/test_parallel_sweep.py).  Error-row semantics are preserved; in
    strict mode the first failing point *in grid order* raises (later
    points may already have run -- scenario runs are pure compute, so no
    side effects leak).  ``progress`` keeps firing in grid order: the
    ``(point, None)`` call marks the wait for that point's result rather
    than the exact start of its execution.
    """
    if isinstance(spec, str):
        spec = spec_for(spec)
    if workers < 1:
        raise SpecError(f"workers must be >= 1, got {workers}")
    grid = canonicalize_grid(grid)
    # Validate the axes against the preset before running anything.
    base_preset = get_preset(spec.preset)
    for axis in grid.axes:
        if base_preset.section_of(axis) is None:
            raise UnknownSpecKeyError(axis, base_preset.name, base_preset.valid_keys())
    sweep = SweepResult(base=spec, grid=grid)
    if workers > 1:
        points = list(grid.points())
        # Publish generated traces in shared memory for the pool's lifetime:
        # grid points vary cluster knobs far more often than workload knobs,
        # so without this every worker regenerates identical traces.  The
        # prefix is pid-scoped (unique across concurrent sweeps on a host)
        # and cleaned up below even if workers were killed mid-point.
        trace_prefix = f"repro-sweep-{os.getpid()}"
        previous_prefix = os.environ.get(TRACE_CACHE_ENV)
        os.environ[TRACE_CACHE_ENV] = trace_prefix
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_run_sweep_point, (spec, point, not strict))
                    for point in points
                ]
                try:
                    for point, future in zip(points, futures):
                        if progress is not None:
                            progress(point, None)
                        ok, outcome = future.result()  # strict: re-raises the original
                        run = (
                            SweepRun(point=point, metrics=outcome)
                            if ok
                            else SweepRun(point=point, error=outcome)
                        )
                        sweep.runs.append(run)
                        if progress is not None:
                            progress(point, run)
                except BaseException:
                    # Strict abort (or interrupt): drop every not-yet-started
                    # point instead of letting the pool drain the whole grid
                    # before the failure reaches the caller.
                    for pending in futures:
                        pending.cancel()
                    raise
        finally:
            if previous_prefix is None:
                os.environ.pop(TRACE_CACHE_ENV, None)
            else:
                os.environ[TRACE_CACHE_ENV] = previous_prefix
            cleanup_shared_traces(trace_prefix)
        return sweep
    for point in grid.points():
        if progress is not None:
            progress(point, None)
        try:
            result = run_scenario(apply_overrides(spec, point))
        except Exception as error:
            if strict:
                raise
            run = SweepRun(point=point, error=f"{type(error).__name__}: {error}")
            traceback.clear_frames(error.__traceback__)
        else:
            run = SweepRun(point=point, metrics=result.metrics)
        sweep.runs.append(run)
        if progress is not None:
            progress(point, run)
    return sweep
