"""Uniform results for scenario runs and sweeps.

Every preset returns a :class:`ScenarioResult`: the spec that produced it,
one flat ``metrics`` mapping in the common schema, and the preset's legacy
result object as ``detail`` (which still owns the paper-formatted
``render()``).  A :class:`SweepResult` collects one row per grid point and
serializes to the machine-readable JSON grid the CLI emits.

Common metrics schema
---------------------
Presets populate whichever of these apply (all plain JSON values):

``fingerprints``
    Fingerprints (chunks) the run processed.
``throughput``
    Fingerprints per second of (simulated) time.
``mean_latency_us`` / ``p50_latency_us`` / ``p95_latency_us`` / ``p99_latency_us``
    Per-fingerprint service latency, microseconds.
``dedup_accuracy`` / ``duplicate_ratio``
    Verdict quality against the exact oracle, and the duplicate fraction.
``served_from``
    Breakdown of verdict sources: ``{"ram": .., "ssd": .., "new": ..,
    "repair": ..}``.
``read_repairs`` / ``failovers`` / ``replica_inserts`` / ``repaired_copies``
    Replica and repair traffic counters.
``crashes`` / ``recoveries`` / ``unserved`` / ``grey_drops``
    Fault-injection outcome counters.

Preset-specific extras (e.g. ``points`` for a figure's sweep series, or
``moved_fraction_consistent`` for the scaling ablation) ride along under
their own names; consumers that only understand the common schema can
ignore them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.reporting import format_table
from .spec import ScenarioSpec, SweepGrid

__all__ = ["ScenarioResult", "SweepRun", "SweepResult"]


def _clean_metrics(metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``None`` values so emitted JSON only carries measured metrics."""
    return {key: value for key, value in metrics.items() if value is not None}


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: spec + uniform metrics + legacy detail."""

    spec: ScenarioSpec
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: The preset's native result object (``Figure5Result``,
    #: ``FailoverResult``, ...); owns the paper-formatted rendering.
    detail: Any = None

    def __post_init__(self) -> None:
        self.metrics = _clean_metrics(self.metrics)

    @property
    def preset(self) -> str:
        return self.spec.preset

    def render(self) -> str:
        """The paper-formatted table/series for this run."""
        if self.detail is not None and hasattr(self.detail, "render"):
            return self.detail.render()
        rows = sorted(
            (key, value)
            for key, value in self.metrics.items()
            if isinstance(value, (int, float, str))
        )
        return format_table(["metric", "value"], rows, title=f"Scenario: {self.preset}")

    def to_dict(self) -> Dict[str, Any]:
        return {"spec": self.spec.to_dict(), "metrics": self.metrics}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


@dataclass
class SweepRun:
    """One grid point: the axis values applied, and metrics or an error."""

    point: Dict[str, Any]
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"point": self.point}
        if self.error is None:
            payload["metrics"] = self.metrics
        else:
            payload["error"] = self.error
        return payload


#: Preferred column order for the sweep summary table; only columns some
#: run actually reports are shown.
_SUMMARY_METRICS = (
    "throughput",
    "dedup_accuracy",
    "mean_latency_us",
    "p95_latency_us",
    "unserved",
    "grey_drops",
    "moved_fraction",
    "replica_copies",
    "read_repairs",
    "failovers",
    "crashes",
)


@dataclass
class SweepResult:
    """All grid points of one sweep over a base spec."""

    base: ScenarioSpec
    grid: SweepGrid
    runs: List[SweepRun] = field(default_factory=list)

    @property
    def preset(self) -> str:
        return self.base.preset

    @property
    def failed(self) -> List[SweepRun]:
        return [run for run in self.runs if not run.ok]

    def render(self) -> str:
        """Axis columns plus the headline common metrics, one row per point."""
        axis_names = list(self.grid.axes)
        shown = [
            name
            for name in _SUMMARY_METRICS
            if any(name in run.metrics for run in self.runs)
        ]
        rows = []
        for run in self.runs:
            row = [run.point.get(name, "") for name in axis_names]
            if run.ok:
                row += [run.metrics.get(name, "") for name in shown]
            else:
                row += [f"error: {run.error}"] + [""] * (len(shown) - 1 if shown else 0)
            rows.append(row)
        return format_table(
            axis_names + shown,
            rows,
            title=f"Sweep: {self.preset} ({len(self.runs)} points)",
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "preset": self.preset,
            "base_spec": self.base.to_dict(),
            "grid": self.grid.to_dict(),
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
