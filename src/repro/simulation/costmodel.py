"""Cost model for control-plane work: replication, repair and migration.

Historically every replica write, read repair and membership-migration copy
in this reproduction was applied *instantaneously* at the reply instant, so
the paper-relevant "replication tax" and "elasticity tax" were structurally
invisible: a cluster under outage or churn reported the same latency
distribution as a quiet one.  This module is the seam that fixes that.

Two pieces:

* :class:`CostModel` -- frozen pricing constants.  CPU costs are per
  operation on the node that performs the work; network costs are priced
  with the fabric constants from :mod:`repro.network.link` (50 µs per
  switched gigabit hop, 1 Gb/s serialisation), so the control plane and the
  data plane pay for the same wires.
* :class:`ControlPlaneLedger` -- the immediate-mode timeline.  Immediate
  mode has no simulator, so the ledger keeps a virtual clock (driven by the
  caller's arrival process) plus one busy-until frontier per node.  Lookup
  buckets are serviced against the frontier (queueing emerges when work
  outpaces arrivals); control-plane side effects are *deferred* onto the
  target node's frontier at their delivery time instead of being free.
  Latencies are recorded into per-phase recorders (``steady`` /
  ``degraded`` / ``migrating``), which is what the ``failover_timed`` and
  ``churn_timed`` presets report.

In simulated mode (a cluster built with a :class:`~repro.simulation.engine.Simulator`)
the same :class:`CostModel` prices deferred CPU occupancy scheduled on the
node's worker pool (:meth:`~repro.core.hash_node.HybridHashNode.occupy_cpu`)
rather than a ledger, so replication contends with lookups on the simulated
clock.

Disabling the model (``cost_model=None``, the default everywhere) keeps
every code path byte-identical to the historical behaviour; see
docs/control_plane.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..network.link import DEFAULT_LINK_LATENCY, GIGABIT_BANDWIDTH
from .stats import Counter, LatencyRecorder

__all__ = ["CostModel", "ControlPlaneLedger", "STEADY_PHASE"]

#: Default phase label for latencies recorded outside any outage/migration.
STEADY_PHASE = "steady"


@dataclass(frozen=True)
class CostModel:
    """Per-operation prices for control-plane work.

    CPU costs are seconds of node CPU per operation; byte sizes are the
    wire size of one fingerprint entry (digest + chunk size + framing).
    Hop counts default to the paper testbed's client-switch-server path
    (two 50 µs hops end to end, matching ``network/link.py``).
    """

    #: CPU to apply one replica write on the target node.
    replica_write_cpu: float = 8e-6
    #: CPU to export/import one migrated entry (charged on both ends).
    migration_entry_cpu: float = 5e-6
    #: One-way latency of a single fabric hop (seconds).
    hop_latency: float = DEFAULT_LINK_LATENCY
    #: Hops a replica-propagation message crosses (node -> switch -> node).
    replica_hops: int = 2
    #: Hops a migration transfer crosses.
    migration_hops: int = 2
    #: Fabric bandwidth in bytes per second.
    bandwidth: float = GIGABIT_BANDWIDTH
    #: Wire bytes per replicated fingerprint entry.
    replica_entry_bytes: int = 64
    #: Wire bytes per migrated fingerprint entry.
    migration_entry_bytes: int = 64
    #: CPU to replay one container record into the index during recovery
    #: (store insert or bloom re-hash).
    replay_entry_cpu: float = 2e-6
    #: CPU per byte to mmap-load and checksum a snapshot payload
    #: (~2 GB/s bulk copy + CRC).
    snapshot_byte_cpu: float = 5e-10

    def __post_init__(self) -> None:
        if self.replica_write_cpu < 0 or self.migration_entry_cpu < 0:
            raise ValueError("CPU costs must be non-negative")
        if self.replay_entry_cpu < 0 or self.snapshot_byte_cpu < 0:
            raise ValueError("recovery costs must be non-negative")
        if self.hop_latency < 0:
            raise ValueError("hop_latency must be non-negative")
        if self.replica_hops < 0 or self.migration_hops < 0:
            raise ValueError("hop counts must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.replica_entry_bytes < 0 or self.migration_entry_bytes < 0:
            raise ValueError("entry byte sizes must be non-negative")

    # -- pricing ------------------------------------------------------------------
    def transfer_time(self, entries: int, entry_bytes: int, hops: int) -> float:
        """Unloaded delivery time of ``entries`` sized entries over ``hops``."""
        return hops * self.hop_latency + entries * entry_bytes / self.bandwidth

    def replica_transfer_time(self, entries: int) -> float:
        """Delivery time of one replica-propagation message of ``entries``."""
        return self.transfer_time(entries, self.replica_entry_bytes, self.replica_hops)

    def replica_apply_cpu(self, entries: int) -> float:
        """Target-node CPU to apply ``entries`` replica writes."""
        return entries * self.replica_write_cpu

    def migration_transfer_time(self, entries: int) -> float:
        """Delivery time of one migration transfer of ``entries``."""
        return self.transfer_time(entries, self.migration_entry_bytes, self.migration_hops)

    def migration_cpu(self, entries: int) -> float:
        """Per-end CPU to export (or import) ``entries`` migrated entries."""
        return entries * self.migration_entry_cpu

    def recovery_cpu(self, replayed_entries: int, snapshot_bytes: int = 0) -> float:
        """CPU a restarted node spends rebuilding its index from disk.

        ``replayed_entries`` counts the per-record work (store rebuild plus
        bloom tail replay, or every live key twice on a cold restart);
        ``snapshot_bytes`` prices the bulk snapshot load.
        """
        return (
            replayed_entries * self.replay_entry_cpu
            + snapshot_bytes * self.snapshot_byte_cpu
        )


class ControlPlaneLedger:
    """Immediate-mode virtual timeline charging lookups and control-plane work.

    The ledger is a deliberately small queueing model: one FIFO CPU
    frontier per node (``busy_until``), a caller-driven arrival clock
    (``now``, advanced via :meth:`advance_to` by the experiment's offered
    load), and per-phase latency recorders.  A lookup bucket starts at
    ``max(now, busy_until[node])`` -- so deferred control-plane work
    (replica deliveries, migration imports) delays subsequent lookups on
    the same node, which is exactly the tax the timed presets measure.
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model
        #: Virtual arrival clock (seconds); advanced by the driver.
        self.now = 0.0
        #: Per-node CPU frontier: the time each node's queued work clears.
        self.busy_until: Dict[str, float] = {}
        self.counters = Counter()
        #: Total control-plane CPU seconds deferred onto node frontiers.
        self.control_plane_cpu_seconds = 0.0
        #: Completion time of the most recently charged lookup bucket.
        self.last_completion = 0.0
        self.phase = STEADY_PHASE
        self._recorders: Dict[str, LatencyRecorder] = {}

    # -- clock / phases -----------------------------------------------------------
    def set_phase(self, name: str) -> None:
        """Label subsequent lookup latencies (``steady``/``degraded``/...)."""
        self.phase = name

    def advance_to(self, time: float) -> None:
        """Move the arrival clock forward (never backward)."""
        if time > self.now:
            self.now = time

    def recorder(self, phase: Optional[str] = None) -> LatencyRecorder:
        """The latency recorder for ``phase`` (default: the current phase)."""
        name = self.phase if phase is None else phase
        recorder = self._recorders.get(name)
        if recorder is None:
            self._recorders[name] = recorder = LatencyRecorder(f"lookup[{name}]")
        return recorder

    @property
    def phases(self) -> Mapping[str, LatencyRecorder]:
        """Per-phase latency recorders populated so far."""
        return dict(self._recorders)

    def backlog(self) -> float:
        """Seconds of queued work beyond ``now`` on the busiest node."""
        if not self.busy_until:
            return 0.0
        return max(0.0, max(self.busy_until.values()) - self.now)

    def end_time(self) -> float:
        """When all charged work (arrivals and backlog) has drained."""
        frontier = max(self.busy_until.values()) if self.busy_until else 0.0
        return max(self.now, frontier)

    # -- charging -----------------------------------------------------------------
    def begin_service(self, node: str, service_time: float):
        """FIFO-queue ``service_time`` of work on ``node``; returns (start, end)."""
        start = self.busy_until.get(node, 0.0)
        if start < self.now:
            start = self.now
        end = start + service_time
        self.busy_until[node] = end
        return start, end

    def defer(self, node: str, at: float, cpu_time: float) -> float:
        """Queue ``cpu_time`` of control-plane work on ``node`` from ``at`` on.

        Returns the time the deferred work completes.  The work joins the
        node's FIFO frontier, so it delays later lookups on that node.
        """
        start = self.busy_until.get(node, 0.0)
        if start < at:
            start = at
        end = start + cpu_time
        self.busy_until[node] = end
        self.control_plane_cpu_seconds += cpu_time
        return end

    def charge_bucket(self, node: str, replies) -> float:
        """Charge one serving node's lookup bucket; records per-reply latency.

        The bucket's service demand is the sum of its analytic per-reply
        service times; every reply completes when the bucket does, so the
        recorded latency is queueing delay (arrival to service start) plus
        the full bucket service -- the client-visible figure for a batched
        request.
        """
        service_time = 0.0
        for reply in replies:
            service_time += reply.service_time
        _start, end = self.begin_service(node, service_time)
        self.last_completion = end
        count = len(replies)
        if count:
            latency = end - self.now
            self.recorder().record_many([latency] * count)
            self.counters.increment("lookups", count)
        return end

    def charge_replica_writes(self, pending: Mapping[str, int]) -> None:
        """Defer replica-propagation messages onto their targets' timelines.

        ``pending`` maps target node -> number of new entries shipped to it.
        Each target's message leaves when the serving bucket completes
        (``last_completion``), crosses the fabric, and then consumes apply
        CPU on the target.
        """
        model = self.model
        sent_at = self.last_completion
        if sent_at < self.now:
            sent_at = self.now
        for target, entries in pending.items():
            self.defer(
                target,
                sent_at + model.replica_transfer_time(entries),
                model.replica_apply_cpu(entries),
            )
            self.counters.increment("replica_writes", entries)
            self.counters.increment("replica_bytes", entries * model.replica_entry_bytes)
            self.counters.increment("replica_messages")

    def charge_recovery(
        self, node: str, replayed_entries: int, snapshot_bytes: int = 0
    ) -> float:
        """Defer a restarted node's index-rebuild work onto its timeline.

        The node comes back at ``now`` but spends its first moments
        replaying the container (and loading the snapshot), so lookups that
        land on it during warm-up queue behind the recovery -- the
        degraded-mode tail the ``restart`` preset measures.  Returns the
        charged CPU seconds.
        """
        cpu = self.model.recovery_cpu(replayed_entries, snapshot_bytes)
        self.defer(node, self.now, cpu)
        self.counters.increment("recovery_replayed_entries", replayed_entries)
        self.counters.increment("recovery_snapshot_bytes", snapshot_bytes)
        self.counters.increment("node_recoveries")
        return cpu

    def charge_migration(self, transfers: Mapping) -> None:
        """Defer migration copy traffic: export CPU, wire time, import CPU.

        ``transfers`` maps ``(source, target)`` -> entries copied.  The
        source pays export CPU from ``now``; the entries then cross the
        fabric and the target pays import CPU on arrival.  Both frontiers
        back up, so lookups right after a membership change queue behind
        the migration -- the elasticity tax.
        """
        model = self.model
        for (source, target), entries in transfers.items():
            cpu = model.migration_cpu(entries)
            export_done = self.defer(source, self.now, cpu)
            self.defer(target, export_done + model.migration_transfer_time(entries), cpu)
            self.counters.increment("migration_entries", entries)
            self.counters.increment(
                "migration_bytes", entries * model.migration_entry_bytes
            )
            self.counters.increment("migration_transfers")
