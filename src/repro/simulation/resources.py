"""Shared resources for simulated processes.

Three primitives cover the queueing behaviour the SHHC models need:

* :class:`Resource` -- a counted resource (e.g. a device that can serve
  ``capacity`` concurrent operations).  Requests queue FIFO (or by priority).
* :class:`Store` -- an unbounded or bounded FIFO buffer of items, used for
  message queues between simulated components.
* :class:`Container` -- a continuous quantity (e.g. bytes of free cache).

All waiting is expressed through :class:`~repro.simulation.engine.Event`
objects, so these primitives compose with processes naturally.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from .engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "Container"]


class Resource:
    """A resource with integer capacity and a (priority) request queue.

    Usage from a process::

        grant = resource.request()
        yield grant                 # waits until a slot is available
        ...                         # hold the slot
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: List[Tuple[int, int, Event, Callable[[], None]]] = []
        self._sequence = itertools.count()
        # -- statistics
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._busy_time = 0.0
        self._last_change = sim.now

    # -- introspection -------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the resource was busy (any slot)."""
        self._accumulate()
        elapsed = self.sim.now
        return self._busy_time / elapsed if elapsed > 0 else 0.0

    def mean_wait(self) -> float:
        """Mean queueing delay across all granted requests."""
        granted = self.total_requests - len(self._queue)
        return self.total_wait_time / granted if granted > 0 else 0.0

    # -- operations -----------------------------------------------------------
    def request(self, priority: int = 0) -> Event:
        """Ask for a slot.  The returned event succeeds when the slot is granted."""
        self.total_requests += 1
        grant = self.sim.event(f"{self.name}.grant")
        requested_at = self.sim.now

        def _grant_now() -> None:
            self.total_wait_time += self.sim.now - requested_at
            self._accumulate()
            self._in_use += 1
            grant.succeed(self)

        if self._in_use < self.capacity and not self._queue:
            _grant_now()
        else:
            heapq.heappush(self._queue, (priority, next(self._sequence), grant, _grant_now))
        return grant

    def release(self) -> None:
        """Return a slot, waking the next queued request if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._accumulate()
        self._in_use -= 1
        while self._queue:
            _priority, _seq, grant, grant_now = heapq.heappop(self._queue)
            if grant.triggered:  # cancelled externally
                continue
            grant_now()
            break

    def _accumulate(self) -> None:
        now = self.sim.now
        if self._in_use > 0:
            self._busy_time += now - self._last_change
        self._last_change = now


class Store:
    """A FIFO buffer of items with optional capacity.

    ``put`` blocks (queues) when full; ``get`` blocks when empty.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self.total_put = 0
        self.total_get = 0

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    @property
    def waiting_putters(self) -> int:
        return len(self._putters)

    # -- operations -----------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Insert ``item``.  Returns an event that succeeds once stored."""
        done = self.sim.event(f"{self.name}.put")
        if not self.is_full:
            self._deposit(item)
            done.succeed(item)
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Event:
        """Remove the oldest item.  Returns an event succeeding with the item."""
        done = self.sim.event(f"{self.name}.get")
        if self._items:
            done.succeed(self._withdraw())
        else:
            self._getters.append(done)
        return done

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: return an item or ``None`` if empty."""
        if self._items:
            return self._withdraw()
        return None

    def peek(self) -> Optional[Any]:
        """Return the oldest item without removing it (``None`` if empty)."""
        return self._items[0] if self._items else None

    def items(self) -> list:
        """Snapshot of buffered items, oldest first."""
        return list(self._items)

    # -- internal -------------------------------------------------------------
    def _deposit(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            self.total_get += 1
            getter.succeed(item)
        else:
            self._items.append(item)

    def _withdraw(self) -> Any:
        item = self._items.popleft()
        self.total_get += 1
        # Space freed: admit a waiting putter, if any.
        if self._putters and not self.is_full:
            done, pending = self._putters.popleft()
            self._deposit(pending)
            done.succeed(pending)
        return item


class Container:
    """A continuous quantity (bytes, tokens) with blocking put/get."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        initial: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= initial <= capacity:
            raise ValueError("initial level must be within [0, capacity]")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._level = float(initial)
        self._getters: Deque[Tuple[Event, float]] = deque()
        self._putters: Deque[Tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would overflow capacity."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        done = self.sim.event(f"{self.name}.put")
        self._putters.append((done, amount))
        self._settle()
        return done

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks until that much is available."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        done = self.sim.event(f"{self.name}.get")
        self._getters.append((done, amount))
        self._settle()
        return done

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                done, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    done.succeed(amount)
                    progressed = True
            if self._getters:
                done, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    done.succeed(amount)
                    progressed = True
