"""Generator-based processes on top of the event kernel.

A *process* is a Python generator that yields :class:`~repro.simulation.engine.Event`
objects (or plain floats, treated as timeouts).  Each yield suspends the
process until the yielded event triggers; the event's value is sent back into
the generator.  This gives sequential-looking code for inherently concurrent
behaviour -- clients issuing requests, servers draining queues, devices
performing transfers.

Example
-------
>>> from repro.simulation import Simulator, run_process
>>> def worker(sim, log):
...     yield sim.timeout(1.0)
...     log.append(sim.now)
...     yield sim.timeout(2.0)
...     log.append(sim.now)
...     return "done"
>>> sim = Simulator()
>>> log = []
>>> proc = run_process(sim, worker(sim, log))
>>> sim.run()
3.0
>>> (log, proc.value)
([1.0, 3.0], 'done')
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from .engine import Event, SimulationError, Simulator

__all__ = ["Process", "ProcessKilled", "run_process"]

Yieldable = Union[Event, float, int]


class ProcessKilled(Exception):
    """Injected into a process generator when :meth:`Process.kill` is called."""


class Process(Event):
    """A running process.  Also an :class:`Event` that triggers on completion.

    The completion value is the generator's ``return`` value; if the generator
    raises, the process event fails with that exception (propagating it to any
    process waiting on this one).
    """

    def __init__(self, sim: Simulator, generator: Generator[Yieldable, Any, Any], name: str = "") -> None:
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator (did you call the function?)")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._killed = False
        # Kick off the process at the current simulated instant.
        sim.schedule(0.0, self._resume, None, None)

    # -- lifecycle ----------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self.triggered

    def kill(self, reason: str = "killed") -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if self.triggered or self._killed:
            return
        self._killed = True
        self.sim.schedule(0.0, self._resume, None, ProcessKilled(reason))

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process: its current wait raises :class:`Interrupt`."""
        if self.triggered:
            return
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    # -- internal machinery ---------------------------------------------------
    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled:
            self.succeed(None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via the event
            self.fail(exc)
            return
        try:
            event = self._coerce(target)
        except SimulationError as exc:
            self._generator.close()
            self.fail(exc)
            return
        self._wait_for(event)

    def _coerce(self, target: Yieldable) -> Event:
        if isinstance(target, Event):
            return target
        if isinstance(target, (int, float)):
            return self.sim.timeout(float(target))
        raise SimulationError(
            f"process {self.name!r} yielded {target!r}; expected an Event or a delay"
        )

    def _wait_for(self, event: Event) -> None:
        self._waiting_on = event
        event.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if event is not self._waiting_on:
            # A stale callback from an event we no longer wait on (e.g. after
            # an interrupt); ignore it.
            return
        if event.exception is not None:
            self._resume(None, event.exception)
        else:
            self._resume(event.value, None)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


def run_process(sim: Simulator, generator: Generator[Yieldable, Any, Any], name: str = "") -> Process:
    """Start ``generator`` as a process on ``sim`` and return its handle."""
    return Process(sim, generator, name)
