"""Statistics collectors used across the simulated system.

The collectors are intentionally simple and allocation-light: experiments
record millions of samples (per-request latencies, queue lengths over time),
so the structures keep running aggregates and, when percentiles are needed,
a bounded reservoir sample.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SummaryStats",
    "ReservoirSample",
    "LatencyRecorder",
    "TimeWeightedValue",
    "Counter",
    "percentile",
]


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already *sorted* list."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


@dataclass
class SummaryStats:
    """Running count/mean/variance/min/max (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    total: float = 0.0

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "SummaryStats") -> "SummaryStats":
        """Return the summary of both collections combined."""
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        merged = SummaryStats()
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.count / merged.count
        merged._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / merged.count
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view, convenient for report rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "total": self.total,
        }


class ReservoirSample:
    """Fixed-size uniform reservoir sample (Vitter's algorithm R).

    Thread-safe: the serving gateway records samples from concurrent
    callbacks while its ``/stats`` endpoint reads percentiles, so every
    mutation and read holds an internal lock.  Single-threaded simulation
    callers pay one uncontended acquire per batch via :meth:`add_many`.
    """

    def __init__(self, capacity: int = 10_000, seed: int = 17) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._seen = 0
        self._values: List[float] = []
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks do not pickle (reservoirs cross the sweep process pool);
        # the receiving process gets a fresh one.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _add(self, value: float) -> None:
        """Offer one sample; caller holds the lock."""
        self._seen += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            # One C-level random() scaled to the stream length replaces
            # randrange()'s Python-level _randbelow chain; the float
            # quantisation bias is immaterial for streams far below 2**53.
            index = int(self._rng.random() * self._seen)
            if index < self.capacity:
                self._values[index] = value

    def add(self, value: float) -> None:
        """Offer one sample to the reservoir."""
        with self._lock:
            self._add(value)

    def add_many(self, values: Sequence[float]) -> None:
        """Offer many samples; state-identical to looping :meth:`add`.

        While the reservoir has room for the whole batch the samples are
        appended wholesale (no RNG draws happen below capacity, so the RNG
        state is untouched either way).  Once full, an inlined Algorithm R
        loop with hoisted locals makes the exact same draw sequence as
        per-sample :meth:`_add` calls without the per-sample method
        dispatch -- this is the batch lookup path's per-reply sink.
        """
        values = values if isinstance(values, (list, tuple)) else list(values)
        with self._lock:
            retained = self._values
            free = self.capacity - len(retained)
            if len(values) <= free:
                retained.extend(values)
                self._seen += len(values)
                return
            if free > 0:
                retained.extend(values[:free])
                self._seen += free
                values = values[free:]
            seen = self._seen
            capacity = self.capacity
            rand = self._rng.random
            for value in values:
                seen += 1
                index = int(rand() * seen)
                if index < capacity:
                    retained[index] = value
            self._seen = seen

    @property
    def seen(self) -> int:
        """Total samples offered (not just retained)."""
        return self._seen

    def values(self) -> List[float]:
        """Copy of retained samples (unsorted)."""
        with self._lock:
            return list(self._values)

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from the reservoir."""
        with self._lock:
            return percentile(sorted(self._values), fraction)


class LatencyRecorder:
    """Latency statistics: running summary plus a reservoir for percentiles.

    Thread-safe: a lock guards the running summary (the reservoir carries
    its own), so gateway worker tasks can record while a reporter thread
    reads :meth:`as_dict` mid-run without torn Welford state.
    """

    def __init__(self, name: str = "latency", reservoir_size: int = 10_000) -> None:
        self.name = name
        self.summary = SummaryStats()
        self.reservoir = ReservoirSample(reservoir_size)
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Record a latency sample (seconds)."""
        with self._lock:
            self.summary.add(value)
        self.reservoir.add(value)

    def record_many(self, values: Sequence[float]) -> None:
        """Record many samples; state-identical to looping :meth:`record`.

        The Welford recurrence runs per value in input order with the same
        operation sequence as :meth:`SummaryStats.add` (bit-identical
        floats), hoisted out of per-call attribute access; the reservoir
        goes through :meth:`ReservoirSample.add_many`.  This is the batch
        lookup path's per-reply latency sink.
        """
        # Materialise one-shot iterables first: the Welford loop below would
        # otherwise exhaust a generator before the reservoir sees it.
        values = values if isinstance(values, (list, tuple)) else list(values)
        with self._lock:
            summary = self.summary
            count = summary.count
            total = summary.total
            mean = summary.mean
            m2 = summary._m2
            minimum = summary.minimum
            maximum = summary.maximum
            for value in values:
                count += 1
                total += value
                delta = value - mean
                mean += delta / count
                m2 += delta * (value - mean)
                if value < minimum:
                    minimum = value
                if value > maximum:
                    maximum = value
            summary.count = count
            summary.total = total
            summary.mean = mean
            summary._m2 = m2
            summary.minimum = minimum
            summary.maximum = maximum
        self.reservoir.add_many(values)

    @property
    def count(self) -> int:
        return self.summary.count

    @property
    def mean(self) -> float:
        return self.summary.mean

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (e.g. ``0.99``) of recorded latencies."""
        return self.reservoir.percentile(fraction)

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            result = self.summary.as_dict()
        # One snapshot of the reservoir serves all three percentiles.  The
        # extra emptiness check covers a mid-run read racing between the
        # summary and reservoir updates of a concurrent record().
        sample = sorted(self.reservoir.values()) if result["count"] else []
        if sample:
            result.update(
                p50=percentile(sample, 0.50),
                p95=percentile(sample, 0.95),
                p99=percentile(sample, 0.99),
            )
        return result


class TimeWeightedValue:
    """Tracks the time-weighted average of a piecewise-constant value.

    Used for queue lengths, cache occupancy, and device utilisation: call
    :meth:`update` whenever the value changes, then :meth:`average` at the end
    of the run.
    """

    def __init__(self, now: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = now
        self._value = initial
        self._area = 0.0
        self._max = initial

    def update(self, now: float, value: float) -> None:
        """Record that the tracked quantity becomes ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time must be monotonically non-decreasing")
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value
        if value > self._max:
            self._max = value

    @property
    def current(self) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        return self._max

    def average(self, now: Optional[float] = None) -> float:
        """Time-weighted mean up to ``now`` (default: last update time)."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("time must be monotonically non-decreasing")
        area = self._area + self._value * (end - self._last_time)
        return area / end if end > 0 else self._value


@dataclass
class Counter:
    """A named group of monotonically increasing counters."""

    values: Dict[str, int] = field(default_factory=dict)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.values)

    def merge(self, other: "Counter") -> "Counter":
        """Return a new counter with both sets of counts summed."""
        merged = Counter(dict(self.values))
        for name, value in other.values.items():
            merged.increment(name, value)
        return merged


def histogram(values: Iterable[float], bins: int = 10) -> List[Tuple[float, float, int]]:
    """Equal-width histogram; returns ``(low, high, count)`` per bin."""
    data = sorted(values)
    if not data:
        return []
    if bins <= 0:
        raise ValueError("bins must be positive")
    low, high = data[0], data[-1]
    if low == high:
        return [(low, high, len(data))]
    width = (high - low) / bins
    counts = [0] * bins
    for value in data:
        index = min(int((value - low) / width), bins - 1)
        counts[index] += 1
    return [(low + i * width, low + (i + 1) * width, counts[i]) for i in range(bins)]
