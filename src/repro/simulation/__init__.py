"""Discrete-event simulation substrate.

This package provides the simulation kernel the rest of the repository is
built on: a simulated clock and event calendar (:mod:`.engine`), generator
based processes (:mod:`.process`), shared resources and queues
(:mod:`.resources`), reproducible random streams (:mod:`.rng`) and
statistics collectors (:mod:`.stats`).
"""

from .engine import Event, ScheduledEvent, SimulationError, Simulator, StopSimulation
from .monitor import Monitor, TimeSeries
from .process import Interrupt, Process, ProcessKilled, run_process
from .resources import Container, Resource, Store
from .rng import RandomStreams, derive_seed, exponential, weighted_choice, zipf_weights
from .stats import (
    Counter,
    LatencyRecorder,
    ReservoirSample,
    SummaryStats,
    TimeWeightedValue,
    histogram,
    percentile,
)

__all__ = [
    "Event",
    "ScheduledEvent",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Monitor",
    "TimeSeries",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "run_process",
    "Container",
    "Resource",
    "Store",
    "RandomStreams",
    "derive_seed",
    "exponential",
    "weighted_choice",
    "zipf_weights",
    "Counter",
    "LatencyRecorder",
    "ReservoirSample",
    "SummaryStats",
    "TimeWeightedValue",
    "histogram",
    "percentile",
]
