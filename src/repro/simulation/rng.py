"""Deterministic random-number streams for reproducible experiments.

Every stochastic component (workload generators, arrival processes, device
jitter) draws from its own named stream derived from a single experiment
seed, so adding a new random consumer does not perturb the draws seen by
existing ones -- a standard requirement for comparable simulation runs.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Sequence, TypeVar

__all__ = ["RandomStreams", "derive_seed", "exponential", "zipf_weights"]

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 so that child seeds are uncorrelated even for adjacent
    master seeds or similar names.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of independent, named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child family whose master seed is derived from ``name``."""
        return RandomStreams(derive_seed(self.master_seed, name))

    def reset(self) -> None:
        """Re-seed every existing stream back to its initial state."""
        for name in list(self._streams):
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))


def exponential(rng: random.Random, mean: float) -> float:
    """Sample an exponential with the given mean (guarding mean == 0)."""
    if mean <= 0:
        return 0.0
    return rng.expovariate(1.0 / mean)


def zipf_weights(n: int, skew: float = 1.0) -> List[float]:
    """Return normalised Zipf(``skew``) popularity weights for ``n`` items."""
    if n <= 0:
        return []
    raw = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to ``weights`` (need not be normalised)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        return rng.choice(list(items))
    target = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if target <= cumulative:
            return item
    return items[-1]


def shuffled(rng: random.Random, items: Iterable[T]) -> List[T]:
    """Return a new list with the items shuffled using ``rng``."""
    result = list(items)
    rng.shuffle(result)
    return result
