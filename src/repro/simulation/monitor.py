"""Periodic time-series monitoring of simulated components.

Experiments sometimes need more than end-of-run aggregates -- e.g. the queue
build-up at a saturated hash node over time, or cache occupancy as a backup
stream warms up.  :class:`Monitor` samples arbitrary probe callables at a
fixed simulated-time interval and stores ``(time, value)`` series that the
analysis layer can render or post-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .engine import Simulator

__all__ = ["TimeSeries", "Monitor"]


@dataclass
class TimeSeries:
    """A named series of ``(simulated time, value)`` samples."""

    name: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def __len__(self) -> int:
        return len(self.samples)

    def times(self) -> List[float]:
        return [time for time, _value in self.samples]

    def values(self) -> List[float]:
        return [value for _time, value in self.samples]

    def latest(self) -> Optional[float]:
        """Most recent sampled value (``None`` before the first sample)."""
        return self.samples[-1][1] if self.samples else None

    def maximum(self) -> float:
        return max(self.values()) if self.samples else 0.0

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values) if values else 0.0


class Monitor:
    """Samples registered probes every ``interval`` seconds of simulated time.

    Probes are zero-argument callables returning a number; they are evaluated
    on the simulator's clock, so sampling has no effect on simulated time.
    The monitor stops automatically when the calendar drains (no further
    samples are scheduled once nothing else is pending) or when :meth:`stop`
    is called.
    """

    def __init__(self, sim: Simulator, interval: float = 0.01) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.series: Dict[str, TimeSeries] = {}
        self._probes: Dict[str, Callable[[], float]] = {}
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------ probes
    def add_probe(self, name: str, probe: Callable[[], float]) -> TimeSeries:
        """Register ``probe`` under ``name``; returns its (empty) series."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = probe
        self.series[name] = TimeSeries(name=name)
        return self.series[name]

    def probe_names(self) -> List[str]:
        return sorted(self._probes)

    # ------------------------------------------------------------------ control
    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._stopped = False
        self._sample_and_reschedule()

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._stopped = True
        self._running = False

    def _sample_and_reschedule(self) -> None:
        if self._stopped:
            return
        self.sample_now()
        # Only keep sampling while other work remains; otherwise the monitor
        # would keep the simulation alive forever.
        if self.sim.pending_events > 0:
            self.sim.schedule(self.interval, self._sample_and_reschedule)
        else:
            self._running = False

    def sample_now(self) -> Dict[str, float]:
        """Take one sample of every probe immediately; returns the values."""
        values: Dict[str, float] = {}
        now = self.sim.now
        for name, probe in self._probes.items():
            value = float(probe())
            self.series[name].add(now, value)
            values[name] = value
        return values
