"""Discrete-event simulation kernel.

The engine provides a simulated clock and an event calendar.  Higher level
abstractions (processes, resources, statistics) are layered on top in the
sibling modules.  The design follows the classic event-calendar model: an
event is a callback scheduled at an absolute simulated time; the simulator
pops events in time order and invokes them, advancing the clock.

The kernel is deliberately free of any domain knowledge -- it is reused by
every simulated component in the repository (storage devices, network links,
hash nodes, clients).

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
>>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[1.0, 5.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "ScheduledEvent",
    "Simulator",
    "SimulationError",
    "StopSimulation",
]


class SimulationError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly."""


class StopSimulation(Exception):
    """Raised by a callback to stop the simulation immediately."""


class ScheduledEvent:
    """A callback scheduled on the event calendar.

    The calendar heap orders entries by ``(time, priority, sequence)`` so
    events pop in simulated-time order with FIFO tie-breaking for events
    scheduled at the same instant.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "args", "cancelled", "sim", "_in_calendar")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., Any],
        args: tuple = (),
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim
        self._in_calendar = False

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives.

        Cancelling is idempotent and O(1): the entry stays in the calendar
        heap (removing from a heap middle is O(n)) but is counted out of
        ``Simulator.pending_events`` immediately and skipped -- or compacted
        away wholesale -- before it would fire.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None and self._in_calendar:
            sim._pending_count -= 1
            sim._stale_count += 1
            sim._maybe_compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScheduledEvent t={self.time} cb={getattr(self.callback, '__name__', self.callback)!r}>"


class Event:
    """A one-shot synchronisation point that callbacks/processes can wait on.

    An :class:`Event` starts *pending*; it may later *succeed* with a value or
    *fail* with an exception.  Callbacks registered before triggering run when
    the event triggers; callbacks registered afterwards run immediately.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_exception", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None

    # -- inspection ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has already succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if the event failed or is pending."""
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or ``None``."""
        return self._exception

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self._dispatch()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers (or immediately if done).

        Callbacks run synchronously at the simulated instant the event
        triggers; they must not block (they may schedule further events).
        """
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._triggered:
            state = "ok" if self._exception is None else "failed"
        return f"<Event {self.name!r} {state}>"


class Simulator:
    """The discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.
    seed:
        Master seed for this run's :class:`~repro.simulation.rng.RandomStreams`
        family (exposed as :attr:`streams`).  Stochastic components attached
        to the simulator draw from named child streams, so two simulators
        built with the same seed replay identical randomness regardless of
        how many consumers each one has.
    """

    #: Compaction trigger: once at least this many cancelled entries linger in
    #: the calendar *and* they outnumber the live ones, the heap is rebuilt.
    COMPACTION_MIN_STALE = 512

    def __init__(self, start_time: float = 0.0, seed: int = 0) -> None:
        from .rng import RandomStreams  # local import: rng has no engine dependency

        self.seed = int(seed)
        self.streams = RandomStreams(self.seed)
        self._now = float(start_time)
        # The calendar stores (time, priority, sequence, ScheduledEvent)
        # tuples so heap comparisons are cheap tuple comparisons.
        self._calendar: list[tuple[float, int, int, ScheduledEvent]] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        # Live bookkeeping so pending_events is O(1) instead of an O(n) scan:
        # _pending_count counts non-cancelled calendar entries, _stale_count
        # the cancelled ones still occupying heap slots.
        self._pending_count = 0
        self._stale_count = 0

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of calendar events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of (non-cancelled) events still on the calendar.

        Maintained as a live counter (monitors poll this every tick), so it
        is O(1) rather than a scan of the calendar.
        """
        return self._pending_count

    # -- scheduling ---------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`ScheduledEvent`, which may be cancelled before it
        fires.  Negative delays are rejected: simulated time is monotonic.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        sequence = next(self._sequence)
        entry = ScheduledEvent(
            time=self._now + delay,
            priority=priority,
            sequence=sequence,
            callback=callback,
            args=args,
            sim=self,
        )
        entry._in_calendar = True
        heapq.heappush(self._calendar, (entry.time, priority, sequence, entry))
        self._pending_count += 1
        return entry

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        return self.schedule(time - self._now, callback, *args, priority=priority)

    def event(self, name: str = "") -> Event:
        """Create a new pending :class:`Event` bound to this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        """Return an event that succeeds ``delay`` seconds from now."""
        event = self.event(name)
        self.schedule(delay, event.succeed, value)
        return event

    # -- execution ----------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Rebuild the calendar heap when cancelled entries dominate it.

        Keeps heap operations O(log live) under cancel-heavy workloads
        (timeout races cancel most of what they schedule).  The rebuild is
        in place (slice assignment) because ``run`` holds a local alias to
        the calendar list.
        """
        calendar = self._calendar
        if self._stale_count < self.COMPACTION_MIN_STALE or self._stale_count * 2 < len(calendar):
            return
        live = [item for item in calendar if not item[3].cancelled]
        for item in calendar:
            if item[3].cancelled:
                item[3]._in_calendar = False
        calendar[:] = live
        heapq.heapify(calendar)
        self._stale_count = 0

    def step(self) -> bool:
        """Execute the next calendar event.  Returns ``False`` if none left."""
        calendar = self._calendar
        while calendar:
            time, _priority, _sequence, entry = heapq.heappop(calendar)
            entry._in_calendar = False
            if entry.cancelled:
                self._stale_count -= 1
                continue
            self._pending_count -= 1
            if time < self._now:
                raise SimulationError("event calendar corrupted: time went backwards")
            self._now = time
            self._events_processed += 1
            entry.callback(*entry.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would advance past this absolute time.  The
            clock is left at ``until`` if provided.
        max_events:
            Safety valve: stop after this many events.

        Returns the simulated time at which the run stopped.

        This is the simulation's hottest loop (a figure-5 run pops millions
        of events), so the pop/dispatch sequence from :meth:`step` is
        inlined here with the heap and ``heappop`` bound to locals.
        Callbacks may mutate the calendar, but always through ``schedule`` /
        ``cancel`` / ``_maybe_compact``, all of which keep the same list
        object -- the local alias stays valid.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        executed = 0
        calendar = self._calendar
        heappop = heapq.heappop
        try:
            while calendar:
                time, _priority, _sequence, entry = calendar[0]
                if entry.cancelled:
                    heappop(calendar)
                    entry._in_calendar = False
                    self._stale_count -= 1
                    continue
                if until is not None and time > until:
                    self._now = max(self._now, until)
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(calendar)
                entry._in_calendar = False
                self._pending_count -= 1
                if time < self._now:
                    raise SimulationError("event calendar corrupted: time went backwards")
                self._now = time
                self._events_processed += 1
                entry.callback(*entry.args)
                executed += 1
        except StopSimulation:
            pass
        finally:
            self._running = False
        if until is not None and not calendar:
            self._now = max(self._now, until)
        return self._now

    def run_until_empty(self, max_events: int = 50_000_000) -> float:
        """Run until the calendar drains (with a defensive event cap)."""
        return self.run(max_events=max_events)

    # -- composition helpers -------------------------------------------------
    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """Return an event that succeeds when every input event succeeds.

        The combined value is the list of individual values in input order.
        If any input fails, the combined event fails with that exception.
        """
        events = list(events)
        combined = self.event(name)
        if not events:
            combined.succeed([])
            return combined
        remaining = {"count": len(events)}

        def _on_trigger(_event: Event) -> None:
            if combined.triggered:
                return
            if _event.exception is not None:
                combined.fail(_event.exception)
                return
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.succeed([e.value for e in events])

        for event in events:
            event.add_callback(_on_trigger)
        return combined

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """Return an event that succeeds when the first input event triggers."""
        events = list(events)
        combined = self.event(name)
        if not events:
            combined.succeed(None)
            return combined

        def _on_trigger(_event: Event) -> None:
            if combined.triggered:
                return
            if _event.exception is not None:
                combined.fail(_event.exception)
            else:
                combined.succeed(_event.value)

        for event in events:
            event.add_callback(_on_trigger)
        return combined

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.6f} pending={self.pending_events}>"
