"""Command-line interface for the SHHC reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli presets
    python -m repro.cli run figure5 --set scale=0.0005 --set batch_sizes=1,128
    python -m repro.cli run failover --set replication_factor=2 --json result.json
    python -m repro.cli sweep failover --axis replication_factor=1,2,3 \
                                       --axis outage_density=0.1,0.3 --json sweep.json
    python -m repro.cli sweep elasticity --axis replication_factor=1,2,3 \
                                         --axis churn_events=2,6 --json churn.json
    python -m repro.cli trace --workload mail-server --scale 0.001 --output trace.txt
    python -m repro.cli backup  --root ./mydata --catalog catalog.json --store ./chunkstore
    python -m repro.cli restore --catalog catalog.json --store ./chunkstore \
                                --snapshot snap-1 --target ./restored

``run`` executes one scenario preset with ``--set key=value`` overrides;
``sweep`` expands ``--axis key=v1,v2,...`` into a grid of scenarios and
emits a machine-readable JSON grid of the uniform metrics.  The legacy
``experiment`` subcommand is kept as a thin alias over the same presets.
``backup``/``restore`` exercise the library as a real file-level
deduplicating archiver backed by an on-disk chunk store.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .core.cluster import SHHCCluster
from .core.config import ClusterConfig, HashNodeConfig
from .dedup.archive import DirectoryArchiver
from .dedup.chunking import ContentDefinedChunker
from .scenarios import (
    ScenarioSpec,
    SpecError,
    SweepGrid,
    available_presets,
    get_preset,
    parse_setting,
    run_scenario,
    run_sweep,
    spec_for,
)
from .storage.hashstore import FileHashStore
from .storage.object_store import CloudObjectStore
from .workloads.profiles import profile_by_name
from .workloads.traces import TraceGenerator

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- scenarios
def _spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    """Build the scenario spec from ``--spec``/``--set`` CLI arguments."""
    overrides = dict(parse_setting(setting) for setting in (args.set or []))
    if getattr(args, "spec", None):
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
        if args.preset and args.preset != spec.preset:
            raise SpecError(
                f"--spec file is for preset {spec.preset!r} but {args.preset!r} was requested"
            )
        from .scenarios import apply_overrides

        return apply_overrides(spec, overrides)
    if not args.preset:
        raise SpecError("a preset name (or --spec FILE) is required; see `repro presets`")
    return spec_for(args.preset, **overrides)


def _emit_json(payload_owner, path: Optional[str]) -> None:
    if not path:
        return
    if path == "-":
        print(payload_owner.to_json())
    else:
        payload_owner.write_json(path)
        print(f"wrote {path}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
        result = run_scenario(spec)
    except (SpecError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(result.render())
    _emit_json(result, args.json)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
        grid = SweepGrid.parse(args.axis, mode="zip" if args.zip else "cartesian")
        total = len(grid)
        done = {"count": 0}

        def _progress(point, run) -> None:
            if args.quiet or run is None:
                return
            done["count"] += 1
            label = ", ".join(f"{key}={value}" for key, value in point.items())
            status = "ok" if run.ok else f"error: {run.error}"
            print(f"[{done['count']}/{total}] {label}: {status}", file=sys.stderr)

        sweep = run_sweep(
            spec, grid, strict=args.strict, progress=_progress, workers=args.workers
        )
    except (SpecError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(sweep.render())
    _emit_json(sweep, args.json)
    # Success if at least one point ran; a fully failed grid is an error.
    return 0 if any(run.ok for run in sweep.runs) else 1


def _cmd_presets(args: argparse.Namespace) -> int:
    for name in available_presets():
        preset = get_preset(name)
        print(f"{name}: {preset.description}")
        if args.verbose:
            print(f"    keys: {', '.join(preset.valid_keys())}")
    return 0


# --------------------------------------------------------------------------- experiments
def _cmd_experiment(args: argparse.Namespace) -> int:
    """Legacy alias: each experiment name is a preset on the scenario engine."""
    name = args.name
    overrides = {
        "figure1": {"requests": args.requests},
        "figure5": {"scale": args.scale},
        "figure6": {"scale": args.scale, "num_nodes": args.nodes},
        "table1": {"scale": args.scale},
        "ablations": {"scale": args.scale},
        "failover": {
            "scale": args.scale,
            "num_nodes": args.nodes,
            "replication_factor": args.replication,
            "virtual_nodes": args.virtual_nodes,
        },
    }[name]
    try:
        result = run_scenario(name, **overrides)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.render())
    return 0


# --------------------------------------------------------------------------- serving
def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the real serving stack: gateway + one worker process per node."""
    import asyncio
    import signal

    from .serving import ServeConfig, ServiceGateway, ServingError

    config = ServeConfig(
        host=args.host,
        port=args.port,
        num_nodes=args.nodes,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
        max_queue=args.max_queue,
        max_inflight=args.max_inflight,
        report_interval=args.report_interval,
        codec=args.codec,
    )

    async def _serve() -> None:
        gateway = ServiceGateway(config, verbose=not args.quiet)
        await gateway.start()
        # Machine-readable line for scripts that need the bound port.
        print(f"listening on {config.host}:{gateway.port}", flush=True)
        loop = asyncio.get_event_loop()
        stop: asyncio.Future = loop.create_future()

        def _request_stop() -> None:
            if not stop.done():
                stop.set_result(None)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop
        await gateway.close()

    try:
        asyncio.run(_serve())
    except ServingError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - signal handler normally wins
        pass
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive a load test against a running `repro serve` gateway."""
    from .serving import LoadtestConfig, run_loadtest

    config = LoadtestConfig(
        host=args.host,
        port=args.port,
        clients=args.clients,
        pipeline=args.pipeline,
        batch_size=args.batch_size,
        fingerprints=args.fingerprints,
        duplicate_fraction=args.duplicate_fraction,
        arrival_rate_fps=args.rate,
        seed=args.seed,
        codec=args.codec,
        max_retries=args.max_retries,
        kill_node=args.kill_node,
        kill_after_fraction=args.kill_after,
        burst_batches=args.burst_batches,
        audit=not args.no_audit,
        report_path=args.json,
        verbose=not args.quiet,
    )
    try:
        report = run_loadtest(config)
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    if not args.quiet:
        latency = report.latency_us
        print(
            f"offered {report.offered_fingerprints:,} fingerprints "
            f"({report.offered_batches:,} batches); "
            f"acked {report.acked_fingerprints:,} in {report.wall_seconds:.2f}s "
            f"= {report.throughput_fps:,.0f} fp/s"
        )
        print(
            f"latency p50={latency.get('p50', 0.0):,.0f}us "
            f"p99={latency.get('p99', 0.0):,.0f}us; "
            f"sheds={report.sheds} retries={report.retries} "
            f"unavailable={report.unavailable} failed={report.failed_batches}"
        )
        print(
            f"kills={report.kills_sent} worker_restarts={report.worker_restarts} "
            f"audit_checked={report.audit_checked} "
            f"lost_acknowledged={report.lost_acknowledged}"
        )
    if report.lost_acknowledged:
        print("error: acknowledged fingerprints were lost", file=sys.stderr)
        return 1
    if report.acked_fingerprints == 0:
        print("error: nothing was acknowledged", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------- traces
def _cmd_trace(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.workload).scaled(args.scale)
    generator = TraceGenerator(profile, seed=args.seed)
    destination = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        count = 0
        for fingerprint in generator.generate():
            destination.write(fingerprint.hex + "\n")
            count += 1
        print(
            f"generated {count:,} fingerprints for {profile.name} "
            f"(redundancy target {profile.redundancy:.0%})",
            file=sys.stderr,
        )
    finally:
        if destination is not sys.stdout:
            destination.close()
    return 0


# --------------------------------------------------------------------------- backup / restore
class _PersistentObjectStore(CloudObjectStore):
    """Object store that keeps chunk payloads in an on-disk FileHashStore."""

    def __init__(self, directory: str) -> None:
        super().__init__()
        os.makedirs(directory, exist_ok=True)
        self._backing = FileHashStore(os.path.join(directory, "chunks.log"))
        # Preload previously stored chunks so dedup carries across runs.
        for key, value in self._backing.items():
            super().put(key, value)

    def put(self, key: bytes, data: bytes) -> bool:
        is_new = super().put(key, data)
        if is_new:
            self._backing.put(key, data)
        return is_new

    def close(self) -> None:
        self._backing.close()


def _catalog_chunking(catalog_path: str) -> dict:
    """Chunker parameters an existing catalogue's chunk store was built with.

    Backups must keep chunking the way the catalogue's chunk store was
    built -- same engine *and* same size bounds -- or nothing deduplicates;
    flags not given explicitly adopt the recorded parameters over the
    built-in defaults.  A readable catalogue with *no* chunking record
    predates engine selection, when the only CDC implementation was the
    Rabin one, so legacy catalogues resolve to the rabin engine.  Returns
    ``{}`` when there is no (readable) catalogue.

    The catalogue is parsed again by :class:`DirectoryArchiver` right after;
    one redundant parse of a per-user snapshot index per one-shot CLI
    invocation is accepted to keep the archiver API free of preloaded-state
    plumbing.
    """
    try:
        with open(catalog_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    recorded = payload.get("chunking")
    if recorded is None:
        return {"engine": "rabin"}
    return recorded if isinstance(recorded, dict) else {}


def _make_archiver(args: argparse.Namespace) -> DirectoryArchiver:
    cluster = SHHCCluster(
        ClusterConfig(
            num_nodes=args.nodes,
            node=HashNodeConfig(ram_cache_entries=200_000, bloom_expected_items=2_000_000),
        )
    )
    store = _PersistentObjectStore(args.store)
    recorded = _catalog_chunking(args.catalog)
    engine = args.chunk_engine or recorded.get("engine")
    if engine not in ("gear", "rabin"):
        engine = "gear"
    # An explicit --chunk-size is passed through untouched so an invalid
    # value fails loudly (ContentDefinedChunker's own validation); only the
    # *recorded* size is sanity-checked before adoption, since a foreign or
    # corrupt catalogue must not crash the default path.
    chunk_size = args.chunk_size
    if chunk_size is None:
        recorded_size = recorded.get("average_size")
        if isinstance(recorded_size, int) and recorded_size >= 64 and not recorded_size & (recorded_size - 1):
            chunk_size = recorded_size
        else:
            chunk_size = 8192
    return DirectoryArchiver(
        index=cluster,
        object_store=store,
        chunker=ContentDefinedChunker(average_size=chunk_size, engine=engine),
        catalog_path=args.catalog,
    )


def _cmd_backup(args: argparse.Namespace) -> int:
    archiver = _make_archiver(args)
    snapshot_id = args.snapshot or f"snap-{len(archiver.snapshots) + 1}"
    stats = archiver.backup_directory(args.root, snapshot_id)
    print(f"snapshot {snapshot_id}: {stats.files_scanned} files, "
          f"{stats.chunks_seen} chunks, {stats.chunks_uploaded} uploaded "
          f"({stats.dedup_savings:.0%} deduplicated)")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    archiver = _make_archiver(args)
    if args.snapshot not in archiver.snapshots:
        print(f"error: unknown snapshot {args.snapshot!r}; "
              f"available: {archiver.list_snapshots()}", file=sys.stderr)
        return 1
    written = archiver.restore_directory(args.snapshot, args.target)
    print(f"restored {written} files from {args.snapshot} into {args.target}")
    return 0


def _cmd_snapshots(args: argparse.Namespace) -> int:
    archiver = _make_archiver(args)
    if not archiver.snapshots:
        print("no snapshots")
        return 0
    for snapshot_id in archiver.list_snapshots():
        snapshot = archiver.snapshots[snapshot_id]
        print(f"{snapshot_id}: {snapshot.file_count} files, {snapshot.logical_bytes:,} bytes")
    return 0


# --------------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SHHC reproduction: experiments, trace generation and file backup.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_scenario_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("preset", nargs="?", default=None,
                         help="scenario preset name (see `repro presets`)")
        sub.add_argument("--spec", default=None,
                         help="load the base spec from a JSON file instead")
        sub.add_argument("--set", action="append", metavar="KEY=VALUE", default=[],
                         help="override one spec key (repeatable); commas make lists")
        sub.add_argument("--json", default=None, metavar="PATH",
                         help="write the machine-readable result JSON here ('-' = stdout)")
        sub.add_argument("--quiet", action="store_true",
                         help="suppress the rendered table on stdout")

    run = subparsers.add_parser("run", help="run one scenario preset")
    add_scenario_arguments(run)
    run.set_defaults(handler=_cmd_run)

    sweep = subparsers.add_parser(
        "sweep", help="run a preset over a grid of spec values"
    )
    add_scenario_arguments(sweep)
    sweep.add_argument("--axis", action="append", metavar="KEY=V1,V2,...", default=[],
                       required=True, help="one sweep axis (repeatable)")
    sweep.add_argument("--zip", action="store_true",
                       help="walk the axes in lockstep instead of the cartesian product")
    sweep.add_argument("--strict", action="store_true",
                       help="abort the sweep on the first failing point")
    sweep.add_argument("--workers", type=int, default=1, metavar="N",
                       help="run grid points on a process pool of N workers; "
                            "results are byte-identical to a sequential run "
                            "(every point is independently seeded)")
    sweep.set_defaults(handler=_cmd_sweep)

    presets = subparsers.add_parser("presets", help="list scenario presets")
    presets.add_argument("--verbose", "-v", action="store_true",
                         help="also list each preset's accepted spec keys")
    presets.set_defaults(handler=_cmd_presets)

    experiment = subparsers.add_parser(
        "experiment",
        help="run a paper experiment (legacy alias for `run`)",
    )
    experiment.add_argument(
        "name", choices=["figure1", "figure5", "figure6", "table1", "ablations", "failover"]
    )
    experiment.add_argument("--requests", type=int, default=6_000, help="figure1 request count")
    experiment.add_argument("--scale", type=float, default=0.002, help="workload scale factor")
    experiment.add_argument("--nodes", type=int, default=4, help="cluster size (figure6, failover)")
    experiment.add_argument(
        "--replication", type=int, default=2, help="replication factor (failover)"
    )
    experiment.add_argument(
        "--virtual-nodes", type=int, default=64,
        help="consistent-hash tokens per node, 0 = range partitioner (failover)",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    serve = subparsers.add_parser(
        "serve", help="run the real serving stack (gateway + worker processes)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411,
                       help="client port (0 = pick an ephemeral port)")
    serve.add_argument("--nodes", type=int, default=4, help="worker processes")
    serve.add_argument("--data-dir", default=None,
                       help="persistence root (one subdirectory per node); "
                            "omit for in-memory nodes")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync container/WAL appends (power-loss durability)")
    serve.add_argument("--snapshot-every", type=int, default=100_000,
                       help="records between automatic bloom+store snapshots (0 = off)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="queued batches per worker before admission sheds")
    serve.add_argument("--max-inflight", type=int, default=512,
                       help="global in-flight batch cap")
    serve.add_argument("--report-interval", type=float, default=2.0,
                       help="seconds between console stats lines (0 = off)")
    serve.add_argument("--codec", default="json", help="wire codec (json, msgpack, auto)")
    serve.add_argument("--quiet", action="store_true")
    serve.set_defaults(handler=_cmd_serve)

    loadtest = subparsers.add_parser(
        "loadtest", help="drive concurrent load at a running `repro serve`"
    )
    loadtest.add_argument("--host", default="127.0.0.1")
    loadtest.add_argument("--port", type=int, default=7411)
    loadtest.add_argument("--clients", type=int, default=32,
                          help="client connections")
    loadtest.add_argument("--pipeline", type=int, default=4,
                          help="in-flight batches per client (closed loop)")
    loadtest.add_argument("--batch-size", type=int, default=256)
    loadtest.add_argument("--fingerprints", type=int, default=200_000,
                          help="total fingerprints to offer")
    loadtest.add_argument("--duplicate-fraction", type=float, default=0.25)
    loadtest.add_argument("--rate", type=float, default=0.0,
                          help="open-loop arrival rate in fp/s (0 = closed loop)")
    loadtest.add_argument("--seed", type=int, default=17)
    loadtest.add_argument("--codec", default="json")
    loadtest.add_argument("--max-retries", type=int, default=8)
    loadtest.add_argument("--kill-node", default=None, metavar="NODE",
                          help="SIGKILL this worker mid-run (e.g. node1)")
    loadtest.add_argument("--kill-after", type=float, default=0.25,
                          help="fraction of fingerprints acked before the kill")
    loadtest.add_argument("--burst-batches", type=int, default=0,
                          help="extra un-retried batches fired at the halfway "
                               "point to provoke sheds")
    loadtest.add_argument("--no-audit", action="store_true",
                          help="skip the post-run lost-acknowledgement audit")
    loadtest.add_argument("--json", default=None, metavar="PATH",
                          help="write the report JSON here")
    loadtest.add_argument("--quiet", action="store_true")
    loadtest.set_defaults(handler=_cmd_loadtest)

    trace = subparsers.add_parser("trace", help="generate a synthetic fingerprint trace")
    trace.add_argument("--workload", default="web-server",
                       choices=["web-server", "home-dir", "mail-server", "time-machine"])
    trace.add_argument("--scale", type=float, default=0.001)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--output", default=None, help="file to write hex fingerprints to")
    trace.set_defaults(handler=_cmd_trace)

    def add_archive_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--catalog", required=True, help="snapshot catalogue JSON path")
        sub.add_argument("--store", required=True, help="chunk store directory")
        sub.add_argument("--nodes", type=int, default=4)
        sub.add_argument("--chunk-size", type=int, default=None,
                         help="target average chunk size in bytes; defaults to "
                              "the size recorded in the catalog, else 8192")
        sub.add_argument("--chunk-engine", choices=("gear", "rabin"), default=None,
                         help="CDC boundary engine (gear is the fast path, rabin "
                              "the reference oracle); defaults to the engine "
                              "recorded in the catalog, else gear")

    backup = subparsers.add_parser("backup", help="back up a directory tree")
    backup.add_argument("--root", required=True, help="directory to back up")
    backup.add_argument("--snapshot", default=None, help="snapshot id (default: auto)")
    add_archive_arguments(backup)
    backup.set_defaults(handler=_cmd_backup)

    restore = subparsers.add_parser("restore", help="restore a snapshot")
    restore.add_argument("--snapshot", required=True)
    restore.add_argument("--target", required=True, help="directory to restore into")
    add_archive_arguments(restore)
    restore.set_defaults(handler=_cmd_restore)

    snapshots = subparsers.add_parser("snapshots", help="list snapshots in a catalogue")
    add_archive_arguments(snapshots)
    snapshots.set_defaults(handler=_cmd_snapshots)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
