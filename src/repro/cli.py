"""Command-line interface for the SHHC reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli experiment figure1 --requests 5000
    python -m repro.cli experiment figure5 --scale 0.0005
    python -m repro.cli experiment figure6
    python -m repro.cli experiment table1
    python -m repro.cli experiment ablations
    python -m repro.cli experiment failover --replication 2 --nodes 4
    python -m repro.cli trace --workload mail-server --scale 0.001 --output trace.txt
    python -m repro.cli backup  --root ./mydata --catalog catalog.json --store ./chunkstore
    python -m repro.cli restore --catalog catalog.json --store ./chunkstore \
                                --snapshot snap-1 --target ./restored

The ``experiment`` subcommands run the same code as the benchmark harness and
print the rendered tables; ``backup``/``restore`` exercise the library as a
real file-level deduplicating archiver backed by an on-disk chunk store.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .analysis.experiments import (
    run_batch_tradeoff,
    run_failover,
    run_figure1,
    run_figure5,
    run_figure6,
    run_scaling_ablation,
    run_table1,
    run_tier_ablation,
)
from .core.cluster import SHHCCluster
from .core.config import ClusterConfig, HashNodeConfig
from .dedup.archive import DirectoryArchiver
from .dedup.chunking import ContentDefinedChunker
from .storage.hashstore import FileHashStore
from .storage.object_store import CloudObjectStore
from .workloads.profiles import profile_by_name
from .workloads.traces import TraceGenerator

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- experiments
def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "figure1":
        result = run_figure1(requests=args.requests)
        print(result.render())
    elif name == "figure5":
        result = run_figure5(scale=args.scale)
        print(result.render())
    elif name == "figure6":
        result = run_figure6(scale=args.scale, num_nodes=args.nodes)
        print(result.render())
    elif name == "table1":
        result = run_table1(scale=args.scale)
        print(result.render())
    elif name == "failover":
        try:
            result = run_failover(
                scale=args.scale,
                num_nodes=args.nodes,
                replication_factor=args.replication,
                virtual_nodes=args.virtual_nodes,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(result.render())
    elif name == "ablations":
        print(run_tier_ablation(scale=args.scale).render())
        print()
        print(run_batch_tradeoff(scale=args.scale / 10).render())
        print()
        print(run_scaling_ablation(scale=args.scale).render())
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown experiment {name!r}")
    return 0


# --------------------------------------------------------------------------- traces
def _cmd_trace(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.workload).scaled(args.scale)
    generator = TraceGenerator(profile, seed=args.seed)
    destination = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        count = 0
        for fingerprint in generator.generate():
            destination.write(fingerprint.hex + "\n")
            count += 1
        print(
            f"generated {count:,} fingerprints for {profile.name} "
            f"(redundancy target {profile.redundancy:.0%})",
            file=sys.stderr,
        )
    finally:
        if destination is not sys.stdout:
            destination.close()
    return 0


# --------------------------------------------------------------------------- backup / restore
class _PersistentObjectStore(CloudObjectStore):
    """Object store that keeps chunk payloads in an on-disk FileHashStore."""

    def __init__(self, directory: str) -> None:
        super().__init__()
        os.makedirs(directory, exist_ok=True)
        self._backing = FileHashStore(os.path.join(directory, "chunks.log"))
        # Preload previously stored chunks so dedup carries across runs.
        for key, value in self._backing.items():
            super().put(key, value)

    def put(self, key: bytes, data: bytes) -> bool:
        is_new = super().put(key, data)
        if is_new:
            self._backing.put(key, data)
        return is_new

    def close(self) -> None:
        self._backing.close()


def _catalog_chunking(catalog_path: str) -> dict:
    """Chunker parameters an existing catalogue's chunk store was built with.

    Backups must keep chunking the way the catalogue's chunk store was
    built -- same engine *and* same size bounds -- or nothing deduplicates;
    flags not given explicitly adopt the recorded parameters over the
    built-in defaults.  A readable catalogue with *no* chunking record
    predates engine selection, when the only CDC implementation was the
    Rabin one, so legacy catalogues resolve to the rabin engine.  Returns
    ``{}`` when there is no (readable) catalogue.

    The catalogue is parsed again by :class:`DirectoryArchiver` right after;
    one redundant parse of a per-user snapshot index per one-shot CLI
    invocation is accepted to keep the archiver API free of preloaded-state
    plumbing.
    """
    try:
        with open(catalog_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    recorded = payload.get("chunking")
    if recorded is None:
        return {"engine": "rabin"}
    return recorded if isinstance(recorded, dict) else {}


def _make_archiver(args: argparse.Namespace) -> DirectoryArchiver:
    cluster = SHHCCluster(
        ClusterConfig(
            num_nodes=args.nodes,
            node=HashNodeConfig(ram_cache_entries=200_000, bloom_expected_items=2_000_000),
        )
    )
    store = _PersistentObjectStore(args.store)
    recorded = _catalog_chunking(args.catalog)
    engine = args.chunk_engine or recorded.get("engine")
    if engine not in ("gear", "rabin"):
        engine = "gear"
    # An explicit --chunk-size is passed through untouched so an invalid
    # value fails loudly (ContentDefinedChunker's own validation); only the
    # *recorded* size is sanity-checked before adoption, since a foreign or
    # corrupt catalogue must not crash the default path.
    chunk_size = args.chunk_size
    if chunk_size is None:
        recorded_size = recorded.get("average_size")
        if isinstance(recorded_size, int) and recorded_size >= 64 and not recorded_size & (recorded_size - 1):
            chunk_size = recorded_size
        else:
            chunk_size = 8192
    return DirectoryArchiver(
        index=cluster,
        object_store=store,
        chunker=ContentDefinedChunker(average_size=chunk_size, engine=engine),
        catalog_path=args.catalog,
    )


def _cmd_backup(args: argparse.Namespace) -> int:
    archiver = _make_archiver(args)
    snapshot_id = args.snapshot or f"snap-{len(archiver.snapshots) + 1}"
    stats = archiver.backup_directory(args.root, snapshot_id)
    print(f"snapshot {snapshot_id}: {stats.files_scanned} files, "
          f"{stats.chunks_seen} chunks, {stats.chunks_uploaded} uploaded "
          f"({stats.dedup_savings:.0%} deduplicated)")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    archiver = _make_archiver(args)
    if args.snapshot not in archiver.snapshots:
        print(f"error: unknown snapshot {args.snapshot!r}; "
              f"available: {archiver.list_snapshots()}", file=sys.stderr)
        return 1
    written = archiver.restore_directory(args.snapshot, args.target)
    print(f"restored {written} files from {args.snapshot} into {args.target}")
    return 0


def _cmd_snapshots(args: argparse.Namespace) -> int:
    archiver = _make_archiver(args)
    if not archiver.snapshots:
        print("no snapshots")
        return 0
    for snapshot_id in archiver.list_snapshots():
        snapshot = archiver.snapshots[snapshot_id]
        print(f"{snapshot_id}: {snapshot.file_count} files, {snapshot.logical_bytes:,} bytes")
    return 0


# --------------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SHHC reproduction: experiments, trace generation and file backup.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiment = subparsers.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name", choices=["figure1", "figure5", "figure6", "table1", "ablations", "failover"]
    )
    experiment.add_argument("--requests", type=int, default=6_000, help="figure1 request count")
    experiment.add_argument("--scale", type=float, default=0.002, help="workload scale factor")
    experiment.add_argument("--nodes", type=int, default=4, help="cluster size (figure6, failover)")
    experiment.add_argument(
        "--replication", type=int, default=2, help="replication factor (failover)"
    )
    experiment.add_argument(
        "--virtual-nodes", type=int, default=64,
        help="consistent-hash tokens per node, 0 = range partitioner (failover)",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    trace = subparsers.add_parser("trace", help="generate a synthetic fingerprint trace")
    trace.add_argument("--workload", default="web-server",
                       choices=["web-server", "home-dir", "mail-server", "time-machine"])
    trace.add_argument("--scale", type=float, default=0.001)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--output", default=None, help="file to write hex fingerprints to")
    trace.set_defaults(handler=_cmd_trace)

    def add_archive_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--catalog", required=True, help="snapshot catalogue JSON path")
        sub.add_argument("--store", required=True, help="chunk store directory")
        sub.add_argument("--nodes", type=int, default=4)
        sub.add_argument("--chunk-size", type=int, default=None,
                         help="target average chunk size in bytes; defaults to "
                              "the size recorded in the catalog, else 8192")
        sub.add_argument("--chunk-engine", choices=("gear", "rabin"), default=None,
                         help="CDC boundary engine (gear is the fast path, rabin "
                              "the reference oracle); defaults to the engine "
                              "recorded in the catalog, else gear")

    backup = subparsers.add_parser("backup", help="back up a directory tree")
    backup.add_argument("--root", required=True, help="directory to back up")
    backup.add_argument("--snapshot", default=None, help="snapshot id (default: auto)")
    add_archive_arguments(backup)
    backup.set_defaults(handler=_cmd_backup)

    restore = subparsers.add_parser("restore", help="restore a snapshot")
    restore.add_argument("--snapshot", required=True)
    restore.add_argument("--target", required=True, help="directory to restore into")
    add_archive_arguments(restore)
    restore.set_defaults(handler=_cmd_restore)

    snapshots = subparsers.add_parser("snapshots", help="list snapshots in a catalogue")
    add_archive_arguments(snapshots)
    snapshots.set_defaults(handler=_cmd_snapshots)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
