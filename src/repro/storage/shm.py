"""Shared-memory byte buffers with a plain-``bytearray`` fallback.

The vectorized data plane can back its flat byte buffers (the bloom
filter's bit vector, the packed cuckoo bucket table, the parallel-sweep
trace cache) with ``multiprocessing.shared_memory`` segments so several
processes -- ``run_sweep(workers=N)`` pool workers, the serving stack's
per-node worker processes -- attach to *one* copy instead of each
rebuilding its own.  Sharing is strictly opt-in: the default everywhere
remains a private ``bytearray``, and :class:`SharedBuffer` exposes the
same buffer protocol for both backings so callers never branch.

Lifecycle rules (the part shared memory makes easy to get wrong):

* ``SharedBuffer.create`` allocates a named segment and registers it in a
  process-local registry; ``SharedBuffer.attach`` maps an existing one.
* ``close()`` unmaps the segment from this process (idempotent); a GC
  finalizer closes leaked handles so dropping the last reference never
  warns.  ``unlink()`` additionally removes the segment from the system.
* A crashed worker cannot run its own cleanup, so creators should be
  paired with :func:`cleanup_segments` in the supervising process (the
  sweep parent, the serving gateway), which unlinks every segment this
  process created plus any explicitly adopted names.  Unlinking a
  segment that is already gone is not an error.

When ``multiprocessing.shared_memory`` is unavailable (or creation fails,
e.g. ``/dev/shm`` is not writable in a locked-down container) the buffer
silently degrades to a private ``bytearray``: correctness is identical,
only the cross-process sharing is lost.
"""

from __future__ import annotations

import atexit
import weakref
from typing import Dict, Iterable, List, Optional

try:  # pragma: no cover - import probe
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - minimal builds
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "SharedBuffer",
    "shared_memory_available",
    "cleanup_segments",
    "unlink_segment",
    "created_segment_names",
    "disown_segment",
]

#: Names of segments created by this process (for crash-safe cleanup by a
#: supervisor or the atexit hook below).  Maps name -> still-registered.
_CREATED_SEGMENTS: Dict[str, bool] = {}


def shared_memory_available() -> bool:
    """Whether real cross-process segments can be allocated here."""
    return _shared_memory is not None


def _untrack(shm) -> None:
    """Stop the resource tracker from unlinking ``shm`` at process exit.

    Worker processes publish segments that must outlive them (the sweep
    trace cache, a serving node's bloom bits surviving a respawn).  The
    stdlib resource tracker would unlink those when the *creating* process
    exits; explicit supervision (``cleanup_segments`` in the parent) owns
    deletion instead.  Best-effort: a tracker that cannot be unregistered
    merely restores the default eager cleanup.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # noqa: BLE001 - cleanup must never raise
        pass


def _retrack(shm) -> None:
    """Balance :func:`_untrack` before ``shm.unlink()``.

    ``SharedMemory.unlink`` sends its own tracker unregister; without a
    matching register the tracker process logs a KeyError traceback.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # noqa: BLE001 - cleanup must never raise
        pass


class SharedBuffer:
    """A flat writable byte buffer, shared-memory backed when possible.

    Use :meth:`create` / :meth:`attach`; the constructor is internal.
    ``buf`` is a writable ``memoryview`` (or ``bytearray`` for the
    fallback backing -- both support the same indexing, slicing, and
    in-place mutation the data plane needs).  ``name`` is ``None`` for
    private buffers, which also answers "is this actually shared?".
    """

    __slots__ = ("buf", "name", "_shm", "_finalizer", "__weakref__")

    def __init__(self, buf, name: Optional[str], shm=None) -> None:
        self.buf = buf
        self.name = name
        self._shm = shm
        if shm is not None:
            # Closing on GC keeps "dropped the last reference" from leaking
            # a mapping (and from BufferError noise at interpreter exit).
            self._finalizer = weakref.finalize(self, _close_quietly, shm)
        else:
            self._finalizer = None

    # -- construction -----------------------------------------------------------
    @classmethod
    def create(cls, size: int, name: Optional[str] = None,
               shared: bool = True) -> "SharedBuffer":
        """Allocate a zeroed buffer of ``size`` bytes.

        ``shared=False`` (or an unavailable/failed shared-memory backend)
        yields a private ``bytearray`` buffer with ``name is None``.
        Raises ``FileExistsError`` when ``name`` is given and taken --
        callers racing to publish a segment catch that and :meth:`attach`.
        """
        if size < 1:
            raise ValueError("size must be >= 1")
        if shared and _shared_memory is not None:
            try:
                if name is not None:
                    shm = _shared_memory.SharedMemory(name=name, create=True, size=size)
                else:
                    shm = _shared_memory.SharedMemory(create=True, size=size)
            except FileExistsError:
                raise
            except OSError:
                return cls(bytearray(size), None)
            _CREATED_SEGMENTS[shm.name] = True
            _untrack(shm)
            view = shm.buf[:size]
            view[:] = bytes(size)  # /dev/shm hands back zero pages, but be explicit
            return cls(view, shm.name, shm)
        return cls(bytearray(size), None)

    @classmethod
    def attach(cls, name: str, size: Optional[int] = None) -> "SharedBuffer":
        """Map an existing segment by name (``FileNotFoundError`` if absent).

        ``size`` trims the view to the payload length the creator used
        (platforms may round segments up to a page).
        """
        if _shared_memory is None:
            raise FileNotFoundError(f"shared memory unavailable; cannot attach {name!r}")
        shm = _shared_memory.SharedMemory(name=name, create=False)
        _untrack(shm)
        view = shm.buf if size is None else shm.buf[:size]
        return cls(view, shm.name, shm)

    # -- lifecycle --------------------------------------------------------------
    @property
    def is_shared(self) -> bool:
        return self._shm is not None

    def __len__(self) -> int:
        return len(self.buf)

    def close(self) -> None:
        """Unmap from this process (idempotent; the segment itself survives)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self.buf = bytearray(0)  # drop the exported view before closing
            _close_quietly(shm)

    def unlink(self) -> None:
        """Remove the segment from the system (and unmap it here)."""
        name = self.name
        shm = self._shm
        self.close()
        if shm is not None and name is not None:
            _retrack(shm)
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            _CREATED_SEGMENTS.pop(name, None)


def _close_quietly(shm) -> None:
    try:
        shm.close()
    except Exception:  # noqa: BLE001 - pragma: no cover - close races are harmless
        pass


def unlink_segment(name: str) -> bool:
    """Unlink a segment by name; returns whether it existed.

    This is the crash-cleanup primitive: a supervisor that knows (or can
    derive) the names its workers publish calls this after the workers are
    gone, tolerating segments that never got created or are already gone.
    """
    if _shared_memory is None:
        return False
    try:
        shm = _shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        _CREATED_SEGMENTS.pop(name, None)
        return False
    # Attaching registered the segment with the tracker; unlink() below
    # sends the matching unregister, so no _untrack dance is needed here.
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - unlink race
        pass
    finally:
        _close_quietly(shm)
    _CREATED_SEGMENTS.pop(name, None)
    return True


def created_segment_names() -> List[str]:
    """Names of segments this process created and has not yet unlinked."""
    return [name for name, live in _CREATED_SEGMENTS.items() if live]


def cleanup_segments(extra_names: Optional[Iterable[str]] = None) -> int:
    """Unlink every segment this process created (+ any adopted names).

    Returns how many segments were actually removed.  Safe to call
    multiple times and with names that never existed -- which is exactly
    what a supervisor needs after a worker crash left segments behind.
    """
    removed = 0
    for name in list(_CREATED_SEGMENTS):
        removed += unlink_segment(name)
    for name in extra_names or ():
        removed += unlink_segment(name)
    return removed


# A process that exits normally should not leave segments behind unless a
# supervisor explicitly adopted them (workers publishing for a parent call
# _untrack + rely on the parent's cleanup_segments; they also clear the
# local registry via ``disown_segment``).
def disown_segment(name: str) -> None:
    """Hand ownership of a created segment to another process.

    After this, the local atexit sweep will not unlink it; whoever adopted
    the name (usually via :func:`cleanup_segments`'s ``extra_names``) must.
    """
    _CREATED_SEGMENTS.pop(name, None)


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    cleanup_segments()
