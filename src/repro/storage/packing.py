"""Packed-digest hash-word extraction shared by the vectorized kernels.

A 20-byte SHA-1 digest carries both Kirsch-Mitzenmacher hash words in its
own bytes (see :mod:`repro.storage.bloom`): bytes ``[0:8)`` are ``h1`` and
bytes ``[8:16)`` are the raw ``h2``.  For a *batch* of digests packed back
to back, one ``struct.unpack`` with a cached ``">QQ4x"*n`` format yields
every word pair in a single C call -- this is the primitive underneath
:class:`repro.core.digest_batch.DigestBatch` and the packed bloom/cuckoo
batch kernels.  Lives in the storage layer so both the storage structures
and the core batch object can import it without a layering cycle.
"""

from __future__ import annotations

import struct

from .npy import np as _np

__all__ = ["DIGEST_BYTES", "digest_hash_words", "digest_hash_words_np"]

DIGEST_BYTES = 20

_WORDS_ONE = "QQ4x"
_FORMAT_CACHE: dict = {}


def _words_struct(count: int) -> struct.Struct:
    cached = _FORMAT_CACHE.get(count)
    if cached is None:
        cached = _FORMAT_CACHE[count] = struct.Struct(">" + _WORDS_ONE * count)
    return cached


def digest_hash_words(blob, count: int) -> tuple:
    """``(h1_0, h2_0, h1_1, h2_1, ...)`` for ``count`` packed 20-byte digests.

    Equal to ``(int.from_bytes(d[:8], "big"), int.from_bytes(d[8:16],
    "big"))`` per digest ``d`` -- i.e. exactly the words the scalar kernels
    derive -- but computed for the whole batch in one call.
    """
    return _words_struct(count).unpack(blob)


def digest_hash_words_np(blob, count: int):
    """``(count, 2)`` native ``uint64`` array of (h1, h2) word pairs.

    The columnar twin of :func:`digest_hash_words`: one ``np.frombuffer``
    view over the packed blob, the 4 trailing digest bytes sliced away,
    and the 16 word bytes reinterpreted as big-endian ``u8`` pairs --
    value-identical to the scalar tuple (``int(arr[i, 0]) == words[2*i]``).
    Requires numpy (see :mod:`repro.storage.npy`); callers gate on
    ``HAVE_NUMPY``.
    """
    view = _np.frombuffer(blob, dtype=_np.uint8, count=count * DIGEST_BYTES)
    words = view.reshape(count, DIGEST_BYTES)[:, :16].copy().view(">u8")
    return words.astype(_np.uint64, copy=False)
