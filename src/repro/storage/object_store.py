"""Cloud object store (Amazon-S3 stand-in).

The paper's architecture hands unique chunks to a back-end cloud storage
service; the object store is deliberately off the lookup critical path, so a
simple content-addressed in-memory store with optional simulated network
latency is a faithful substitute.  It also maintains per-chunk reference
counts so that deduplicated backups can be deleted safely.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..simulation.engine import Event, Simulator
from ..simulation.stats import Counter

__all__ = ["StoredObject", "CloudObjectStore"]


@dataclass
class StoredObject:
    """A chunk stored in the cloud back-end."""

    key: bytes
    data: bytes
    size: int
    reference_count: int = 1


class CloudObjectStore:
    """Content-addressed object store with reference counting.

    Parameters
    ----------
    sim:
        Optional simulator; when provided, :meth:`put_async` / :meth:`get_async`
        model the WAN round trip (``base_latency`` + size / ``bandwidth``).
    base_latency:
        One-way request latency to the cloud provider, seconds.
    bandwidth:
        Upload/download bandwidth in bytes per second.
    verify_content:
        When true, :meth:`put` checks that the supplied key matches the
        SHA-1 of the data (catching client-side fingerprinting bugs).
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        base_latency: float = 20e-3,
        bandwidth: float = 100e6,
        verify_content: bool = False,
    ) -> None:
        self.sim = sim
        self.base_latency = base_latency
        self.bandwidth = bandwidth
        self.verify_content = verify_content
        self._objects: Dict[bytes, StoredObject] = {}
        self.counters = Counter()

    # -- synchronous API -----------------------------------------------------------
    def put(self, key: bytes, data: bytes) -> bool:
        """Store ``data`` under ``key``.  Returns ``True`` if the chunk was new.

        Re-storing an existing key only bumps its reference count, mirroring
        how a deduplicating back-end tracks logical references.
        """
        if self.verify_content:
            digest = hashlib.sha1(data).digest()
            if digest != key:
                raise ValueError("object key does not match SHA-1 of its data")
        self.counters.increment("puts")
        existing = self._objects.get(key)
        if existing is not None:
            existing.reference_count += 1
            self.counters.increment("duplicate_puts")
            return False
        self._objects[key] = StoredObject(key=key, data=data, size=len(data))
        self.counters.increment("bytes_stored", len(data))
        return True

    def add_reference(self, key: bytes) -> bool:
        """Record one more logical reference to an existing chunk."""
        obj = self._objects.get(key)
        if obj is None:
            return False
        obj.reference_count += 1
        self.counters.increment("references_added")
        return True

    def get(self, key: bytes) -> Optional[bytes]:
        """Fetch chunk data (``None`` when absent)."""
        self.counters.increment("gets")
        obj = self._objects.get(key)
        return obj.data if obj is not None else None

    def release(self, key: bytes) -> bool:
        """Drop one reference; the chunk is removed when none remain."""
        obj = self._objects.get(key)
        if obj is None:
            return False
        obj.reference_count -= 1
        if obj.reference_count <= 0:
            del self._objects[key]
            self.counters.increment("bytes_reclaimed", obj.size)
        return True

    def __contains__(self, key: bytes) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def reference_count(self, key: bytes) -> int:
        """Current reference count for ``key`` (0 when absent)."""
        obj = self._objects.get(key)
        return obj.reference_count if obj is not None else 0

    def total_bytes(self) -> int:
        """Physical bytes currently stored."""
        return sum(obj.size for obj in self._objects.values())

    def objects(self) -> Iterator[Tuple[bytes, StoredObject]]:
        return iter(list(self._objects.items()))

    # -- simulated (asynchronous) API -------------------------------------------------
    def transfer_time(self, size_bytes: int) -> float:
        """Modelled WAN time to move ``size_bytes`` to/from the store."""
        return self.base_latency + size_bytes / self.bandwidth

    def put_async(self, key: bytes, data: bytes) -> Event:
        """Simulated upload; the event succeeds with ``True`` if the chunk was new."""
        if self.sim is None:
            raise RuntimeError("put_async requires a Simulator")
        done = self.sim.event("cloud.put")
        delay = self.transfer_time(len(data))
        self.sim.schedule(delay, lambda: done.succeed(self.put(key, data)))
        return done

    def get_async(self, key: bytes) -> Event:
        """Simulated download; succeeds with the data or ``None``."""
        if self.sim is None:
            raise RuntimeError("get_async requires a Simulator")
        done = self.sim.event("cloud.get")
        obj = self._objects.get(key)
        size = obj.size if obj is not None else 0
        delay = self.transfer_time(size)
        self.sim.schedule(delay, lambda: done.succeed(self.get(key)))
        return done

    def stats(self) -> dict:
        """Counter snapshot plus current footprint."""
        result = self.counters.as_dict()
        result.update(objects=len(self._objects), physical_bytes=self.total_bytes())
        return result
