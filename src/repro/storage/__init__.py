"""Storage substrate: device models, caches, filters, and persistent stores."""

from .bloom import BloomFilter, optimal_parameters
from .cuckoo import CuckooHashTable, CuckooInsertError
from .devices import (
    HDD_SPEC,
    RAM_SPEC,
    SSD_SPEC,
    DeviceSpec,
    StorageDevice,
    make_hdd,
    make_ram,
    make_ssd,
)
from .hashstore import FileHashStore, IOOperation, SSDHashStore
from .lru import LRUCache
from .object_store import CloudObjectStore, StoredObject
from .snapshot import SnapshotError, read_snapshot, write_snapshot
from .wal import LogRecord, WriteAheadLog

__all__ = [
    "BloomFilter",
    "optimal_parameters",
    "CuckooHashTable",
    "CuckooInsertError",
    "DeviceSpec",
    "StorageDevice",
    "RAM_SPEC",
    "SSD_SPEC",
    "HDD_SPEC",
    "make_ram",
    "make_ssd",
    "make_hdd",
    "FileHashStore",
    "IOOperation",
    "SSDHashStore",
    "LRUCache",
    "CloudObjectStore",
    "StoredObject",
    "LogRecord",
    "WriteAheadLog",
    "SnapshotError",
    "read_snapshot",
    "write_snapshot",
]
