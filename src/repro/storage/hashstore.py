"""SSD-resident persistent hash table (Berkeley DB substitute).

The paper stores each node's fingerprint table on SSD "as a Berkeley DB"
(§III.B).  Berkeley DB is not available here, so this module provides two
replacements:

* :class:`SSDHashStore` -- the store used inside simulated hash nodes.  It is
  a bucketised (page-oriented) hash table held in memory for correctness,
  paired with an explicit **I/O cost model**: every logical operation reports
  the flash page reads/writes it would require (one page probe per lookup,
  write-buffered page flushes for inserts).  The hybrid hash node replays
  those operations against its simulated SSD device, so latency and queueing
  behave like the real thing without an actual flash device.
* :class:`FileHashStore` -- a real on-disk append-only key/value store with an
  in-memory index and crash-safe recovery, for users who want to run the
  library as an actual dedup index rather than a simulation.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["IOOperation", "SSDHashStore", "FileHashStore"]

#: Shared memo of the BLAKE2b-derived 64-bit placement hash.  The hash is a
#: pure function of the key bytes and every store derives its bucket index
#: from it (``hash64 % num_buckets``), so replicated clusters -- which put
#: the same digest through several stores -- and repeated lookups of hot
#: digests pay the BLAKE2b once.  Bounded by wholesale clear, like the
#: cluster's routing cache.
_HASH64_MEMO: Dict[bytes, int] = {}
_HASH64_MEMO_MAX = 1 << 21


def _hash64(key: bytes) -> int:
    """Memoized ``int(BLAKE2b-64(key))`` used for bucket placement."""
    value = _HASH64_MEMO.get(key)
    if value is None:
        if len(_HASH64_MEMO) >= _HASH64_MEMO_MAX:
            _HASH64_MEMO.clear()
        value = int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")
        _HASH64_MEMO[key] = value
    return value


@dataclass(frozen=True)
class IOOperation:
    """One device access implied by a logical store operation."""

    kind: str  # "read" or "write"
    size_bytes: int
    random_access: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"invalid IO kind {self.kind!r}")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")


class SSDHashStore:
    """Bucketised hash table with a flash-aware I/O cost model.

    Parameters
    ----------
    num_buckets:
        Number of hash buckets (pages).  Lookups touch exactly one bucket.
    page_size:
        Flash page size in bytes; every device access is one page.
    entry_size:
        Bytes per stored entry (fingerprint + metadata); determines how many
        entries fit into one page before the bucket overflows onto a chain.
    write_buffer_pages:
        Inserts are accumulated in a RAM write buffer and flushed to flash one
        page at a time once a page worth of entries for some bucket exists
        (mirroring dedupv1/ChunkStash-style delayed writes).  Setting this to
        0 makes every insert an immediate page write.
    """

    def __init__(
        self,
        num_buckets: int = 1 << 16,
        page_size: int = 4096,
        entry_size: int = 48,
        write_buffer_pages: int = 64,
    ) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if page_size < entry_size:
            raise ValueError("page_size must be at least entry_size")
        self.num_buckets = num_buckets
        self.page_size = page_size
        self.entry_size = entry_size
        self.entries_per_page = max(1, page_size // entry_size)
        self.write_buffer_pages = write_buffer_pages
        self._buckets: List[Dict[bytes, Any]] = [dict() for _ in range(num_buckets)]
        self._size = 0
        self._buffered_entries = 0
        # -- statistics
        self.page_reads = 0
        self.page_writes = 0
        self.buffer_flushes = 0

    # -- placement -----------------------------------------------------------------
    def bucket_of(self, key: bytes) -> int:
        """Bucket index owning ``key`` (uniform via memoized BLAKE2b)."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        return _hash64(key) % self.num_buckets

    def _bucket_pages(self, bucket_index: int) -> int:
        """Number of flash pages the bucket currently spans (>= 1)."""
        entries = len(self._buckets[bucket_index])
        return max(1, -(-entries // self.entries_per_page))

    # -- logical operations -----------------------------------------------------------
    def get(self, key: bytes, default: Any = None) -> Any:
        """Return the stored value for ``key`` or ``default``."""
        return self._buckets[self.bucket_of(key)].get(key, default)

    def __contains__(self, key: bytes) -> bool:
        return key in self._buckets[self.bucket_of(key)]

    def put(self, key: bytes, value: Any = True) -> bool:
        """Insert or update; returns ``True`` if the key was new."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        hash64 = _HASH64_MEMO.get(key)
        if hash64 is None:
            hash64 = _hash64(key)
        bucket = self._buckets[hash64 % self.num_buckets]
        is_new = key not in bucket
        bucket[key] = value
        if is_new:
            self._size += 1
            self._buffered_entries += 1
        return is_new

    def put_many_verdicts(self, pairs: Sequence[Tuple[bytes, Any]]):
        """Batched :meth:`put` over ``(key, value)`` pairs, partitioned by verdict.

        Returns ``(new_keys, existing_keys)``: the keys that were absent
        (inserted, in input order) and the keys that were already present
        (updated in place, in input order).  State transitions are exactly
        those of calling :meth:`put` per pair -- this only hoists the memo
        and bucket lookups out of the per-key call overhead, which is what
        the cluster's replica-propagation path pays per new fingerprint.
        """
        memo = _HASH64_MEMO
        memo_get = memo.get
        memo_max = _HASH64_MEMO_MAX
        from_bytes = int.from_bytes
        blake2b = hashlib.blake2b
        buckets = self._buckets
        num_buckets = self.num_buckets
        new_keys = []
        existing_keys = []
        new_append = new_keys.append
        existing_append = existing_keys.append
        for key, value in pairs:
            hash64 = memo_get(key)
            if hash64 is None:
                if len(memo) >= memo_max:
                    memo.clear()
                hash64 = from_bytes(blake2b(key, digest_size=8).digest(), "big")
                memo[key] = hash64
            bucket = buckets[hash64 % num_buckets]
            if key in bucket:
                existing_append(key)
            else:
                new_append(key)
            bucket[key] = value
        if new_keys:
            inserted = len(new_keys)
            self._size += inserted
            self._buffered_entries += inserted
        return new_keys, existing_keys

    def remove(self, key: bytes) -> bool:
        """Delete ``key``; returns whether it was present."""
        bucket = self._buckets[self.bucket_of(key)]
        if key in bucket:
            del bucket[key]
            self._size -= 1
            return True
        return False

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """Iterate all stored entries (unspecified order)."""
        for bucket in self._buckets:
            yield from bucket.items()

    def keys(self) -> Iterator[bytes]:
        for key, _value in self.items():
            yield key

    # -- I/O cost model ------------------------------------------------------------------
    def lookup_io(self, key: bytes) -> List[IOOperation]:
        """Device accesses required to look ``key`` up on flash.

        A lookup reads the bucket's page chain; with a well-sized table this
        is a single page read, matching ChunkStash's "one flash read per
        lookup" property.
        """
        pages = self._bucket_pages(self.bucket_of(key))
        self.page_reads += pages
        return [IOOperation("read", self.page_size) for _ in range(pages)]

    def insert_io(self, key: bytes) -> List[IOOperation]:
        """Device accesses required to persist an insert of ``key``.

        Inserts are buffered in RAM; when a page worth of new entries has
        accumulated (per the configured ``write_buffer_pages`` budget), one
        page write is issued.  The amortised cost is therefore
        ``1 / entries_per_page`` page writes per insert.
        """
        del key  # placement does not change the amortised cost
        flush_threshold = max(1, self.entries_per_page)
        if self.write_buffer_pages <= 0:
            self.page_writes += 1
            return [IOOperation("write", self.page_size)]
        if self._buffered_entries >= flush_threshold:
            pages = self._buffered_entries // flush_threshold
            pages = min(pages, self.write_buffer_pages)
            self._buffered_entries -= pages * flush_threshold
            self.page_writes += pages
            self.buffer_flushes += 1
            return [IOOperation("write", self.page_size, random_access=False) for _ in range(pages)]
        return []

    # -- hot-path variants ---------------------------------------------------------------
    #
    # The hash node's batched lookup loop calls these instead of
    # ``lookup_io``/``key in store`` and ``insert_io``: same bucket maths,
    # same ``page_reads``/``page_writes``/write-buffer accounting, but the
    # bucket hash is computed once and no :class:`IOOperation` objects are
    # built (the caller multiplies the page counts by its per-page device
    # costs).  Equivalence with the list-returning methods is pinned by
    # tests/test_storage_cuckoo_hashstore.py.

    def probe_pages(self, key: bytes) -> Tuple[int, bool]:
        """Charge a lookup's page reads and test membership in one pass.

        Equivalent to ``lookup_io(key)`` followed by ``key in self``:
        returns ``(pages_read, present)`` where every page is one
        random-access ``page_size`` read.
        """
        if isinstance(key, str):
            key = key.encode("utf-8")
        hash64 = _HASH64_MEMO.get(key)
        if hash64 is None:
            hash64 = _hash64(key)
        bucket = self._buckets[hash64 % self.num_buckets]
        entries = len(bucket)
        pages = max(1, -(-entries // self.entries_per_page))
        self.page_reads += pages
        return pages, key in bucket

    def insert_flush_pages(self) -> Tuple[int, bool]:
        """Charge an insert's buffered page writes; call right after ``put``.

        Equivalent to ``insert_io(key)``: returns ``(pages_written,
        random_access)`` -- a single random-access page write when the
        write buffer is disabled, otherwise the (possibly zero) sequential
        pages the buffer flushes.
        """
        if self.write_buffer_pages <= 0:
            self.page_writes += 1
            return 1, True
        flush_threshold = max(1, self.entries_per_page)
        if self._buffered_entries >= flush_threshold:
            pages = self._buffered_entries // flush_threshold
            pages = min(pages, self.write_buffer_pages)
            self._buffered_entries -= pages * flush_threshold
            self.page_writes += pages
            self.buffer_flushes += 1
            return pages, False
        return 0, False

    def insert_new_pages(self, key: bytes, value: Any = True) -> Tuple[int, bool]:
        """Fused ``put`` + :meth:`insert_flush_pages` for a **known-new** key.

        The hash node's insert path only runs after the bloom filter (no
        false negatives) or the SSD probe has established the key is
        absent, so the membership check inside :meth:`put` is pure
        overhead there.  State and accounting are identical to
        ``put(key, value)`` followed by ``insert_flush_pages()`` for an
        absent key; calling it with a present key corrupts the size
        accounting, hence the narrow contract.
        """
        hash64 = _HASH64_MEMO.get(key)
        if hash64 is None:
            hash64 = _hash64(key)
        bucket = self._buckets[hash64 % self.num_buckets]
        bucket[key] = value
        self._size += 1
        if self.write_buffer_pages <= 0:
            self.page_writes += 1
            return 1, True
        buffered = self._buffered_entries + 1
        flush_threshold = self.entries_per_page  # >= 1 by construction
        if buffered >= flush_threshold:
            pages = buffered // flush_threshold
            if pages > self.write_buffer_pages:
                pages = self.write_buffer_pages
            self._buffered_entries = buffered - pages * flush_threshold
            self.page_writes += pages
            self.buffer_flushes += 1
            return pages, False
        self._buffered_entries = buffered
        return 0, False

    def batch_state(self) -> Tuple[List[Dict[bytes, Any]], int, int, int, int]:
        """Raw state handed to a fused batch kernel (see bucket_kernel).

        Returns ``(buckets, num_buckets, entries_per_page,
        write_buffer_pages, buffered_entries)``.  The kernel mutates the
        bucket dicts directly (known-new inserts only, mirroring
        :meth:`insert_new_pages`), tracks page/flush counts and the write
        buffer locally from these starting values, and the caller settles
        the deltas back with :meth:`settle_batch`.  Nothing else may touch
        the store between the two calls.
        """
        return (
            self._buckets,
            self.num_buckets,
            self.entries_per_page,
            self.write_buffer_pages,
            self._buffered_entries,
        )

    def settle_batch(
        self,
        page_reads: int,
        page_writes: int,
        buffer_flushes: int,
        buffered_entries: int,
        inserted: int,
    ) -> None:
        """Apply a fused kernel's accounting deltas (see :meth:`batch_state`).

        ``buffered_entries`` is the kernel's final write-buffer fill (an
        absolute value, not a delta); everything else accumulates.  The
        result is state-identical to having run :meth:`probe_pages` /
        :meth:`insert_new_pages` per key.
        """
        self.page_reads += page_reads
        self.page_writes += page_writes
        self.buffer_flushes += buffer_flushes
        self._buffered_entries = buffered_entries
        self._size += inserted

    def flush_io(self) -> List[IOOperation]:
        """Force the write buffer to flash (e.g. at shutdown or checkpoint)."""
        if self._buffered_entries <= 0:
            return []
        pages = -(-self._buffered_entries // max(1, self.entries_per_page))
        self._buffered_entries = 0
        self.page_writes += pages
        self.buffer_flushes += 1
        return [IOOperation("write", self.page_size, random_access=False) for _ in range(pages)]

    # -- snapshots -----------------------------------------------------------------------
    #
    # The persistence layer checkpoints the whole store alongside the bloom
    # snapshot so a restart skips the full container-log rebuild.  The
    # payload records each entry's *bucket index* so restore can fill the
    # bucket dicts directly -- no per-key BLAKE2b placement hash, which is
    # the dominant cost of a cold store rebuild in a fresh process (the
    # placement memo starts empty).  Values must be non-negative integers
    # (chunk sizes -- what hash nodes store); a store holding anything else
    # raises and the caller falls back to log replay.

    _SNAP_HEADER = struct.Struct(">II")  # num_buckets, entry count
    _SNAP_ENTRY = struct.Struct(">IBQ")  # bucket index, key length, value

    def snapshot_payload(self) -> bytes:
        """Serialise every entry with its bucket placement (see above)."""
        parts = [self._SNAP_HEADER.pack(self.num_buckets, self._size)]
        append = parts.append
        pack = self._SNAP_ENTRY.pack
        for bucket_index, bucket in enumerate(self._buckets):
            for key, value in bucket.items():
                append(pack(bucket_index, len(key), value))
                append(key)
        return b"".join(parts)

    @classmethod
    def decode_snapshot_payload(cls, payload: bytes) -> Tuple[int, List[Tuple[int, bytes, int]]]:
        """Decode a payload into ``(num_buckets, [(bucket, key, value), ...])``."""
        if len(payload) < cls._SNAP_HEADER.size:
            raise ValueError("store snapshot payload too short")
        num_buckets, count = cls._SNAP_HEADER.unpack_from(payload, 0)
        offset = cls._SNAP_HEADER.size
        entry = cls._SNAP_ENTRY
        entry_size = entry.size
        unpack_from = entry.unpack_from
        entries: List[Tuple[int, bytes, int]] = []
        append = entries.append
        for _ in range(count):
            if offset + entry_size > len(payload):
                raise ValueError("store snapshot payload truncated")
            bucket_index, key_len, value = unpack_from(payload, offset)
            offset += entry_size
            key = payload[offset:offset + key_len]
            if len(key) != key_len:
                raise ValueError("store snapshot payload truncated")
            offset += key_len
            append((bucket_index, key, value))
        return num_buckets, entries

    def restore_entries(
        self, snapshot_buckets: int, entries: List[Tuple[int, bytes, int]]
    ) -> int:
        """Bulk-load decoded snapshot entries into an empty store.

        With matching geometry the recorded bucket indexes are trusted and
        the bucket dicts are filled directly; a geometry change re-places
        every key through :meth:`put`.  Either way the write buffer ends
        empty -- restored entries are already on flash.
        """
        if self._size:
            raise ValueError("restore_entries requires an empty store")
        if snapshot_buckets == self.num_buckets:
            buckets = self._buckets
            for bucket_index, key, value in entries:
                buckets[bucket_index][key] = value
            self._size = len(entries)
        else:
            put = self.put
            for _bucket_index, key, value in entries:
                put(key, value)
        self._buffered_entries = 0
        return self._size

    # -- reporting ----------------------------------------------------------------------
    def occupancy(self) -> float:
        """Mean entries per bucket divided by entries per page."""
        return self._size / (self.num_buckets * self.entries_per_page)

    def stats(self) -> dict:
        return {
            "entries": self._size,
            "buckets": self.num_buckets,
            "entries_per_page": self.entries_per_page,
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "buffer_flushes": self.buffer_flushes,
            "occupancy": self.occupancy(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SSDHashStore entries={self._size} buckets={self.num_buckets}>"


_RECORD_HEADER = struct.Struct(">BIII")  # op, key length, value length, CRC32(key+value)


class FileHashStore:
    """Append-only on-disk key/value store with an in-memory index.

    The layout is a single log-structured container file of
    ``(op, key, value)`` records, each carrying a CRC32 of its body; an
    in-memory dict maps keys to values.  Recovery replays the container and
    **truncates** it at the first torn or corrupt record (the tail of a
    crashed append), so the on-disk state always ends on a record boundary
    and later appends cannot be misframed by leftover garbage.
    :meth:`compact` rewrites the log to drop overwritten and deleted records.
    This is the "really persistent" option for using the library outside the
    simulator, and the container format behind the node persistence layer.
    """

    _OP_PUT = 1
    _OP_DELETE = 2

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        resume: Optional[Tuple[int, int, Dict[bytes, bytes]]] = None,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self._index: Dict[bytes, bytes] = {}
        #: Records accepted from the container in log order (puts + deletes);
        #: grows with every append.  Snapshots reference a record count so
        #: recovery can replay only the tail written after the snapshot.
        self.record_count = 0
        #: Bytes dropped from the container tail during the last recovery
        #: (0 when the file ended on a clean record boundary).
        self.truncated_bytes = 0
        #: Byte offset of the end of the last valid record -- the position a
        #: snapshot records so a later open can resume parsing from there.
        self.tail_bytes = 0
        #: Whether this open skipped the log prefix thanks to ``resume``.
        self.resumed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(path):
            # ``resume`` hands over the state a store snapshot captured:
            # ``(byte_offset, record_count, index)`` as of the snapshot.
            # Parsing then starts at ``byte_offset`` instead of 0, skipping
            # the CRC scan of the already-covered prefix.  Offsets are only
            # valid against the exact log they were taken from (this class
            # never compacts under a resume caller); a log shorter than the
            # offset means the snapshot is stale and triggers a full scan.
            if resume is not None and self._recover_resumed(*resume):
                self.resumed = True
            else:
                self._recover()
        self._log = open(path, "ab")

    # -- record framing --------------------------------------------------------------
    @classmethod
    def _encode(cls, op: int, key: bytes, value: bytes) -> bytes:
        crc = zlib.crc32(value, zlib.crc32(key, op))
        return _RECORD_HEADER.pack(op, len(key), len(value), crc) + key + value

    @classmethod
    def _parse(cls, data: bytes, offset: int) -> Optional[Tuple[int, bytes, bytes, int]]:
        """Decode the record at ``offset``; ``None`` for a torn/corrupt record."""
        if offset + _RECORD_HEADER.size > len(data):
            return None
        op, key_len, value_len, crc = _RECORD_HEADER.unpack_from(data, offset)
        if op not in (cls._OP_PUT, cls._OP_DELETE):
            return None
        body = offset + _RECORD_HEADER.size
        end = body + key_len + value_len
        if end > len(data):
            return None
        key = data[body:body + key_len]
        value = data[body + key_len:end]
        if zlib.crc32(value, zlib.crc32(key, op)) != crc:
            return None
        return op, key, value, end

    @classmethod
    def scan(cls, path: str, start_offset: int = 0) -> Iterator[Tuple[int, bytes, bytes]]:
        """Yield ``(op, key, value)`` container records in log order.

        Stops at the first torn or corrupt record, exactly like recovery.
        Used by the persistence layer to replay the tail written after a
        snapshot without materialising the whole index; ``start_offset``
        (a byte position previously reported in :attr:`tail_bytes`) skips
        straight to that tail without reading the prefix.
        """
        with open(path, "rb") as log:
            if start_offset:
                log.seek(start_offset)
            data = log.read()
        offset = 0
        while True:
            parsed = cls._parse(data, offset)
            if parsed is None:
                return
            op, key, value, offset = parsed
            yield op, key, value

    def _recover(self) -> None:
        with open(self.path, "rb") as log:
            data = log.read()
        offset = 0
        index = self._index
        while True:
            parsed = self._parse(data, offset)
            if parsed is None:
                break
            op, key, value, offset = parsed
            if op == self._OP_PUT:
                index[key] = value
            else:
                index.pop(key, None)
            self.record_count += 1
        self.tail_bytes = offset
        if offset < len(data):
            # Torn or corrupt tail from a crash mid-append: truncate back to
            # the last valid record so the container ends on a clean boundary.
            self.truncated_bytes = len(data) - offset
            with open(self.path, "r+b") as log:
                log.truncate(offset)

    def _recover_resumed(
        self, start_offset: int, base_records: int, index: Dict[bytes, bytes]
    ) -> bool:
        """Recover from a snapshot-provided prefix state; ``False`` = stale.

        The caller's snapshot covered ``base_records`` records ending at
        byte ``start_offset`` and its live index was ``index``; only the
        tail appended after that is parsed (and CRC-checked) here.  Torn
        tails truncate exactly as in :meth:`_recover`.  Returns ``False``
        without touching any state when the log is shorter than the
        claimed offset (stale snapshot -> full scan).
        """
        if start_offset < 0 or base_records < 0:
            return False
        if os.path.getsize(self.path) < start_offset:
            return False
        with open(self.path, "rb") as log:
            log.seek(start_offset)
            data = log.read()
        self._index = dict(index)
        self.record_count = base_records
        offset = 0
        while True:
            parsed = self._parse(data, offset)
            if parsed is None:
                break
            op, key, value, offset = parsed
            if op == self._OP_PUT:
                self._index[key] = value
            else:
                self._index.pop(key, None)
            self.record_count += 1
        self.tail_bytes = start_offset + offset
        if offset < len(data):
            self.truncated_bytes = len(data) - offset
            with open(self.path, "r+b") as log:
                log.truncate(start_offset + offset)
        return True

    def _sync(self) -> None:
        self._log.flush()
        if self.fsync:
            os.fsync(self._log.fileno())

    # -- public API --------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Durably store ``value`` under ``key``."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        if isinstance(value, str):
            value = value.encode("utf-8")
        record = self._encode(self._OP_PUT, key, value)
        self._log.write(record)
        self._sync()
        self._index[key] = value
        self.record_count += 1
        self.tail_bytes += len(record)

    def put_many(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        """Append a batch of puts with a single flush; returns the batch size."""
        chunks = []
        index = self._index
        encode = self._encode
        op = self._OP_PUT
        count = 0
        for key, value in pairs:
            if isinstance(key, str):
                key = key.encode("utf-8")
            if isinstance(value, str):
                value = value.encode("utf-8")
            chunks.append(encode(op, key, value))
            index[key] = value
            count += 1
        if chunks:
            blob = b"".join(chunks)
            self._log.write(blob)
            self._sync()
            self.record_count += count
            self.tail_bytes += len(blob)
        return count

    def get(self, key: bytes, default: Optional[bytes] = None) -> Optional[bytes]:
        """Fetch the latest value stored under ``key``."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        return self._index.get(key, default)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it existed."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        if key not in self._index:
            return False
        record = self._encode(self._OP_DELETE, key, b"")
        self._log.write(record)
        self._sync()
        del self._index[key]
        self.record_count += 1
        self.tail_bytes += len(record)
        return True

    def __contains__(self, key: bytes) -> bool:
        if isinstance(key, str):
            key = key.encode("utf-8")
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[bytes]:
        return iter(list(self._index.keys()))

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        return iter(list(self._index.items()))

    def compact(self) -> None:
        """Rewrite the log keeping only live records.

        Compaction invalidates any byte offsets recorded by earlier
        snapshots (the resume contract); the node persistence layer never
        compacts its container for exactly this reason.
        """
        temp_path = self.path + ".compact"
        written = 0
        with open(temp_path, "wb") as temp:
            for key, value in self._index.items():
                written += temp.write(self._encode(self._OP_PUT, key, value))
            temp.flush()
            if self.fsync:
                os.fsync(temp.fileno())
        self._log.close()
        os.replace(temp_path, self.path)
        self._log = open(self.path, "ab")
        self.record_count = len(self._index)
        self.tail_bytes = written

    def close(self) -> None:
        """Flush and close the underlying log file."""
        if not self._log.closed:
            self._sync()
            self._log.close()

    def __enter__(self) -> "FileHashStore":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
