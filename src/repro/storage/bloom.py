"""Bloom filter.

The SHHC node keeps a bloom filter in RAM in front of the SSD-resident hash
table so that lookups for fingerprints that are definitely not stored avoid
the flash read entirely (paper §III.B).  This implementation is a standard
partitioned-by-hash bloom filter over a Python ``bytearray`` bit vector, sized
from a target false-positive rate.

Zero-rehash fast path
---------------------
The keys this filter guards in SHHC are SHA-1 fingerprints: 20 bytes that are
already uniformly distributed.  Hashing a cryptographic digest *again* (the
classic SHA-256 double-hashing setup) costs more than every other operation
on the probe path combined, so byte keys of at least 16 bytes take a
digest-key fast path that reads ``h1``/``h2`` for Kirsch-Mitzenmacher double
hashing straight out of the key material.  Short keys and strings keep the
SHA-256 path, which is also available explicitly via ``digest_keys=False``
for callers whose long keys are *not* uniform (e.g. file paths).

Batch APIs (:meth:`BloomFilter.add_many` / :meth:`BloomFilter.contains_many`)
take the *packed* path when every key is a 20-byte digest (or the caller
hands a :class:`~repro.core.digest_batch.DigestBatch`): the hash words of
the whole batch come from one ``struct.unpack`` over the contiguous
buffer and an exec-unrolled kernel walks the probe sequences with no
per-key ``int.from_bytes``/type dispatch at all.  The previous per-key
kernels are retained verbatim as :meth:`BloomFilter.add_many_scalar` /
:meth:`BloomFilter.contains_many_scalar` -- the reference oracle the
differential tests (tests/test_vectorized_kernels.py) drive the packed
path against.

When the optional numpy backend is active (see :mod:`repro.storage.npy`),
batches of at least ``REPRO_NUMPY_MIN_BATCH`` keys take a *columnar* path
instead: every Kirsch-Mitzenmacher probe index for the whole batch is
computed as one ``(n, num_hashes)`` ``uint64`` array and the bit vector is
gathered/scattered through a zero-copy ``np.uint8`` view
(``np.bitwise_or.at`` for inserts, a boolean AND-reduction for probes).
The arithmetic mirrors the scalar kernels step for step, so bits and
verdicts stay byte-identical; :meth:`BloomFilter.add_many_np` /
:meth:`BloomFilter.contains_many_np` expose the columnar kernels
explicitly for the differential tests and benchmarks.

Shared-memory backing (opt-in)
------------------------------
``BloomFilter(..., shared=True)`` places the bit vector in a
``multiprocessing.shared_memory`` segment (16-byte geometry header +
bits); ``shared_name=...`` attaches to an existing segment -- that is how
a respawned serving worker re-adopts its predecessor's filter and how
sweep workers can share one read-mostly filter.  The default remains a
private ``bytearray``, and platforms without shared memory degrade to it
silently (see :mod:`repro.storage.shm`).
"""

from __future__ import annotations

import hashlib
import math
import struct
from functools import partial
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .npy import HAVE_NUMPY, NUMPY_MIN_BATCH, np as _np
from .packing import digest_hash_words, digest_hash_words_np
from .shm import SharedBuffer

__all__ = ["BloomFilter", "optimal_parameters"]

#: The columnar kernels compute the whole probe sequence closed-form in
#: ``uint64`` -- ``(index0 + i * step) % num_bits`` -- which is exact only
#: while ``index0 + i * step`` cannot overflow: with ``index0, step <
#: num_bits`` and at most 16 probe rounds (the unroll bound shared with
#: the packed kernels), ``num_bits < 2**58`` keeps the worst case under
#: ``2**63``.  Filters anywhere near this would not fit in RAM anyway.
_NP_MAX_BITS = 1 << 58

#: Byte-value -> popcount lookup table (satellite fix: ``fill_ratio`` used
#: to materialize the whole bit vector as one Python big-int per call).
_POPCOUNT_TABLE = bytes(bin(value).count("1") for value in range(256))

#: Shared-segment layout: magic, num_bits, num_hashes -- then the bits.
_SHM_MAGIC = b"RBF1"
_SHM_HEADER = struct.Struct(">4sQI")

#: Byte keys at least this long are treated as uniform digests by default.
_DIGEST_KEY_MIN_BYTES = 16

#: Unrolled batch kernels are generated for hash counts up to this; larger
#: (unusual) configurations fall back to the generic probe loop.
_MAX_UNROLLED_HASHES = 16

#: Cache of generated batch kernels keyed by (num_bits, num_hashes):
#: nodes in a cluster share parameters, so each shape compiles once.
_KERNEL_CACHE: dict = {}


def _batch_kernels(num_bits: int, num_hashes: int):
    """Return the exec-generated kernel tuple for one filter shape.

    ``(contains_kernel, add_kernel, contains_one_kernel, add_one_kernel,
    contains_words_kernel, add_words_kernel)`` -- the first four are the
    original per-key kernels (retained as the scalar reference oracle);
    the ``*_words`` pair drives the packed path: it takes the flat
    ``(h1, h2)`` word tuple produced by one ``struct.unpack`` over the
    contiguous digest buffer (:func:`repro.storage.packing.digest_hash_words`)
    and probes/sets whole batches with zero per-key hashing or dispatch.

    The kernels are specialised with ``exec`` (the ``namedtuple`` technique):
    ``num_bits`` is baked in as a constant and the Kirsch-Mitzenmacher probe
    walk is fully unrolled, which removes the per-index loop machinery that
    otherwise dominates a pure-Python probe.  20-byte keys (SHA-1
    fingerprints, the hot case) derive both hash words from one
    ``int.from_bytes``; every other key goes through the caller-supplied
    ``hash_pair`` (which honours ``digest_keys``).  The ``*_one`` variants
    serve the single-key :meth:`BloomFilter.__contains__` /
    :meth:`BloomFilter.add` hot path (bound via ``functools.partial``, so a
    probe costs one call frame); they take ``(bits, hash_pair, digest_keys,
    key)`` so the per-filter state can be pre-bound.  Returns ``None`` for
    shapes too large to unroll.
    """
    if num_hashes > _MAX_UNROLLED_HASHES:
        return None
    shape = (num_bits, num_hashes)
    kernels = _KERNEL_CACHE.get(shape)
    if kernels is not None:
        return kernels

    def _header(name: str) -> list:
        return [
            f"def {name}(keys, bits, emit, hash_pair, digest_keys):",
            "    from_bytes = int.from_bytes",
            f"    nb = {num_bits}",
            "    for key in keys:",
            "        if digest_keys and type(key) is bytes and len(key) == 20:",
            "            whole = from_bytes(key, 'big')",
            "            index = (whole >> 96) % nb",
            "            step = (((whole >> 32) & 0xFFFFFFFFFFFFFFFF) | 1) % nb",
            "        else:",
            "            h1, h2 = hash_pair(key)",
            "            index = h1 % nb",
            "            step = h2 % nb",
        ]

    probe_lines = _header("contains_kernel")
    for i in range(num_hashes):
        probe_lines.append("        if not bits[index >> 3] & (1 << (index & 7)):")
        probe_lines.append("            emit(False); continue")
        if i < num_hashes - 1:
            probe_lines.append("        index += step")
            probe_lines.append("        if index >= nb: index -= nb")
    probe_lines.append("        emit(True)")

    add_lines = _header("add_kernel")
    for i in range(num_hashes):
        add_lines.append("        bits[index >> 3] |= 1 << (index & 7)")
        if i < num_hashes - 1:
            add_lines.append("        index += step")
            add_lines.append("        if index >= nb: index -= nb")

    def _one_header(name: str) -> list:
        return [
            f"def {name}(bits, hash_pair, digest_keys, key):",
            f"    nb = {num_bits}",
            "    if digest_keys and type(key) is bytes and len(key) == 20:",
            "        whole = int.from_bytes(key, 'big')",
            "        index = (whole >> 96) % nb",
            "        step = (((whole >> 32) & 0xFFFFFFFFFFFFFFFF) | 1) % nb",
            "    else:",
            "        h1, h2 = hash_pair(key)",
            "        index = h1 % nb",
            "        step = h2 % nb",
        ]

    probe_one_lines = _one_header("contains_one_kernel")
    for i in range(num_hashes):
        probe_one_lines.append("    if not bits[index >> 3] & (1 << (index & 7)):")
        probe_one_lines.append("        return False")
        if i < num_hashes - 1:
            probe_one_lines.append("    index += step")
            probe_one_lines.append("    if index >= nb: index -= nb")
    probe_one_lines.append("    return True")

    add_one_lines = _one_header("add_one_kernel")
    for i in range(num_hashes):
        add_one_lines.append("    bits[index >> 3] |= 1 << (index & 7)")
        if i < num_hashes - 1:
            add_one_lines.append("    index += step")
            add_one_lines.append("    if index >= nb: index -= nb")

    # Packed-batch kernels: ``words`` is the flat (h1, h2, h1, h2, ...)
    # tuple from one struct.unpack over the contiguous digest buffer, so
    # there is no per-key type dispatch or int.from_bytes left at all.
    # ``h1 % nb`` equals the scalar kernel's ``(whole >> 96) % nb`` and
    # ``(h2 | 1) % nb`` its ``(((whole >> 32) & 2**64-1) | 1) % nb`` for a
    # 20-byte digest, so verdicts and bit mutations are bit-identical.
    contains_words_lines = [
        "def contains_words_kernel(words, bits, emit):",
        f"    nb = {num_bits}",
        "    _it = iter(words)",
        "    for h1, h2 in zip(_it, _it):",
        "        index = h1 % nb",
    ]
    for i in range(num_hashes):
        contains_words_lines.append("        if not bits[index >> 3] & (1 << (index & 7)):")
        contains_words_lines.append("            emit(False); continue")
        if i < num_hashes - 1:
            if i == 0:
                # The step is only needed once the first probe passes --
                # definite negatives (the common shortcut) skip the modulo.
                contains_words_lines.append("        step = (h2 | 1) % nb")
            contains_words_lines.append("        index += step")
            contains_words_lines.append("        if index >= nb: index -= nb")
    contains_words_lines.append("        emit(True)")

    add_words_lines = [
        "def add_words_kernel(words, bits):",
        f"    nb = {num_bits}",
        "    _it = iter(words)",
        "    for h1, h2 in zip(_it, _it):",
        "        index = h1 % nb",
    ]
    if num_hashes > 1:
        add_words_lines.append("        step = (h2 | 1) % nb")
    for i in range(num_hashes):
        add_words_lines.append("        bits[index >> 3] |= 1 << (index & 7)")
        if i < num_hashes - 1:
            add_words_lines.append("        index += step")
            add_words_lines.append("        if index >= nb: index -= nb")

    namespace: dict = {}
    exec("\n".join(probe_lines), namespace)  # noqa: S102 - static template, no user input
    exec("\n".join(add_lines), namespace)  # noqa: S102
    exec("\n".join(probe_one_lines), namespace)  # noqa: S102
    exec("\n".join(add_one_lines), namespace)  # noqa: S102
    exec("\n".join(contains_words_lines), namespace)  # noqa: S102
    exec("\n".join(add_words_lines), namespace)  # noqa: S102
    kernels = (
        namespace["contains_kernel"],
        namespace["add_kernel"],
        namespace["contains_one_kernel"],
        namespace["add_one_kernel"],
        namespace["contains_words_kernel"],
        namespace["add_words_kernel"],
    )
    _KERNEL_CACHE[shape] = kernels
    return kernels


def optimal_parameters(expected_items: int, false_positive_rate: float) -> tuple[int, int]:
    """Return ``(bits, hash_count)`` for the target capacity and FP rate."""
    if expected_items <= 0:
        raise ValueError("expected_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = int(math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
    hashes = max(1, int(round(bits / expected_items * math.log(2))))
    return max(8, bits), hashes


class BloomFilter:
    """A classic bloom filter over byte-string keys.

    Parameters
    ----------
    expected_items:
        The number of keys the filter is sized for.
    false_positive_rate:
        Target false-positive probability at ``expected_items`` insertions.
    num_bits / num_hashes:
        Explicit sizing; overrides the derived parameters when given.
    digest_keys:
        When ``True`` (the default), byte keys of >= 16 bytes are assumed to
        be uniformly distributed digests and ``h1``/``h2`` are read directly
        from the key bytes instead of re-hashing with SHA-256.  Set to
        ``False`` when long keys may be structured (non-uniform).
    shared / shared_name:
        Opt-in shared-memory backing for the bit vector.  ``shared=True``
        creates a segment (anonymous unless ``shared_name`` is given, in
        which case an existing segment with matching geometry is adopted
        instead -- the respawned-worker case); ``shared_name`` alone
        attaches to an existing segment and raises ``FileNotFoundError``
        if it is missing.  Only the *bits* are shared; ``count`` stays
        process-local (recovery/replay restores it per process).  When the
        platform cannot allocate segments, ``shared=True`` silently falls
        back to a private ``bytearray`` (``shared_segment_name`` is then
        ``None``).
    """

    def __init__(
        self,
        expected_items: int = 1_000_000,
        false_positive_rate: float = 0.01,
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
        digest_keys: bool = True,
        shared: bool = False,
        shared_name: Optional[str] = None,
    ) -> None:
        derived_bits, derived_hashes = optimal_parameters(expected_items, false_positive_rate)
        self.num_bits = int(num_bits) if num_bits is not None else derived_bits
        self.num_hashes = int(num_hashes) if num_hashes is not None else derived_hashes
        if self.num_bits <= 0 or self.num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self.expected_items = expected_items
        self.false_positive_rate = false_positive_rate
        self.digest_keys = bool(digest_keys)
        num_bytes = (self.num_bits + 7) // 8
        self._buffer: Optional[SharedBuffer] = None
        if shared or shared_name is not None:
            self._bits = self._map_shared_bits(num_bytes, shared, shared_name)
        else:
            self._bits = bytearray(num_bytes)
        #: Lazily created ``np.uint8`` view of ``_bits`` (see :meth:`np_bits`).
        self._np_bits = None
        self._count = 0
        # Unrolled kernels for this filter shape, or None when num_hashes is
        # too large to unroll (generic loop then).  The single-key variants
        # are pre-bound to this filter's state (the bit vector is mutated in
        # place and never reassigned, so binding it once is safe); they are
        # the bodies of ``add``/``__contains__`` and what the hash node's
        # batch loop calls directly for live probes.
        self._kernels = _batch_kernels(self.num_bits, self.num_hashes)
        if self._kernels is not None:
            self._contains_one: Optional[Callable[[bytes], bool]] = partial(
                self._kernels[2], self._bits, self._hash_pair, self.digest_keys
            )
            self._add_one: Optional[Callable[[bytes], None]] = partial(
                self._kernels[3], self._bits, self._hash_pair, self.digest_keys
            )
        else:
            self._contains_one = None
            self._add_one = None
        #: Single-key membership probe bound to the fastest implementation
        #: for this shape; semantically identical to ``key in filter`` and
        #: what hot loops should bind instead of ``__contains__``.
        self.contains_one: Callable[[bytes], bool] = (
            self._contains_one if self._contains_one is not None else self.__contains__
        )
        #: Single-key insert for hot loops.  Unlike :meth:`add` it does NOT
        #: advance the insert count -- a tight loop calls this per key and
        #: settles once with :meth:`count_inserts` (state-identical).
        self.add_one: Callable[[bytes], None] = (
            self._add_one if self._add_one is not None else self._add_uncounted
        )

    def _add_uncounted(self, key: bytes) -> None:
        """Generic-shape fallback for :attr:`add_one` (no count advance)."""
        self.add(key)
        self._count -= 1

    def count_inserts(self, amount: int) -> None:
        """Advance the insert count for keys added via :attr:`add_one`."""
        self._count += amount

    # -- shared-memory backing ---------------------------------------------------
    def _map_shared_bits(self, num_bytes: int, shared: bool, shared_name: Optional[str]):
        """Map the bit vector into a shared segment (or fall back privately).

        Segment layout: :data:`_SHM_HEADER` (magic, num_bits, num_hashes)
        followed by the bit bytes.  The header is written after the payload
        region exists zeroed, and attachers validate it, so adopting a
        segment with mismatched geometry fails loudly instead of silently
        corrupting probes.
        """
        total = _SHM_HEADER.size + num_bytes
        buffer: Optional[SharedBuffer] = None
        if shared_name is not None:
            if shared:
                try:
                    buffer = SharedBuffer.create(total, name=shared_name, shared=True)
                except FileExistsError:
                    buffer = SharedBuffer.attach(shared_name, total)
            else:
                buffer = SharedBuffer.attach(shared_name, total)
        else:
            buffer = SharedBuffer.create(total, shared=True)
        if buffer.name is None:
            # Platform without shared memory: keep the plain private backing.
            return bytearray(num_bytes)
        view = memoryview(buffer.buf)
        if bytes(view[:4]) == b"\x00\x00\x00\x00":
            # Freshly created (create zeroes the payload): stamp geometry.
            _SHM_HEADER.pack_into(view, 0, _SHM_MAGIC, self.num_bits, self.num_hashes)
        else:
            magic, seg_bits, seg_hashes = _SHM_HEADER.unpack_from(view, 0)
            if magic != _SHM_MAGIC or seg_bits != self.num_bits or seg_hashes != self.num_hashes:
                name = buffer.name
                view.release()
                buffer.close()
                raise ValueError(
                    f"shared segment {name!r} holds a filter with "
                    f"bits={seg_bits} hashes={seg_hashes}; "
                    f"this filter needs bits={self.num_bits} hashes={self.num_hashes}"
                )
        self._buffer = buffer
        return view[_SHM_HEADER.size:]

    @property
    def shared_segment_name(self) -> Optional[str]:
        """Name of the backing shared segment (``None`` when private)."""
        buffer = self._buffer
        return buffer.name if buffer is not None else None

    def close_shared(self) -> None:
        """Detach from the shared segment.  Terminal: do not use the filter after.

        The single-key kernels stay bound to the released view, so any
        probe after this raises -- closing is for teardown paths only.
        Idempotent; a no-op for private backings.
        """
        buffer, self._buffer = self._buffer, None
        if buffer is not None:
            # Drop the numpy view first: it exports the memoryview's buffer,
            # and release() raises BufferError while exports are live.
            self._np_bits = None
            bits, self._bits = self._bits, bytearray(0)
            if isinstance(bits, memoryview):
                bits.release()
            buffer.close()

    def unlink_shared(self) -> None:
        """Detach *and* remove the backing segment from the system."""
        buffer, self._buffer = self._buffer, None
        if buffer is not None:
            self._np_bits = None
            bits, self._bits = self._bits, bytearray(0)
            if isinstance(bits, memoryview):
                bits.release()
            buffer.unlink()

    # -- internals -------------------------------------------------------------
    def _hash_pair(self, key: bytes) -> Tuple[int, int]:
        """``(h1, h2)`` for Kirsch-Mitzenmacher double hashing.

        ``h2`` is forced odd so the probe sequence cycles through all bit
        positions for power-of-two ``num_bits`` as well.
        """
        if isinstance(key, str):
            key = key.encode("utf-8")
        if self.digest_keys and len(key) >= _DIGEST_KEY_MIN_BYTES:
            return (
                int.from_bytes(key[:8], "big"),
                int.from_bytes(key[8:16], "big") | 1,
            )
        digest = hashlib.sha256(key).digest()
        return (
            int.from_bytes(digest[:8], "big"),
            int.from_bytes(digest[8:16], "big") | 1,
        )

    def _indexes(self, key: bytes) -> Iterable[int]:
        """Bit indexes probed for ``key`` (kept for introspection/tests)."""
        h1, h2 = self._hash_pair(key)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def _set_bit(self, index: int) -> None:
        self._bits[index >> 3] |= 1 << (index & 7)

    def _get_bit(self, index: int) -> bool:
        return bool(self._bits[index >> 3] & (1 << (index & 7)))

    # -- public API -------------------------------------------------------------
    #
    # The probe loops below walk the Kirsch-Mitzenmacher sequence
    # ``(h1 + i * h2) % num_bits`` incrementally: reduce ``h1``/``h2`` once,
    # then add-and-conditionally-subtract per index.  That replaces a 64-bit
    # multiply and wide modulo per probe with small-int arithmetic while
    # visiting exactly the indexes ``_indexes`` yields.  The batch methods
    # additionally special-case 20-byte keys (SHA-1 fingerprints, the hot
    # case) to derive both hash words from a single ``int.from_bytes``.

    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        add_one = self._add_one
        if add_one is not None:
            add_one(key)
            self._count += 1
            return
        h1, h2 = self._hash_pair(key)
        bits = self._bits
        num_bits = self.num_bits
        index = h1 % num_bits
        step = h2 % num_bits
        for _ in range(self.num_hashes):
            bits[index >> 3] |= 1 << (index & 7)
            index += step
            if index >= num_bits:
                index -= num_bits
        self._count += 1

    def _packed_words(self, keys) -> Optional[tuple]:
        """Flat ``(h1, h2)`` words when ``keys`` can take the packed path.

        Eligible inputs: anything exposing ``hash_words()`` (a
        :class:`~repro.core.digest_batch.DigestBatch`, which has the words
        cached for the whole routed batch), or a non-empty list/tuple where
        *every* element is a 20-byte ``bytes`` digest.  The per-key length
        check is mandatory -- mixed-length keys that merely sum to a
        multiple of 20 would otherwise hash wrong silently.  Returns
        ``None`` when the batch must go through the scalar oracle instead
        (non-digest keys, ``digest_keys=False``, or an un-unrollable shape).
        """
        if self._kernels is None or not self.digest_keys:
            return None
        hash_words = getattr(keys, "hash_words", None)
        if hash_words is not None:
            return hash_words()
        if type(keys) in (list, tuple) and keys:
            for key in keys:
                if type(key) is not bytes or len(key) != 20:
                    return None
            return digest_hash_words(b"".join(keys), len(keys))
        return None

    # -- columnar numpy kernels --------------------------------------------------
    @property
    def columnar_eligible(self) -> bool:
        """Whether the columnar kernels can serve this filter's batches.

        Requires the numpy backend, digest keys, an unrollable shape (the
        scalar single-key kernels double as the columnar family's re-probe
        and insert tail), and exact uint64 probe arithmetic.
        """
        return (
            HAVE_NUMPY
            and self._kernels is not None
            and self.digest_keys
            and self.num_bits < _NP_MAX_BITS
        )

    def np_bits(self):
        """Writable ``np.uint8`` view of the live bit vector (zero-copy).

        ``np.frombuffer`` over the same ``bytearray``/shared-memory
        ``memoryview`` the scalar kernels mutate, so for a shm-backed
        filter every attached process (serving workers, sweep pools)
        gathers against one physical copy.  The view is cached; teardown
        (:meth:`close_shared`/:meth:`unlink_shared`) drops it before
        releasing the mapping.  ``None`` when the numpy backend is off.
        """
        view = self._np_bits
        if view is None:
            if not HAVE_NUMPY:
                return None
            view = self._np_bits = _np.frombuffer(self._bits, dtype=_np.uint8)
        return view

    def _packed_words_np(self, keys):
        """``(n, 2)`` uint64 word array when ``keys`` can take the columnar path.

        Same eligibility as :meth:`_packed_words` plus: the numpy backend
        must be active and ``num_bits`` small enough for exact uint64
        probe arithmetic.  ``None`` means fall back (packed or scalar).
        """
        if (
            not HAVE_NUMPY
            or self._kernels is None
            or not self.digest_keys
            or self.num_bits >= _NP_MAX_BITS
        ):
            return None
        hash_words_np = getattr(keys, "hash_words_np", None)
        if hash_words_np is not None:
            return hash_words_np()
        if type(keys) in (list, tuple) and keys:
            for key in keys:
                if type(key) is not bytes or len(key) != 20:
                    return None
            return digest_hash_words_np(b"".join(keys), len(keys))
        return None

    def _probe_indexes_np(self, words):
        """``(num_hashes, n)`` probe-index matrix, scalar-arithmetic-exact.

        The scalar kernels walk ``index += step; if index >= nb: index -=
        nb`` from ``index0 = h1 % nb`` with ``step = (h2 | 1) % nb``; since
        both operands stay below ``nb``, the walk is exactly ``(index0 +
        i * step) % nb``, which vectorizes as one broadcast multiply-add
        and one modulo over the whole ``(num_hashes, n)`` plane (no
        per-round Python loop).  ``_NP_MAX_BITS`` bounds ``nb`` so the
        ``uint64`` products cannot overflow.  Every visited index -- and
        therefore every bit touched -- is identical to the packed-Python
        path.
        """
        nb = _np.uint64(self.num_bits)
        index = words[:, 0] % nb
        num_hashes = self.num_hashes
        if num_hashes == 1:
            return index.reshape(1, -1)
        step = (words[:, 1] | _np.uint64(1)) % nb
        rounds = _np.arange(num_hashes, dtype=_np.uint64).reshape(-1, 1)
        return (index[_np.newaxis, :] + rounds * step[_np.newaxis, :]) % nb

    def _add_words_np(self, words) -> None:
        indexes = self._probe_indexes_np(words)
        byte_idx = (indexes >> _np.uint64(3)).astype(_np.intp).ravel()
        masks = _np.left_shift(
            _np.uint8(1), (indexes & _np.uint64(7)).astype(_np.uint8)
        ).ravel()
        # bitwise_or.at, not fancy-assign: duplicate byte indexes within a
        # batch must all land, exactly as the scalar loop ORs them in turn.
        _np.bitwise_or.at(self.np_bits(), byte_idx, masks)

    def _contains_words_np(self, words) -> List[bool]:
        indexes = self._probe_indexes_np(words)
        byte_idx = (indexes >> _np.uint64(3)).astype(_np.intp)
        masks = _np.left_shift(
            _np.uint8(1), (indexes & _np.uint64(7)).astype(_np.uint8)
        )
        hits = (self.np_bits()[byte_idx] & masks) != 0
        return hits.all(axis=0).tolist()

    def _prefetch_probe_np(self, words):
        """``(verdicts, rows)`` for the columnar fused node kernels.

        ``verdicts`` is the whole batch's membership list against the
        *current* bits; ``rows[i]`` is key ``i``'s full probe-index list
        when its verdict is ``False`` -- the fused kernel re-checks
        staleness and sets the negative-path bits straight from it, so no
        per-key hashing or modulo survives on the columnar path -- and
        ``None`` for prefetched positives, which never need their indexes
        again (bits are only ever set, so a ``True`` cannot go stale).
        Materializing rows only for the negatives keeps the duplicate-
        heavy steady state (the paper's headline workload) almost free.
        """
        indexes = self._probe_indexes_np(words)
        byte_idx = (indexes >> _np.uint64(3)).astype(_np.intp)
        masks = _np.left_shift(
            _np.uint8(1), (indexes & _np.uint64(7)).astype(_np.uint8)
        )
        hits = (self.np_bits()[byte_idx] & masks) != 0
        verdict = hits.all(axis=0)
        rows: List = [None] * indexes.shape[1]
        false_cols = _np.flatnonzero(~verdict)
        if false_cols.size:
            false_rows = indexes[:, false_cols].T.tolist()
            for col, row in zip(false_cols.tolist(), false_rows):
                rows[col] = row
        return verdict.tolist(), rows

    def add_many_np(self, keys: Iterable[bytes]) -> None:
        """Columnar insert regardless of batch size (bench/test entry point).

        Bit-identical to :meth:`add_many_scalar`; ineligible batches (or a
        missing numpy backend) defer to :meth:`add_many`.
        """
        words = self._packed_words_np(keys)
        if words is None:
            self.add_many(keys)
            return
        self._add_words_np(words)
        self._count += int(words.shape[0])

    def contains_many_np(self, keys: Sequence[bytes]) -> List[bool]:
        """Columnar membership probe (bench/test entry point)."""
        words = self._packed_words_np(keys)
        if words is None:
            return self.contains_many(keys)
        return self._contains_words_np(words)

    def add_many(self, keys: Iterable[bytes]) -> None:
        """Insert many keys with per-call overhead amortised across the batch.

        Packed fast path: a ``DigestBatch`` or an all-20-byte-digest batch
        derives every hash word with one ``struct.unpack`` and sets bits
        through the words kernel; with the numpy backend active, batches of
        at least ``REPRO_NUMPY_MIN_BATCH`` digests run the columnar kernel
        instead (same bits).  Anything else falls through to
        :meth:`add_many_scalar` -- same bits, same count, measured per key.
        """
        if (
            HAVE_NUMPY
            and getattr(keys, "__len__", None) is not None
            and len(keys) >= NUMPY_MIN_BATCH
        ):
            words_np = self._packed_words_np(keys)
            if words_np is not None:
                self._add_words_np(words_np)
                self._count += int(words_np.shape[0])
                return
        words = self._packed_words(keys)
        if words is not None:
            self._kernels[5](words, self._bits)
            self._count += len(words) >> 1
            return
        if hasattr(keys, "hash_words"):  # DigestBatch on a non-packed shape
            keys = keys.digests
        self.add_many_scalar(keys)

    def add_digests(self, digests: Sequence[bytes]) -> None:
        """Insert keys the caller guarantees are 20-byte digests.

        Trusted-input variant of :meth:`add_many` for internal callers
        whose keys come straight out of another digest-keyed structure
        (replica propagation, recovery replay): it skips the per-key
        shape validation and packs/unpacks the batch directly.  Falls
        back to the scalar oracle when the filter is not digest-keyed or
        has an un-unrollable shape.  Same bits, same count as
        :meth:`add_many` for the same keys.
        """
        kernels = self._kernels
        if kernels is None or not self.digest_keys:
            self.add_many_scalar(digests)
            return
        count = len(digests)
        if not count:
            return
        if HAVE_NUMPY and count >= NUMPY_MIN_BATCH and self.num_bits < _NP_MAX_BITS:
            self._add_words_np(digest_hash_words_np(b"".join(digests), count))
            self._count += count
            return
        kernels[5](digest_hash_words(b"".join(digests), count), self._bits)
        self._count += count

    def add_many_scalar(self, keys: Iterable[bytes]) -> None:
        """Per-key insert loop: the reference oracle for the packed path.

        This is the pre-vectorization :meth:`add_many` body, retained
        verbatim; the differential tests assert the packed kernels leave
        the bit vector byte-identical to this.
        """
        if self._kernels is not None:
            if not isinstance(keys, (list, tuple)):
                keys = list(keys)
            self._kernels[1](keys, self._bits, None, self._hash_pair, self.digest_keys)
            self._count += len(keys)
            return
        # Generic loop for shapes too large to unroll.
        bits = self._bits
        num_bits = self.num_bits
        num_hashes = self.num_hashes
        hash_pair = self._hash_pair
        inserted = 0
        for key in keys:
            h1, h2 = hash_pair(key)
            index = h1 % num_bits
            step = h2 % num_bits
            for _ in range(num_hashes):
                bits[index >> 3] |= 1 << (index & 7)
                index += step
                if index >= num_bits:
                    index -= num_bits
            inserted += 1
        self._count += inserted

    def update(self, keys: Iterable[bytes]) -> None:
        """Insert many keys (alias of :meth:`add_many`)."""
        self.add_many(keys)

    def __contains__(self, key: bytes) -> bool:
        """``True`` if the key *may* have been added, ``False`` if definitely not."""
        contains_one = self._contains_one
        if contains_one is not None:
            return contains_one(key)
        h1, h2 = self._hash_pair(key)
        bits = self._bits
        num_bits = self.num_bits
        index = h1 % num_bits
        step = h2 % num_bits
        for _ in range(self.num_hashes):
            if not bits[index >> 3] & (1 << (index & 7)):
                return False
            index += step
            if index >= num_bits:
                index -= num_bits
        return True

    def contains_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Membership verdicts for a batch of keys, in input order.

        Takes the columnar numpy path for eligible batches of at least
        ``REPRO_NUMPY_MIN_BATCH`` keys, else the packed words path for
        ``DigestBatch``/all-digest batches (see :meth:`add_many`);
        otherwise defers to the scalar oracle.
        """
        if (
            HAVE_NUMPY
            and getattr(keys, "__len__", None) is not None
            and len(keys) >= NUMPY_MIN_BATCH
        ):
            words_np = self._packed_words_np(keys)
            if words_np is not None:
                return self._contains_words_np(words_np)
        words = self._packed_words(keys)
        if words is not None:
            verdicts: List[bool] = []
            self._kernels[4](words, self._bits, verdicts.append)
            return verdicts
        if hasattr(keys, "hash_words"):  # DigestBatch on a non-packed shape
            keys = keys.digests
        return self.contains_many_scalar(keys)

    def contains_many_scalar(self, keys: Sequence[bytes]) -> List[bool]:
        """Per-key probe loop: the reference oracle for the packed path."""
        verdicts: List[bool] = []
        if self._kernels is not None:
            self._kernels[0](keys, self._bits, verdicts.append, self._hash_pair, self.digest_keys)
            return verdicts
        # Generic loop for shapes too large to unroll.
        bits = self._bits
        num_bits = self.num_bits
        num_hashes = self.num_hashes
        hash_pair = self._hash_pair
        append = verdicts.append
        for key in keys:
            h1, h2 = hash_pair(key)
            index = h1 % num_bits
            step = h2 % num_bits
            for _ in range(num_hashes):
                if not bits[index >> 3] & (1 << (index & 7)):
                    append(False)
                    break
                index += step
                if index >= num_bits:
                    index -= num_bits
            else:
                append(True)
        return verdicts

    def might_contain(self, key: bytes) -> bool:
        """Alias for ``key in filter`` with an explicit name."""
        return key in self

    @property
    def count(self) -> int:
        """Number of insertions performed (not distinct keys)."""
        return self._count

    @property
    def bit_size(self) -> int:
        """Size of the bit vector in bits."""
        return self.num_bits

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the bit vector."""
        return len(self._bits)

    def raw_bits(self):
        """The live bit vector, for fused external kernels.

        The hash node's fused batch kernel (:mod:`repro.core.bucket_kernel`)
        probes and sets bits inline with the exact arithmetic of this
        filter's own kernels; it reads the vector once per batch through
        this accessor.  The object identity is stable for the filter's
        lifetime (``clear``/``restore_payload`` mutate in place), matching
        the contract the pre-bound single-key kernels rely on.
        """
        return self._bits

    def fill_ratio(self) -> float:
        """Fraction of bits set (used to estimate the current FP rate).

        Popcounts through :data:`_POPCOUNT_TABLE` in bounded chunks.  The
        previous implementation materialized the entire bit vector as one
        Python big-int (``int.from_bytes``) per call -- an O(num_bits)
        allocation on every stats/``/stats`` poll, megabytes for the
        filter sizes the benchmarks run.
        """
        bits = self._bits
        table = _POPCOUNT_TABLE
        set_bits = 0
        view = memoryview(bits)
        chunk = 1 << 16
        for start in range(0, len(bits), chunk):
            set_bits += sum(bytes(view[start:start + chunk]).translate(table))
        return set_bits / self.num_bits

    def estimated_false_positive_rate(self) -> float:
        """Estimate of the current false-positive probability."""
        return self.fill_ratio() ** self.num_hashes

    def estimated_cardinality(self) -> int:
        """Estimate of distinct keys inserted, from the fill ratio.

        The standard ``-m/k * ln(1 - fill)`` estimator.  Unlike
        :attr:`count` (raw insertions) this approximates *distinct* keys,
        which is what :meth:`union` needs to avoid double-counting overlap.
        """
        fill = self.fill_ratio()
        if fill <= 0.0:
            return 0
        if fill >= 1.0:  # saturated: the estimator diverges; report capacity
            return self.num_bits
        return int(round(-(self.num_bits / self.num_hashes) * math.log(1.0 - fill)))

    def clear(self) -> None:
        """Remove all entries (reset every bit).

        Zeroes the bit vector in place: the single-key kernels are bound to
        the bytearray object at construction, so it must never be replaced.
        """
        self._bits[:] = bytes(len(self._bits))
        self._count = 0

    def snapshot_payload(self) -> bytes:
        """Copy of the raw bit vector, for persistence snapshots."""
        return bytes(self._bits)

    def restore_payload(self, payload: bytes, count: int) -> None:
        """Overwrite the bit vector from a snapshot payload.

        The copy happens in place (the single-key kernels are bound to the
        bytearray object at construction), so the payload must match the
        filter's geometry exactly.
        """
        if len(payload) != len(self._bits):
            raise ValueError(
                f"snapshot payload is {len(payload)} bytes; "
                f"this filter holds {len(self._bits)}"
            )
        self._bits[:] = payload
        self._count = int(count)

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise OR of two filters with identical parameters.

        The merged ``count`` is a *clamped cardinality estimate*, not the
        sum of the inputs' insertion counts: summing double-counts every
        key present in both filters (two filters holding the same 500 keys
        used to report ``count == 1000``).  The estimate is exact when one
        side is empty and bounded by ``[max(counts), sum(counts)]`` always;
        like :attr:`count` itself it counts insertions, not a guaranteed
        distinct-key figure.
        """
        if (self.num_bits, self.num_hashes, self.digest_keys) != (
            other.num_bits,
            other.num_hashes,
            other.digest_keys,
        ):
            raise ValueError("cannot union bloom filters with different parameters")
        merged = BloomFilter(
            expected_items=self.expected_items,
            false_positive_rate=self.false_positive_rate,
            num_bits=self.num_bits,
            num_hashes=self.num_hashes,
            digest_keys=self.digest_keys,
        )
        # In-place fill (merged's single-key kernels are bound to its bit
        # vector, so the object must not be replaced), OR-ing 8 bytes per
        # step over memoryview word casts instead of building a throwaway
        # generator-fed ``bytes`` of the whole vector.
        a_view = memoryview(self._bits)
        b_view = memoryview(other._bits)
        out_view = memoryview(merged._bits)
        word_bytes = len(a_view) - (len(a_view) & 7)
        if word_bytes:
            a_words = a_view[:word_bytes].cast("Q")
            b_words = b_view[:word_bytes].cast("Q")
            out_words = out_view[:word_bytes].cast("Q")
            for i in range(len(a_words)):
                out_words[i] = a_words[i] | b_words[i]
        for i in range(word_bytes, len(a_view)):
            out_view[i] = a_view[i] | b_view[i]
        low = max(self._count, other._count)
        high = self._count + other._count
        merged._count = min(high, max(low, merged.estimated_cardinality()))
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BloomFilter bits={self.num_bits} hashes={self.num_hashes} "
            f"count={self._count} fill={self.fill_ratio():.3f}>"
        )
