"""Bloom filter.

The SHHC node keeps a bloom filter in RAM in front of the SSD-resident hash
table so that lookups for fingerprints that are definitely not stored avoid
the flash read entirely (paper §III.B).  This implementation is a standard
partitioned-by-hash bloom filter over a Python ``bytearray`` bit vector, sized
from a target false-positive rate.

Zero-rehash fast path
---------------------
The keys this filter guards in SHHC are SHA-1 fingerprints: 20 bytes that are
already uniformly distributed.  Hashing a cryptographic digest *again* (the
classic SHA-256 double-hashing setup) costs more than every other operation
on the probe path combined, so byte keys of at least 16 bytes take a
digest-key fast path that reads ``h1``/``h2`` for Kirsch-Mitzenmacher double
hashing straight out of the key material.  Short keys and strings keep the
SHA-256 path, which is also available explicitly via ``digest_keys=False``
for callers whose long keys are *not* uniform (e.g. file paths).

Batch APIs (:meth:`BloomFilter.add_many` / :meth:`BloomFilter.contains_many`)
run the probe loop with every attribute bound to a local, amortising
per-call overhead across a batch; the hash cluster's batched lookups use
them.
"""

from __future__ import annotations

import hashlib
import math
from functools import partial
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = ["BloomFilter", "optimal_parameters"]

#: Byte keys at least this long are treated as uniform digests by default.
_DIGEST_KEY_MIN_BYTES = 16

#: Unrolled batch kernels are generated for hash counts up to this; larger
#: (unusual) configurations fall back to the generic probe loop.
_MAX_UNROLLED_HASHES = 16

#: Cache of generated batch kernels keyed by (num_bits, num_hashes):
#: nodes in a cluster share parameters, so each shape compiles once.
_KERNEL_CACHE: dict = {}


def _batch_kernels(num_bits: int, num_hashes: int):
    """Return ``(contains_many, add_many, contains_one, add_one)`` kernels.

    The kernels are specialised with ``exec`` (the ``namedtuple`` technique):
    ``num_bits`` is baked in as a constant and the Kirsch-Mitzenmacher probe
    walk is fully unrolled, which removes the per-index loop machinery that
    otherwise dominates a pure-Python probe.  20-byte keys (SHA-1
    fingerprints, the hot case) derive both hash words from one
    ``int.from_bytes``; every other key goes through the caller-supplied
    ``hash_pair`` (which honours ``digest_keys``).  The ``*_one`` variants
    serve the single-key :meth:`BloomFilter.__contains__` /
    :meth:`BloomFilter.add` hot path (bound via ``functools.partial``, so a
    probe costs one call frame); they take ``(bits, hash_pair, digest_keys,
    key)`` so the per-filter state can be pre-bound.  Returns ``None`` for
    shapes too large to unroll.
    """
    if num_hashes > _MAX_UNROLLED_HASHES:
        return None
    shape = (num_bits, num_hashes)
    kernels = _KERNEL_CACHE.get(shape)
    if kernels is not None:
        return kernels

    def _header(name: str) -> list:
        return [
            f"def {name}(keys, bits, emit, hash_pair, digest_keys):",
            "    from_bytes = int.from_bytes",
            f"    nb = {num_bits}",
            "    for key in keys:",
            "        if digest_keys and type(key) is bytes and len(key) == 20:",
            "            whole = from_bytes(key, 'big')",
            "            index = (whole >> 96) % nb",
            "            step = (((whole >> 32) & 0xFFFFFFFFFFFFFFFF) | 1) % nb",
            "        else:",
            "            h1, h2 = hash_pair(key)",
            "            index = h1 % nb",
            "            step = h2 % nb",
        ]

    probe_lines = _header("contains_kernel")
    for i in range(num_hashes):
        probe_lines.append("        if not bits[index >> 3] & (1 << (index & 7)):")
        probe_lines.append("            emit(False); continue")
        if i < num_hashes - 1:
            probe_lines.append("        index += step")
            probe_lines.append("        if index >= nb: index -= nb")
    probe_lines.append("        emit(True)")

    add_lines = _header("add_kernel")
    for i in range(num_hashes):
        add_lines.append("        bits[index >> 3] |= 1 << (index & 7)")
        if i < num_hashes - 1:
            add_lines.append("        index += step")
            add_lines.append("        if index >= nb: index -= nb")

    def _one_header(name: str) -> list:
        return [
            f"def {name}(bits, hash_pair, digest_keys, key):",
            f"    nb = {num_bits}",
            "    if digest_keys and type(key) is bytes and len(key) == 20:",
            "        whole = int.from_bytes(key, 'big')",
            "        index = (whole >> 96) % nb",
            "        step = (((whole >> 32) & 0xFFFFFFFFFFFFFFFF) | 1) % nb",
            "    else:",
            "        h1, h2 = hash_pair(key)",
            "        index = h1 % nb",
            "        step = h2 % nb",
        ]

    probe_one_lines = _one_header("contains_one_kernel")
    for i in range(num_hashes):
        probe_one_lines.append("    if not bits[index >> 3] & (1 << (index & 7)):")
        probe_one_lines.append("        return False")
        if i < num_hashes - 1:
            probe_one_lines.append("    index += step")
            probe_one_lines.append("    if index >= nb: index -= nb")
    probe_one_lines.append("    return True")

    add_one_lines = _one_header("add_one_kernel")
    for i in range(num_hashes):
        add_one_lines.append("    bits[index >> 3] |= 1 << (index & 7)")
        if i < num_hashes - 1:
            add_one_lines.append("    index += step")
            add_one_lines.append("    if index >= nb: index -= nb")

    namespace: dict = {}
    exec("\n".join(probe_lines), namespace)  # noqa: S102 - static template, no user input
    exec("\n".join(add_lines), namespace)  # noqa: S102
    exec("\n".join(probe_one_lines), namespace)  # noqa: S102
    exec("\n".join(add_one_lines), namespace)  # noqa: S102
    kernels = (
        namespace["contains_kernel"],
        namespace["add_kernel"],
        namespace["contains_one_kernel"],
        namespace["add_one_kernel"],
    )
    _KERNEL_CACHE[shape] = kernels
    return kernels


def optimal_parameters(expected_items: int, false_positive_rate: float) -> tuple[int, int]:
    """Return ``(bits, hash_count)`` for the target capacity and FP rate."""
    if expected_items <= 0:
        raise ValueError("expected_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = int(math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
    hashes = max(1, int(round(bits / expected_items * math.log(2))))
    return max(8, bits), hashes


class BloomFilter:
    """A classic bloom filter over byte-string keys.

    Parameters
    ----------
    expected_items:
        The number of keys the filter is sized for.
    false_positive_rate:
        Target false-positive probability at ``expected_items`` insertions.
    num_bits / num_hashes:
        Explicit sizing; overrides the derived parameters when given.
    digest_keys:
        When ``True`` (the default), byte keys of >= 16 bytes are assumed to
        be uniformly distributed digests and ``h1``/``h2`` are read directly
        from the key bytes instead of re-hashing with SHA-256.  Set to
        ``False`` when long keys may be structured (non-uniform).
    """

    def __init__(
        self,
        expected_items: int = 1_000_000,
        false_positive_rate: float = 0.01,
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
        digest_keys: bool = True,
    ) -> None:
        derived_bits, derived_hashes = optimal_parameters(expected_items, false_positive_rate)
        self.num_bits = int(num_bits) if num_bits is not None else derived_bits
        self.num_hashes = int(num_hashes) if num_hashes is not None else derived_hashes
        if self.num_bits <= 0 or self.num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self.expected_items = expected_items
        self.false_positive_rate = false_positive_rate
        self.digest_keys = bool(digest_keys)
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0
        # Unrolled kernels for this filter shape, or None when num_hashes is
        # too large to unroll (generic loop then).  The single-key variants
        # are pre-bound to this filter's state (the bit vector is mutated in
        # place and never reassigned, so binding it once is safe); they are
        # the bodies of ``add``/``__contains__`` and what the hash node's
        # batch loop calls directly for live probes.
        self._kernels = _batch_kernels(self.num_bits, self.num_hashes)
        if self._kernels is not None:
            self._contains_one: Optional[Callable[[bytes], bool]] = partial(
                self._kernels[2], self._bits, self._hash_pair, self.digest_keys
            )
            self._add_one: Optional[Callable[[bytes], None]] = partial(
                self._kernels[3], self._bits, self._hash_pair, self.digest_keys
            )
        else:
            self._contains_one = None
            self._add_one = None
        #: Single-key membership probe bound to the fastest implementation
        #: for this shape; semantically identical to ``key in filter`` and
        #: what hot loops should bind instead of ``__contains__``.
        self.contains_one: Callable[[bytes], bool] = (
            self._contains_one if self._contains_one is not None else self.__contains__
        )
        #: Single-key insert for hot loops.  Unlike :meth:`add` it does NOT
        #: advance the insert count -- a tight loop calls this per key and
        #: settles once with :meth:`count_inserts` (state-identical).
        self.add_one: Callable[[bytes], None] = (
            self._add_one if self._add_one is not None else self._add_uncounted
        )

    def _add_uncounted(self, key: bytes) -> None:
        """Generic-shape fallback for :attr:`add_one` (no count advance)."""
        self.add(key)
        self._count -= 1

    def count_inserts(self, amount: int) -> None:
        """Advance the insert count for keys added via :attr:`add_one`."""
        self._count += amount

    # -- internals -------------------------------------------------------------
    def _hash_pair(self, key: bytes) -> Tuple[int, int]:
        """``(h1, h2)`` for Kirsch-Mitzenmacher double hashing.

        ``h2`` is forced odd so the probe sequence cycles through all bit
        positions for power-of-two ``num_bits`` as well.
        """
        if isinstance(key, str):
            key = key.encode("utf-8")
        if self.digest_keys and len(key) >= _DIGEST_KEY_MIN_BYTES:
            return (
                int.from_bytes(key[:8], "big"),
                int.from_bytes(key[8:16], "big") | 1,
            )
        digest = hashlib.sha256(key).digest()
        return (
            int.from_bytes(digest[:8], "big"),
            int.from_bytes(digest[8:16], "big") | 1,
        )

    def _indexes(self, key: bytes) -> Iterable[int]:
        """Bit indexes probed for ``key`` (kept for introspection/tests)."""
        h1, h2 = self._hash_pair(key)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def _set_bit(self, index: int) -> None:
        self._bits[index >> 3] |= 1 << (index & 7)

    def _get_bit(self, index: int) -> bool:
        return bool(self._bits[index >> 3] & (1 << (index & 7)))

    # -- public API -------------------------------------------------------------
    #
    # The probe loops below walk the Kirsch-Mitzenmacher sequence
    # ``(h1 + i * h2) % num_bits`` incrementally: reduce ``h1``/``h2`` once,
    # then add-and-conditionally-subtract per index.  That replaces a 64-bit
    # multiply and wide modulo per probe with small-int arithmetic while
    # visiting exactly the indexes ``_indexes`` yields.  The batch methods
    # additionally special-case 20-byte keys (SHA-1 fingerprints, the hot
    # case) to derive both hash words from a single ``int.from_bytes``.

    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        add_one = self._add_one
        if add_one is not None:
            add_one(key)
            self._count += 1
            return
        h1, h2 = self._hash_pair(key)
        bits = self._bits
        num_bits = self.num_bits
        index = h1 % num_bits
        step = h2 % num_bits
        for _ in range(self.num_hashes):
            bits[index >> 3] |= 1 << (index & 7)
            index += step
            if index >= num_bits:
                index -= num_bits
        self._count += 1

    def add_many(self, keys: Iterable[bytes]) -> None:
        """Insert many keys with per-call overhead amortised across the batch."""
        if self._kernels is not None:
            if not isinstance(keys, (list, tuple)):
                keys = list(keys)
            self._kernels[1](keys, self._bits, None, self._hash_pair, self.digest_keys)
            self._count += len(keys)
            return
        # Generic loop for shapes too large to unroll.
        bits = self._bits
        num_bits = self.num_bits
        num_hashes = self.num_hashes
        hash_pair = self._hash_pair
        inserted = 0
        for key in keys:
            h1, h2 = hash_pair(key)
            index = h1 % num_bits
            step = h2 % num_bits
            for _ in range(num_hashes):
                bits[index >> 3] |= 1 << (index & 7)
                index += step
                if index >= num_bits:
                    index -= num_bits
            inserted += 1
        self._count += inserted

    def update(self, keys: Iterable[bytes]) -> None:
        """Insert many keys (alias of :meth:`add_many`)."""
        self.add_many(keys)

    def __contains__(self, key: bytes) -> bool:
        """``True`` if the key *may* have been added, ``False`` if definitely not."""
        contains_one = self._contains_one
        if contains_one is not None:
            return contains_one(key)
        h1, h2 = self._hash_pair(key)
        bits = self._bits
        num_bits = self.num_bits
        index = h1 % num_bits
        step = h2 % num_bits
        for _ in range(self.num_hashes):
            if not bits[index >> 3] & (1 << (index & 7)):
                return False
            index += step
            if index >= num_bits:
                index -= num_bits
        return True

    def contains_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Membership verdicts for a batch of keys, in input order."""
        verdicts: List[bool] = []
        if self._kernels is not None:
            self._kernels[0](keys, self._bits, verdicts.append, self._hash_pair, self.digest_keys)
            return verdicts
        # Generic loop for shapes too large to unroll.
        bits = self._bits
        num_bits = self.num_bits
        num_hashes = self.num_hashes
        hash_pair = self._hash_pair
        append = verdicts.append
        for key in keys:
            h1, h2 = hash_pair(key)
            index = h1 % num_bits
            step = h2 % num_bits
            for _ in range(num_hashes):
                if not bits[index >> 3] & (1 << (index & 7)):
                    append(False)
                    break
                index += step
                if index >= num_bits:
                    index -= num_bits
            else:
                append(True)
        return verdicts

    def might_contain(self, key: bytes) -> bool:
        """Alias for ``key in filter`` with an explicit name."""
        return key in self

    @property
    def count(self) -> int:
        """Number of insertions performed (not distinct keys)."""
        return self._count

    @property
    def bit_size(self) -> int:
        """Size of the bit vector in bits."""
        return self.num_bits

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the bit vector."""
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of bits set (used to estimate the current FP rate)."""
        value = int.from_bytes(self._bits, "big")
        try:
            set_bits = value.bit_count()
        except AttributeError:  # pragma: no cover - Python < 3.10
            set_bits = bin(value).count("1")
        return set_bits / self.num_bits

    def estimated_false_positive_rate(self) -> float:
        """Estimate of the current false-positive probability."""
        return self.fill_ratio() ** self.num_hashes

    def clear(self) -> None:
        """Remove all entries (reset every bit).

        Zeroes the bit vector in place: the single-key kernels are bound to
        the bytearray object at construction, so it must never be replaced.
        """
        self._bits[:] = bytes(len(self._bits))
        self._count = 0

    def snapshot_payload(self) -> bytes:
        """Copy of the raw bit vector, for persistence snapshots."""
        return bytes(self._bits)

    def restore_payload(self, payload: bytes, count: int) -> None:
        """Overwrite the bit vector from a snapshot payload.

        The copy happens in place (the single-key kernels are bound to the
        bytearray object at construction), so the payload must match the
        filter's geometry exactly.
        """
        if len(payload) != len(self._bits):
            raise ValueError(
                f"snapshot payload is {len(payload)} bytes; "
                f"this filter holds {len(self._bits)}"
            )
        self._bits[:] = payload
        self._count = int(count)

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise OR of two filters with identical parameters."""
        if (self.num_bits, self.num_hashes, self.digest_keys) != (
            other.num_bits,
            other.num_hashes,
            other.digest_keys,
        ):
            raise ValueError("cannot union bloom filters with different parameters")
        merged = BloomFilter(
            expected_items=self.expected_items,
            false_positive_rate=self.false_positive_rate,
            num_bits=self.num_bits,
            num_hashes=self.num_hashes,
            digest_keys=self.digest_keys,
        )
        # In-place fill: merged's single-key kernels are bound to its bit
        # vector, so the object must not be replaced.
        merged._bits[:] = bytes(a | b for a, b in zip(self._bits, other._bits))
        merged._count = self._count + other._count
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BloomFilter bits={self.num_bits} hashes={self.num_hashes} "
            f"count={self._count} fill={self.fill_ratio():.3f}>"
        )
