"""Bloom filter.

The SHHC node keeps a bloom filter in RAM in front of the SSD-resident hash
table so that lookups for fingerprints that are definitely not stored avoid
the flash read entirely (paper §III.B).  This implementation is a standard
partitioned-by-hash bloom filter over a Python ``bytearray`` bit vector, sized
from a target false-positive rate.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Optional

__all__ = ["BloomFilter", "optimal_parameters"]


def optimal_parameters(expected_items: int, false_positive_rate: float) -> tuple[int, int]:
    """Return ``(bits, hash_count)`` for the target capacity and FP rate."""
    if expected_items <= 0:
        raise ValueError("expected_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = int(math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
    hashes = max(1, int(round(bits / expected_items * math.log(2))))
    return max(8, bits), hashes


class BloomFilter:
    """A classic bloom filter over byte-string keys.

    Parameters
    ----------
    expected_items:
        The number of keys the filter is sized for.
    false_positive_rate:
        Target false-positive probability at ``expected_items`` insertions.
    num_bits / num_hashes:
        Explicit sizing; overrides the derived parameters when given.
    """

    def __init__(
        self,
        expected_items: int = 1_000_000,
        false_positive_rate: float = 0.01,
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
    ) -> None:
        derived_bits, derived_hashes = optimal_parameters(expected_items, false_positive_rate)
        self.num_bits = int(num_bits) if num_bits is not None else derived_bits
        self.num_hashes = int(num_hashes) if num_hashes is not None else derived_hashes
        if self.num_bits <= 0 or self.num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self.expected_items = expected_items
        self.false_positive_rate = false_positive_rate
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0

    # -- internals -------------------------------------------------------------
    def _indexes(self, key: bytes) -> Iterable[int]:
        """Kirsch-Mitzenmacher double hashing over a SHA-256 digest."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        digest = hashlib.sha256(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd, so it cycles all bits
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def _set_bit(self, index: int) -> None:
        self._bits[index >> 3] |= 1 << (index & 7)

    def _get_bit(self, index: int) -> bool:
        return bool(self._bits[index >> 3] & (1 << (index & 7)))

    # -- public API -------------------------------------------------------------
    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        for index in self._indexes(key):
            self._set_bit(index)
        self._count += 1

    def update(self, keys: Iterable[bytes]) -> None:
        """Insert many keys."""
        for key in keys:
            self.add(key)

    def __contains__(self, key: bytes) -> bool:
        """``True`` if the key *may* have been added, ``False`` if definitely not."""
        return all(self._get_bit(index) for index in self._indexes(key))

    def might_contain(self, key: bytes) -> bool:
        """Alias for ``key in filter`` with an explicit name."""
        return key in self

    @property
    def count(self) -> int:
        """Number of insertions performed (not distinct keys)."""
        return self._count

    @property
    def bit_size(self) -> int:
        """Size of the bit vector in bits."""
        return self.num_bits

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the bit vector."""
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of bits set (used to estimate the current FP rate)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    def estimated_false_positive_rate(self) -> float:
        """Estimate of the current false-positive probability."""
        return self.fill_ratio() ** self.num_hashes

    def clear(self) -> None:
        """Remove all entries (reset every bit)."""
        self._bits = bytearray(len(self._bits))
        self._count = 0

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise OR of two filters with identical parameters."""
        if (self.num_bits, self.num_hashes) != (other.num_bits, other.num_hashes):
            raise ValueError("cannot union bloom filters with different parameters")
        merged = BloomFilter(
            expected_items=self.expected_items,
            false_positive_rate=self.false_positive_rate,
            num_bits=self.num_bits,
            num_hashes=self.num_hashes,
        )
        merged._bits = bytearray(a | b for a, b in zip(self._bits, other._bits))
        merged._count = self._count + other._count
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BloomFilter bits={self.num_bits} hashes={self.num_hashes} "
            f"count={self._count} fill={self.fill_ratio():.3f}>"
        )
