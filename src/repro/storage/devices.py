"""Calibrated storage / memory device models.

These models substitute for the paper's physical hardware (DDR3 RAM, SATA-II
SSD, 7.2k RPM HDD).  Each device exposes a *service time* for an access of a
given kind and size; the simulated components (hash nodes, baselines) acquire
the device as a :class:`~repro.simulation.resources.Resource` and hold it for
that service time, which reproduces queueing under load.

Default parameters follow widely published figures for circa-2010 hardware
(the paper's testbed era):

==============  =====================  ==========================
Device           Latency                Bandwidth
==============  =====================  ==========================
RAM              ~100 ns per access     ~10 GB/s
SATA-II SSD      ~90 µs read / ~230 µs  ~250 MB/s read / 180 MB/s
                 write (4 KB)           write
7.2k RPM HDD     ~6 ms seek + rotate    ~100 MB/s sequential
==============  =====================  ==========================

Absolute values are configurable; experiments rely on the *ratios* (RAM ≪ SSD
≪ HDD random access), which is what the SHHC design exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..simulation.engine import Event, Simulator
from ..simulation.resources import Resource
from ..simulation.stats import Counter, LatencyRecorder

__all__ = [
    "DeviceSpec",
    "StorageDevice",
    "RAM_SPEC",
    "SSD_SPEC",
    "HDD_SPEC",
    "make_ram",
    "make_ssd",
    "make_hdd",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Latency/bandwidth parameters of a storage or memory device.

    All times are seconds; bandwidths are bytes per second.
    """

    name: str
    read_latency: float
    write_latency: float
    read_bandwidth: float
    write_bandwidth: float
    concurrency: int = 1
    seek_latency: float = 0.0

    def read_time(self, size_bytes: int = 4096, random_access: bool = True) -> float:
        """Service time for a read of ``size_bytes``."""
        base = self.read_latency + (self.seek_latency if random_access else 0.0)
        return base + size_bytes / self.read_bandwidth

    def write_time(self, size_bytes: int = 4096, random_access: bool = True) -> float:
        """Service time for a write of ``size_bytes``."""
        base = self.write_latency + (self.seek_latency if random_access else 0.0)
        return base + size_bytes / self.write_bandwidth


RAM_SPEC = DeviceSpec(
    name="ram",
    read_latency=100e-9,
    write_latency=100e-9,
    read_bandwidth=10e9,
    write_bandwidth=10e9,
    concurrency=8,
)

SSD_SPEC = DeviceSpec(
    name="ssd",
    read_latency=90e-6,
    write_latency=230e-6,
    read_bandwidth=250e6,
    write_bandwidth=180e6,
    concurrency=4,
)

HDD_SPEC = DeviceSpec(
    name="hdd",
    read_latency=0.5e-3,
    write_latency=0.5e-3,
    read_bandwidth=100e6,
    write_bandwidth=100e6,
    concurrency=1,
    seek_latency=6e-3,
)


class StorageDevice:
    """A simulated device: a resource with spec-derived service times.

    The device can be used in two modes:

    * **Simulated** -- pass a :class:`Simulator`; :meth:`read` / :meth:`write`
      return events that complete after queueing plus service time.
    * **Immediate** -- no simulator; the access-time accounting still happens
      (useful for analytic cost models) but calls return instantly.
    """

    def __init__(self, spec: DeviceSpec, sim: Optional[Simulator] = None, name: str = "") -> None:
        self.spec = spec
        self.sim = sim
        self.name = name or spec.name
        self.counters = Counter()
        self.latency = LatencyRecorder(f"{self.name}.latency")
        self.busy_time = 0.0
        self._resource: Optional[Resource] = (
            Resource(sim, capacity=spec.concurrency, name=f"{self.name}.queue") if sim else None
        )

    # -- cost model (always available) ---------------------------------------
    def read_cost(self, size_bytes: int = 4096, random_access: bool = True) -> float:
        """Pure service time of a read, excluding queueing."""
        return self.spec.read_time(size_bytes, random_access)

    def write_cost(self, size_bytes: int = 4096, random_access: bool = True) -> float:
        """Pure service time of a write, excluding queueing."""
        return self.spec.write_time(size_bytes, random_access)

    # -- simulated access -----------------------------------------------------
    def read(self, size_bytes: int = 4096, random_access: bool = True) -> Event:
        """Perform a read; returns an event succeeding with the service time."""
        return self._access("read", self.read_cost(size_bytes, random_access))

    def write(self, size_bytes: int = 4096, random_access: bool = True) -> Event:
        """Perform a write; returns an event succeeding with the service time."""
        return self._access("write", self.write_cost(size_bytes, random_access))

    def _access(self, kind: str, service_time: float) -> Event:
        self.counters.increment(f"{kind}s")
        self.counters.increment(f"{kind}_time_ns", int(service_time * 1e9))
        self.busy_time += service_time
        self.latency.record(service_time)
        if self.sim is None or self._resource is None:
            done = Event(sim=_ImmediateSim(), name=f"{self.name}.{kind}")
            done.succeed(service_time)
            return done
        return self._simulated_access(service_time, kind)

    def busy(self, duration: float) -> Event:
        """Occupy the device for an externally computed ``duration``.

        Used when a caller has already accounted for the individual accesses
        (e.g. a batched lookup) and only needs the device's queue to reflect
        the aggregate busy time.  The returned event succeeds with the
        duration once the device has actually been held for it.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.busy_time += duration
        if self.sim is None or self._resource is None:
            done = Event(sim=_ImmediateSim(), name=f"{self.name}.busy")
            done.succeed(duration)
            return done
        return self._simulated_access(duration, "busy")

    def _simulated_access(self, service_time: float, kind: str) -> Event:
        assert self.sim is not None and self._resource is not None
        done = self.sim.event(f"{self.name}.{kind}")
        grant = self._resource.request()

        def _start(_grant_event: Event) -> None:
            def _finish() -> None:
                self._resource.release()
                done.succeed(service_time)

            self.sim.schedule(service_time, _finish)

        grant.add_callback(_start)
        return done

    # -- reporting ------------------------------------------------------------
    @property
    def reads(self) -> int:
        return self.counters.get("reads")

    @property
    def writes(self) -> int:
        return self.counters.get("writes")

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over ``elapsed`` seconds of simulated time."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.spec.concurrency))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StorageDevice {self.name} reads={self.reads} writes={self.writes}>"


class _ImmediateSim:
    """Minimal stand-in so :class:`Event` works without a real simulator."""

    def schedule(self, _delay: float, callback, *args) -> None:
        callback(*args)


def make_ram(sim: Optional[Simulator] = None, name: str = "ram", **overrides) -> StorageDevice:
    """RAM device with optional spec overrides (e.g. ``read_latency=...``)."""
    return StorageDevice(_override(RAM_SPEC, overrides), sim, name)


def make_ssd(sim: Optional[Simulator] = None, name: str = "ssd", **overrides) -> StorageDevice:
    """SATA-II-class SSD device with optional spec overrides."""
    return StorageDevice(_override(SSD_SPEC, overrides), sim, name)


def make_hdd(sim: Optional[Simulator] = None, name: str = "hdd", **overrides) -> StorageDevice:
    """7.2k-RPM HDD device with optional spec overrides."""
    return StorageDevice(_override(HDD_SPEC, overrides), sim, name)


def _override(spec: DeviceSpec, overrides: dict) -> DeviceSpec:
    if not overrides:
        return spec
    valid = {f for f in spec.__dataclass_fields__}  # type: ignore[attr-defined]
    unknown = set(overrides) - valid
    if unknown:
        raise TypeError(f"unknown device spec fields: {sorted(unknown)}")
    params = {f: getattr(spec, f) for f in valid}
    params.update(overrides)
    return DeviceSpec(**params)
