"""LRU cache used as the RAM tier of a hybrid hash node.

The paper's node keeps a least-recently-used list of fingerprints in RAM
(Figure 4): hits move the entry to the MRU end; when the cache is full the
LRU tail is destaged.  This implementation is an ``OrderedDict``-backed map
with hit/miss/eviction accounting and an optional eviction callback so the
node can hook destaging logic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, Optional, Tuple

__all__ = ["LRUCache"]


class LRUCache:
    """A bounded map with least-recently-used eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries; must be at least 1.
    on_evict:
        Optional callback ``(key, value) -> None`` invoked for every evicted
        entry (the hash node uses this to count destages).
    """

    def __init__(
        self,
        capacity: int,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    # -- core operations --------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``; a hit refreshes its recency."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        return default

    def touch(self, key: Hashable) -> bool:
        """Hit-test ``key`` with full :meth:`get` accounting.

        Counter and recency effects are identical to :meth:`get`; the
        stored value is not fetched, which callers that only cache
        presence flags never need.  This is the *reference shape* of the
        probe the hash node's batch loop inlines against :attr:`data`
        (with hit/miss counters settled per batch) -- the equivalence is
        pinned by tests/test_storage_bloom_lru.py.
        """
        entries = self._entries
        if key in entries:
            self.hits += 1
            entries.move_to_end(key)
            return True
        self.misses += 1
        return False

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without affecting recency or hit/miss counters."""
        return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any = True) -> Optional[Tuple[Hashable, Any]]:
        """Insert or refresh ``key``.  Returns the evicted ``(key, value)`` if any."""
        evicted: Optional[Tuple[Hashable, Any]] = None
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
        else:
            self.insertions += 1
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                evicted = self._entries.popitem(last=False)
                self.evictions += 1
                if self._on_evict is not None:
                    self._on_evict(*evicted)
        return evicted

    def put_new(self, key: Hashable, value: Any = True) -> None:
        """Insert a **known-absent** key (hot path).

        Identical to :meth:`put` for a key that is not in the cache --
        which the hash node guarantees, inserting only after a miss --
        minus the membership check and the evicted-pair return.
        """
        self.insertions += 1
        entries = self._entries
        entries[key] = value
        if len(entries) > self.capacity:
            evicted = entries.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(*evicted)

    def remove(self, key: Hashable) -> bool:
        """Delete ``key`` if present; returns whether it was there."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (does not fire eviction callbacks)."""
        self._entries.clear()

    # -- inspection --------------------------------------------------------------
    @property
    def data(self) -> "OrderedDict[Hashable, Any]":
        """The backing ordered dict (hot-loop escape hatch).

        Callers probing it directly must uphold the LRU contract
        themselves: a hit must ``move_to_end`` and hits/misses must be
        settled on the cache afterwards (see the hash node's batch loop).
        The object is stable for the cache's lifetime -- it is mutated in
        place, never replaced -- so binding it once per batch is safe.
        """
        return self._entries

    def __contains__(self, key: Hashable) -> bool:
        """Membership test *without* touching recency or counters."""
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate keys from least to most recently used."""
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lru_key(self) -> Optional[Hashable]:
        """The key that would be evicted next (``None`` if empty)."""
        return next(iter(self._entries), None)

    def mru_key(self) -> Optional[Hashable]:
        """The most recently used key (``None`` if empty)."""
        return next(reversed(self._entries), None)

    def hit_ratio(self) -> float:
        """Hits divided by total lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for reporting."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "insertions": self.insertions,
            "hit_ratio": self.hit_ratio(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LRUCache size={len(self._entries)}/{self.capacity} hit_ratio={self.hit_ratio():.3f}>"
