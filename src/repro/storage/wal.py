"""Write-ahead log for crash-safe metadata updates.

The simulated cluster does not strictly need durability, but the library is
also usable as a real dedup index; the WAL gives the cluster-side membership
and replication extensions (DESIGN.md ablation C) a recoverable record of
configuration changes, and the :class:`~repro.storage.hashstore.FileHashStore`
a generic journalling primitive.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["WriteAheadLog", "LogRecord"]


class LogRecord(dict):
    """A single WAL entry: a JSON-serialisable dict with ``lsn`` and ``kind``."""

    @property
    def lsn(self) -> int:
        return int(self["lsn"])

    @property
    def kind(self) -> str:
        return str(self["kind"])


class WriteAheadLog:
    """A newline-delimited JSON write-ahead log with checkpoint truncation.

    Records are appended with :meth:`append`, replayed with :meth:`replay`,
    and the log can be truncated up to a checkpoint LSN with
    :meth:`checkpoint`.  Records damaged by a crash (partial final line) are
    ignored during replay.

    ``fsync=True`` forces every append (and checkpoint rewrite) to disk
    before returning, trading throughput for power-loss durability.
    Checkpoint truncation is crash-safe: the surviving records are written to
    a temporary file that is atomically renamed over the log, so a crash at
    any point leaves either the old log or the new one -- never a partially
    truncated file.  A stale temporary file from a crashed checkpoint is
    removed on open (the rename never happened, so the original log is still
    authoritative).
    """

    def __init__(self, path: Optional[str] = None, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._next_lsn = 1
        self._records: List[LogRecord] = []
        if path is not None:
            os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
            stale_temp = path + ".tmp"
            if os.path.exists(stale_temp):
                os.remove(stale_temp)  # checkpoint crashed before the atomic rename
            if os.path.exists(path):
                self._recover()
            self._file = open(path, "a", encoding="utf-8")
        else:
            self._file = None

    def _recover(self) -> None:
        assert self.path is not None
        with open(self.path, "r", encoding="utf-8") as log:
            for line in log:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    break  # truncated tail from a crash
                record = LogRecord(payload)
                self._records.append(record)
                self._next_lsn = max(self._next_lsn, record.lsn + 1)

    # -- writing -----------------------------------------------------------------
    def append(self, kind: str, **payload: Any) -> LogRecord:
        """Append a record of ``kind`` with arbitrary JSON-serialisable payload."""
        record = LogRecord(lsn=self._next_lsn, kind=kind, **payload)
        self._next_lsn += 1
        self._records.append(record)
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
        return record

    # -- reading -----------------------------------------------------------------
    def replay(self, after_lsn: int = 0) -> Iterator[LogRecord]:
        """Yield records with ``lsn > after_lsn`` in order."""
        for record in self._records:
            if record.lsn > after_lsn:
                yield record

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the most recent record (0 when empty)."""
        return self._records[-1].lsn if self._records else 0

    # -- maintenance ----------------------------------------------------------------
    def checkpoint(self, up_to_lsn: int) -> int:
        """Drop records with ``lsn <= up_to_lsn``; returns how many were dropped."""
        before = len(self._records)
        self._records = [r for r in self._records if r.lsn > up_to_lsn]
        dropped = before - len(self._records)
        if self._file is not None and dropped:
            self._rewrite()
        return dropped

    def _rewrite(self) -> None:
        assert self.path is not None and self._file is not None
        self._file.close()
        temp_path = self.path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as temp:
            for record in self._records:
                temp.write(json.dumps(record) + "\n")
            temp.flush()
            if self.fsync:
                os.fsync(temp.fileno())
        os.replace(temp_path, self.path)
        self._file = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        """Close the backing file (no-op for in-memory logs)."""
        if self._file is not None and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
