"""Cuckoo hash table.

ChunkStash (Debnath et al., USENIX ATC 2010) -- the closest prior system the
paper compares against conceptually -- keeps a compact in-RAM cuckoo hash
index pointing at fingerprints stored on flash, giving one flash read per
lookup.  We implement a standard 2-choice cuckoo hash table with configurable
bucket associativity and a displacement bound, used by the ChunkStash-style
baseline in :mod:`repro.baselines.chunkstash`.

Vectorized batch path
---------------------
:meth:`CuckooHashTable.get_many` / :meth:`CuckooHashTable.contains_many` /
:meth:`CuckooHashTable.put_many` derive the hash words for a whole batch of
20-byte digest keys with one ``struct.unpack`` over the packed key buffer
(:func:`repro.storage.packing.digest_hash_words`) instead of two
``int.from_bytes`` calls per key.  The previous per-key loops are retained
verbatim as ``*_scalar`` methods -- the reference oracle the differential
tests (tests/test_vectorized_kernels.py) drive the vectorized path against.

With the optional numpy backend active (see :mod:`repro.storage.npy`) and
the *packed* bucket store in use, batches of at least
``REPRO_NUMPY_MIN_BATCH`` keys run a columnar kernel instead: both bucket
indexes for the whole batch come from one ``(n, 2)`` ``uint64`` modulo,
the candidate buckets are gathered as rows of a ``(num_buckets, stride)``
``np.uint8`` view over the flat bucket buffer, and slot keys are compared
20 bytes at a time with first-match masking
(:meth:`CuckooHashTable.get_many_np` / ``contains_many_np``).  The view
is rebuilt per call -- ``_grow()`` replaces the backing buffer -- and
values come out byte-identical to the scalar ``int.from_bytes`` reads.

Packed / shared-memory bucket store (opt-in)
--------------------------------------------
``CuckooHashTable(..., shared=True)`` swaps the list-of-lists bucket store
for a flat byte buffer (per bucket: one count byte, then ``slots_per_bucket``
fixed slots of 20-byte key + 8-byte unsigned value) held in a
``multiprocessing.shared_memory`` segment; ``shared_name=...`` attaches to an
existing segment.  Packed mode restricts entries to 20-byte ``bytes`` keys
and unsigned 64-bit ``int`` values (what the dedup index stores).  Sharing is
handoff-style -- one process builds/publishes, others attach -- not
concurrent-writer safe, and a ``_grow()`` moves to a *new* segment (the name
is re-read via :attr:`CuckooHashTable.shared_segment_name`).  Platforms
without shared memory degrade to a private ``bytearray`` silently.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from .npy import HAVE_NUMPY, NUMPY_MIN_BATCH, np as _np
from .packing import digest_hash_words, digest_hash_words_np
from .shm import SharedBuffer

__all__ = ["CuckooHashTable", "CuckooInsertError"]

#: Columnar-kernel bucket-count bound (uint64 modulo stays exact; tables
#: anywhere near this would not fit in memory).
_NP_MAX_BUCKETS = 1 << 62

#: Byte keys at least this long are treated as uniform digests by default.
_DIGEST_KEY_MIN_BYTES = 16

#: Snapshot entry framing: value tag (0=bytes, 1=int, 2=bool), key length,
#: value length.
_SNAPSHOT_ENTRY = struct.Struct(">BII")

#: Packed bucket store: fixed slot geometry and segment header
#: (magic, num_buckets, slots_per_bucket) -- written before any entry so a
#: geometry-mismatched attach fails loudly.
_KEY_BYTES = 20
_VALUE_BYTES = 8
_SLOT_BYTES = _KEY_BYTES + _VALUE_BYTES
_SHM_MAGIC = b"RCK1"
_SHM_HEADER = struct.Struct(">4sQI")


class CuckooInsertError(RuntimeError):
    """Raised when an insertion cannot be placed within the displacement bound."""


class _PackedBuckets:
    """Flat-buffer bucket store behind the packed/shared cuckoo mode.

    Layout: ``num_buckets`` buckets of ``1 + slots * 28`` bytes each -- a
    count byte, then ``slots`` slots of 20-byte key + 8-byte big-endian
    unsigned value.  ``data`` is a writable ``memoryview`` over either a
    shared segment (payload starts after :data:`_SHM_HEADER`) or a private
    ``bytearray``.  Mutation helpers mirror the semantics of the list
    backing exactly (``pop_shift`` == ``list.pop(i)`` + ``append``), so the
    two backings produce identical key->value contents under the same
    operation sequence.
    """

    __slots__ = ("num_buckets", "slots", "stride", "data", "_buffer")

    def __init__(
        self,
        num_buckets: int,
        slots: int,
        shared: bool = False,
        shared_name: Optional[str] = None,
    ) -> None:
        self.num_buckets = num_buckets
        self.slots = slots
        self.stride = 1 + _SLOT_BYTES * slots
        payload = self.stride * num_buckets
        self._buffer: Optional[SharedBuffer] = None
        if shared or shared_name is not None:
            total = _SHM_HEADER.size + payload
            if shared_name is not None:
                if shared:
                    try:
                        buffer = SharedBuffer.create(total, name=shared_name, shared=True)
                    except FileExistsError:
                        buffer = SharedBuffer.attach(shared_name, total)
                else:
                    buffer = SharedBuffer.attach(shared_name, total)
            else:
                buffer = SharedBuffer.create(total, shared=True)
            if buffer.name is not None:
                view = memoryview(buffer.buf)
                if bytes(view[:4]) == b"\x00\x00\x00\x00":
                    _SHM_HEADER.pack_into(view, 0, _SHM_MAGIC, num_buckets, slots)
                else:
                    magic, seg_buckets, seg_slots = _SHM_HEADER.unpack_from(view, 0)
                    if magic != _SHM_MAGIC or seg_buckets != num_buckets or seg_slots != slots:
                        name = buffer.name
                        view.release()
                        buffer.close()
                        raise ValueError(
                            f"shared segment {name!r} holds a table with "
                            f"buckets={seg_buckets} slots={seg_slots}; "
                            f"this table needs buckets={num_buckets} slots={slots}"
                        )
                self._buffer = buffer
                self.data = view[_SHM_HEADER.size:]
                return
        # Private fallback (also taken when segment allocation fails).
        self.data = memoryview(bytearray(payload))

    # -- lifecycle ---------------------------------------------------------------
    @property
    def shared_name(self) -> Optional[str]:
        buffer = self._buffer
        return buffer.name if buffer is not None else None

    def close(self) -> None:
        buffer, self._buffer = self._buffer, None
        if buffer is not None:
            data, self.data = self.data, memoryview(bytearray(0))
            data.release()
            buffer.close()

    def unlink(self) -> None:
        buffer, self._buffer = self._buffer, None
        if buffer is not None:
            data, self.data = self.data, memoryview(bytearray(0))
            data.release()
            buffer.unlink()

    # -- bucket ops --------------------------------------------------------------
    def count_of(self, bucket: int) -> int:
        return self.data[bucket * self.stride]

    def find(self, bucket: int, key: bytes, default: Any) -> Any:
        data = self.data
        base = bucket * self.stride
        offset = base + 1
        for _ in range(data[base]):
            if data[offset:offset + _KEY_BYTES] == key:
                return int.from_bytes(data[offset + _KEY_BYTES:offset + _SLOT_BYTES], "big")
            offset += _SLOT_BYTES
        return default

    def update(self, bucket: int, key: bytes, value: int) -> bool:
        data = self.data
        base = bucket * self.stride
        offset = base + 1
        for _ in range(data[base]):
            if data[offset:offset + _KEY_BYTES] == key:
                data[offset + _KEY_BYTES:offset + _SLOT_BYTES] = value.to_bytes(8, "big")
                return True
            offset += _SLOT_BYTES
        return False

    def append(self, bucket: int, key: bytes, value: int) -> bool:
        """Place in the first free slot; ``False`` when the bucket is full."""
        data = self.data
        base = bucket * self.stride
        count = data[base]
        if count >= self.slots:
            return False
        offset = base + 1 + count * _SLOT_BYTES
        data[offset:offset + _KEY_BYTES] = key
        data[offset + _KEY_BYTES:offset + _SLOT_BYTES] = value.to_bytes(8, "big")
        data[base] = count + 1
        return True

    def pop_shift(self, bucket: int, index: int) -> Tuple[bytes, int]:
        """Remove slot ``index`` (shifting later slots left), like ``list.pop``."""
        data = self.data
        base = bucket * self.stride
        count = data[base]
        offset = base + 1 + index * _SLOT_BYTES
        key = bytes(data[offset:offset + _KEY_BYTES])
        value = int.from_bytes(data[offset + _KEY_BYTES:offset + _SLOT_BYTES], "big")
        tail = (count - index - 1) * _SLOT_BYTES
        if tail:
            moved = bytes(data[offset + _SLOT_BYTES:offset + _SLOT_BYTES + tail])
            data[offset:offset + tail] = moved
        data[base] = count - 1
        return key, value

    def remove(self, bucket: int, key: bytes) -> bool:
        data = self.data
        base = bucket * self.stride
        offset = base + 1
        for index in range(data[base]):
            if data[offset:offset + _KEY_BYTES] == key:
                self.pop_shift(bucket, index)
                return True
            offset += _SLOT_BYTES
        return False

    def items(self) -> Iterator[Tuple[bytes, int]]:
        data = self.data
        stride = self.stride
        for bucket in range(self.num_buckets):
            base = bucket * stride
            offset = base + 1
            for _ in range(data[base]):
                yield (
                    bytes(data[offset:offset + _KEY_BYTES]),
                    int.from_bytes(data[offset + _KEY_BYTES:offset + _SLOT_BYTES], "big"),
                )
                offset += _SLOT_BYTES

    def scan_size(self) -> int:
        """Total entries, from the per-bucket count bytes (attach path)."""
        data = self.data
        stride = self.stride
        return sum(data[bucket * stride] for bucket in range(self.num_buckets))


def _check_packed_entry(key: bytes, value: Any) -> int:
    """Validate a packed-mode entry; returns the value as an int."""
    if type(key) is not bytes or len(key) != _KEY_BYTES:
        raise TypeError(
            f"packed cuckoo mode stores {_KEY_BYTES}-byte digest keys; got "
            f"{type(key).__name__} of length {len(key) if isinstance(key, (bytes, bytearray, str)) else '?'}"
        )
    if type(value) is bool or not isinstance(value, int) or not 0 <= value < (1 << 64):
        raise TypeError(
            "packed cuckoo mode stores unsigned 64-bit int values; got "
            f"{value!r}"
        )
    return value


class CuckooHashTable:
    """A 2-hash, bucketised cuckoo hash table mapping byte keys to values.

    Parameters
    ----------
    initial_buckets:
        Number of buckets per table half at construction.
    slots_per_bucket:
        Bucket associativity (4 is the common choice).
    max_displacements:
        How many evict/re-insert steps to try before growing the table.
    digest_keys:
        When ``True`` (the default), byte keys of >= 16 bytes are assumed to
        be uniformly distributed digests (SHA-1 fingerprints are the primary
        use) and the two bucket choices are read directly from the key bytes
        instead of re-hashing with BLAKE2b.  Set to ``False`` when long keys
        may be structured (non-uniform).
    shared / shared_name:
        Opt-in packed bucket store in a shared-memory segment (see module
        docstring).  Restricts entries to 20-byte keys and unsigned 64-bit
        int values; degrades to a private flat buffer when shared memory is
        unavailable.
    """

    def __init__(
        self,
        initial_buckets: int = 1024,
        slots_per_bucket: int = 4,
        max_displacements: int = 500,
        digest_keys: bool = True,
        shared: bool = False,
        shared_name: Optional[str] = None,
    ) -> None:
        if initial_buckets < 1:
            raise ValueError("initial_buckets must be >= 1")
        if slots_per_bucket < 1:
            raise ValueError("slots_per_bucket must be >= 1")
        self.slots_per_bucket = slots_per_bucket
        self.max_displacements = max_displacements
        self.digest_keys = bool(digest_keys)
        self._num_buckets = initial_buckets
        self._packed: Optional[_PackedBuckets] = None
        if shared or shared_name is not None:
            self._packed = _PackedBuckets(
                initial_buckets, slots_per_bucket, shared=shared, shared_name=shared_name
            )
            self._buckets: List[List[Tuple[bytes, Any]]] = []
            self._size = self._packed.scan_size() if shared_name is not None else 0
        else:
            self._buckets = [[] for _ in range(initial_buckets)]
            self._size = 0
        self.displacements = 0
        self.resizes = 0

    # -- hashing ------------------------------------------------------------------
    def _hash_pair(self, key: bytes) -> Tuple[int, int]:
        """Two independent 64-bit hash words for ``key`` (pre-modulus).

        Keys that are already cryptographic digests supply both words
        directly from their own bytes -- re-hashing a digest buys no extra
        uniformity and dominates the per-op cost otherwise.
        """
        if isinstance(key, str):
            key = key.encode("utf-8")
        if self.digest_keys and len(key) >= _DIGEST_KEY_MIN_BYTES:
            return int.from_bytes(key[:8], "big"), int.from_bytes(key[8:16], "big")
        digest = hashlib.blake2b(key, digest_size=16).digest()
        return int.from_bytes(digest[:8], "big"), int.from_bytes(digest[8:], "big")

    def _hashes(self, key: bytes) -> Tuple[int, int]:
        w1, w2 = self._hash_pair(key)
        num_buckets = self._num_buckets
        h1 = w1 % num_buckets
        h2 = w2 % num_buckets
        if h2 == h1:
            h2 = (h1 + 1) % num_buckets
        return h1, h2

    def _batch_words(self, keys) -> Tuple[Optional[tuple], Sequence[bytes]]:
        """``(flat hash words, key sequence)`` for an eligible digest batch.

        Accepts a :class:`~repro.core.digest_batch.DigestBatch` (words come
        cached from its contiguous buffer) or a list/tuple in which *every*
        key is a 20-byte ``bytes`` digest; everything else returns
        ``(None, keys)`` and the caller falls through to the scalar oracle.
        The per-key length check is mandatory -- mixed-length keys merely
        summing to a multiple of 20 would hash wrong silently.
        """
        if not self.digest_keys:
            return None, keys
        hash_words = getattr(keys, "hash_words", None)
        if hash_words is not None:
            return hash_words(), keys.digests
        if type(keys) in (list, tuple) and keys:
            for key in keys:
                if type(key) is not bytes or len(key) != 20:
                    return None, keys
            return digest_hash_words(b"".join(keys), len(keys)), keys
        return None, keys

    def _batch_words_np(self, keys):
        """``((n, 2) uint64 words, key sequence)`` for the columnar path.

        Eligibility mirrors :meth:`_batch_words` plus: the numpy backend
        must be active and the table must be in packed mode (list buckets
        have nothing to gather against).  ``(None, keys)`` means fall back.
        """
        if (
            not HAVE_NUMPY
            or not self.digest_keys
            or self._packed is None
            or self._num_buckets >= _NP_MAX_BUCKETS
        ):
            return None, keys
        hash_words_np = getattr(keys, "hash_words_np", None)
        if hash_words_np is not None:
            return hash_words_np(), keys.digests
        if type(keys) in (list, tuple) and keys:
            for key in keys:
                if type(key) is not bytes or len(key) != 20:
                    return None, keys
            return digest_hash_words_np(b"".join(keys), len(keys)), keys
        return None, keys

    def _get_many_np(self, words, key_list, default) -> List[Any]:
        """Columnar packed-mode batch lookup (both buckets, slot compare).

        One gather of each key's two candidate bucket rows from a fresh
        ``(num_buckets, stride)`` ``uint8`` view, then per-slot 20-byte key
        compares with first-match masking; bucket ``h1`` takes precedence
        over ``h2`` exactly as the scalar probe order does.  Values are
        re-read as big-endian ``u8`` -- identical Python ints to the scalar
        ``int.from_bytes``.
        """
        packed = self._packed
        num_buckets = _np.uint64(self._num_buckets)
        h1 = words[:, 0] % num_buckets
        h2 = words[:, 1] % num_buckets
        collision = h2 == h1
        if collision.any():
            # Copy first: ``words``-derived columns may alias the batch's
            # cached word array.
            h2 = h2.copy()
            h2[collision] = (h1[collision] + _np.uint64(1)) % num_buckets
        count = len(key_list)
        blob = key_list.packed() if hasattr(key_list, "packed") else b"".join(key_list)
        keys_np = _np.frombuffer(blob, dtype=_np.uint8, count=count * _KEY_BYTES)
        keys_np = keys_np.reshape(count, _KEY_BYTES)
        table = _np.frombuffer(packed.data, dtype=_np.uint8)
        table = table.reshape(packed.num_buckets, packed.stride)
        found = _np.zeros(count, dtype=bool)
        value_bytes = _np.zeros((count, _VALUE_BYTES), dtype=_np.uint8)
        slots = packed.slots
        for bucket_col in (h1, h2):
            rows = table[bucket_col.astype(_np.intp)]
            counts = rows[:, 0]
            for slot in range(slots):
                offset = 1 + slot * _SLOT_BYTES
                match = (
                    ~found
                    & (counts > slot)
                    & (rows[:, offset:offset + _KEY_BYTES] == keys_np).all(axis=1)
                )
                if match.any():
                    value_bytes[match] = rows[match][:, offset + _KEY_BYTES:offset + _SLOT_BYTES]
                    found[match] = True
        values = value_bytes.view(">u8").ravel().tolist()
        hits = found.tolist()
        return [values[i] if hits[i] else default for i in range(count)]

    def get_many_np(self, keys: Sequence[bytes], default: Any = None) -> List[Any]:
        """Columnar batch lookup regardless of batch size (bench/test entry).

        Value-identical to :meth:`get_many_scalar`; ineligible batches (or
        a missing numpy backend / list-mode table) defer to :meth:`get_many`.
        """
        words, key_list = self._batch_words_np(keys)
        if words is None:
            return self.get_many(keys, default)
        return self._get_many_np(words, keys if hasattr(keys, "packed") else key_list, default)

    def contains_many_np(self, keys: Sequence[bytes]) -> List[bool]:
        """Columnar membership verdicts (bench/test entry point)."""
        sentinel = object()
        return [value is not sentinel for value in self.get_many_np(keys, sentinel)]

    # -- public API -----------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    @property
    def shared_segment_name(self) -> Optional[str]:
        """Name of the backing shared segment (``None`` when private/list).

        Re-read after inserts: a ``_grow()`` moves the table to a new
        segment with a new name.
        """
        packed = self._packed
        return packed.shared_name if packed is not None else None

    def close_shared(self) -> None:
        """Detach from the shared segment (terminal for this table)."""
        if self._packed is not None:
            self._packed.close()

    def unlink_shared(self) -> None:
        """Detach *and* remove the backing segment from the system."""
        if self._packed is not None:
            self._packed.unlink()

    def load_factor(self) -> float:
        """Occupied slots divided by total slots."""
        return self._size / (self._num_buckets * self.slots_per_bucket)

    def get(self, key: bytes, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        packed = self._packed
        if packed is not None:
            h1, h2 = self._hashes(key)
            value = packed.find(h1, key, _SENTINEL)
            if value is _SENTINEL:
                value = packed.find(h2, key, _SENTINEL)
            return default if value is _SENTINEL else value
        for bucket_index in self._hashes(key):
            for stored_key, value in self._buckets[bucket_index]:
                if stored_key == key:
                    return value
        return default

    def get_many(self, keys: Sequence[bytes], default: Any = None) -> List[Any]:
        """Values for a batch of keys, in input order.

        Vectorized: for a ``DigestBatch`` or an all-20-byte-digest batch the
        hash words of every key come from one ``struct.unpack`` over the
        packed key buffer; other inputs use :meth:`get_many_scalar`.  With
        the numpy backend active, packed-mode batches of at least
        ``REPRO_NUMPY_MIN_BATCH`` keys take the columnar kernel instead
        (same values).
        """
        if (
            HAVE_NUMPY
            and self._packed is not None
            and getattr(keys, "__len__", None) is not None
            and len(keys) >= NUMPY_MIN_BATCH
        ):
            words_np, key_list_np = self._batch_words_np(keys)
            if words_np is not None:
                return self._get_many_np(
                    words_np, keys if hasattr(keys, "packed") else key_list_np, default
                )
        words, key_list = self._batch_words(keys)
        if words is None:
            return self.get_many_scalar(key_list, default)
        num_buckets = self._num_buckets
        packed = self._packed
        results: List[Any] = []
        append = results.append
        pairs = iter(words)
        if packed is not None:
            find = packed.find
            for key, w1 in zip(key_list, pairs):
                h1 = w1 % num_buckets
                h2 = next(pairs) % num_buckets
                if h2 == h1:
                    h2 = (h1 + 1) % num_buckets
                value = find(h1, key, _SENTINEL)
                if value is _SENTINEL:
                    value = find(h2, key, _SENTINEL)
                append(default if value is _SENTINEL else value)
            return results
        buckets = self._buckets
        for key, w1 in zip(key_list, pairs):
            h1 = w1 % num_buckets
            h2 = next(pairs) % num_buckets
            if h2 == h1:
                h2 = (h1 + 1) % num_buckets
            value = default
            for stored_key, stored_value in buckets[h1]:
                if stored_key == key:
                    value = stored_value
                    break
            else:
                for stored_key, stored_value in buckets[h2]:
                    if stored_key == key:
                        value = stored_value
                        break
            append(value)
        return results

    def get_many_scalar(self, keys: Sequence[bytes], default: Any = None) -> List[Any]:
        """Per-key batch probe: the reference oracle for :meth:`get_many`.

        This is the pre-vectorization body, retained verbatim (it hoists
        attribute and bound-method lookups out of the loop but still hashes
        key by key).
        """
        packed = self._packed
        if packed is not None:
            return [self.get(key, default) for key in keys]
        buckets = self._buckets
        num_buckets = self._num_buckets
        hash_pair = self._hash_pair
        results: List[Any] = []
        append = results.append
        for key in keys:
            w1, w2 = hash_pair(key)
            h1 = w1 % num_buckets
            h2 = w2 % num_buckets
            if h2 == h1:
                h2 = (h1 + 1) % num_buckets
            value = default
            for stored_key, stored_value in buckets[h1]:
                if stored_key == key:
                    value = stored_value
                    break
            else:
                for stored_key, stored_value in buckets[h2]:
                    if stored_key == key:
                        value = stored_value
                        break
            append(value)
        return results

    def contains_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Membership verdicts for a batch of keys, in input order."""
        sentinel = object()
        return [value is not sentinel for value in self.get_many(keys, sentinel)]

    def contains_many_scalar(self, keys: Sequence[bytes]) -> List[bool]:
        """Per-key membership oracle for :meth:`contains_many`."""
        sentinel = object()
        return [value is not sentinel for value in self.get_many_scalar(keys, sentinel)]

    def put_many(self, items: Iterable[Tuple[bytes, Any]]) -> None:
        """Insert or update a batch of ``(key, value)`` pairs.

        Vectorized for all-digest batches: hash words for the whole batch
        come from one ``struct.unpack``, and present/free-slot cases are
        settled inline; only keys needing displacement take the scalar
        :meth:`put` slow path (which may grow the table -- the bucket
        moduli are re-derived per key for exactly that reason).
        """
        if not isinstance(items, (list, tuple)):
            items = list(items)
        if not items:
            return
        if self.digest_keys:
            for key, _value in items:
                if type(key) is not bytes or len(key) != 20:
                    break
            else:
                self._put_many_words(items)
                return
        self.put_many_scalar(items)

    def put_many_scalar(self, items: Iterable[Tuple[bytes, Any]]) -> None:
        """Per-pair insert oracle for :meth:`put_many` (pre-vectorization body)."""
        for key, value in items:
            self.put(key, value)

    def _put_many_words(self, items: Sequence[Tuple[bytes, Any]]) -> None:
        words = digest_hash_words(b"".join(key for key, _value in items), len(items))
        packed = self._packed
        pairs = iter(words)
        index = 0
        for w1 in pairs:
            w2 = next(pairs)
            key, value = items[index]
            index += 1
            # Re-read the bucket count every key: a displacement-path put()
            # below may have grown the table mid-batch.
            num_buckets = self._num_buckets
            h1 = w1 % num_buckets
            h2 = w2 % num_buckets
            if h2 == h1:
                h2 = (h1 + 1) % num_buckets
            if packed is not None:
                value = _check_packed_entry(key, value)
                if packed.update(h1, key, value) or packed.update(h2, key, value):
                    continue
                if packed.append(h1, key, value) or packed.append(h2, key, value):
                    self._size += 1
                    continue
                self.put(key, value)
                packed = self._packed  # put() may have grown into a new store
                continue
            bucket = self._buckets[h1]
            other = self._buckets[h2]
            placed = False
            for i, (stored_key, _old) in enumerate(bucket):
                if stored_key == key:
                    bucket[i] = (key, value)
                    placed = True
                    break
            if not placed:
                for i, (stored_key, _old) in enumerate(other):
                    if stored_key == key:
                        other[i] = (key, value)
                        placed = True
                        break
            if placed:
                continue
            slots = self.slots_per_bucket
            if len(bucket) < slots:
                bucket.append((key, value))
                self._size += 1
            elif len(other) < slots:
                other.append((key, value))
                self._size += 1
            else:
                self.put(key, value)

    def __contains__(self, key: bytes) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def put(self, key: bytes, value: Any) -> None:
        """Insert or update ``key``; grows the table if placement fails."""
        if self._packed is not None:
            value = _check_packed_entry(key, value)
        if self._update_in_place(key, value):
            return
        entry = (key, value)
        for _attempt in range(8):  # growth attempts
            placed = self._insert_with_displacement(entry)
            if placed is None:
                self._size += 1
                return
            entry = placed
            self._grow()
        raise CuckooInsertError("unable to place entry even after growing")

    def remove(self, key: bytes) -> bool:
        """Delete ``key``; returns whether it was present."""
        packed = self._packed
        if packed is not None:
            for bucket_index in self._hashes(key):
                if packed.remove(bucket_index, key):
                    self._size -= 1
                    return True
            return False
        for bucket_index in self._hashes(key):
            bucket = self._buckets[bucket_index]
            for i, (stored_key, _value) in enumerate(bucket):
                if stored_key == key:
                    bucket.pop(i)
                    self._size -= 1
                    return True
        return False

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """Iterate all ``(key, value)`` pairs in unspecified order."""
        if self._packed is not None:
            yield from self._packed.items()
            return
        for bucket in self._buckets:
            yield from bucket

    def keys(self) -> Iterator[bytes]:
        for key, _value in self.items():
            yield key

    # -- persistence ------------------------------------------------------------------
    def snapshot_payload(self) -> bytes:
        """Serialise every entry for a persistence snapshot.

        Values must be ``bytes``, ``int``, or ``bool`` (the dedup index
        stores chunk sizes); richer values belong in an external store.
        """
        chunks = []
        pack = _SNAPSHOT_ENTRY.pack
        for key, value in self.items():
            if isinstance(value, bool):
                tag, blob = 2, (b"\x01" if value else b"\x00")
            elif isinstance(value, int):
                tag, blob = 1, value.to_bytes(8, "big", signed=True)
            elif isinstance(value, (bytes, bytearray)):
                tag, blob = 0, bytes(value)
            else:
                raise TypeError(f"cannot snapshot value of type {type(value).__name__}")
            chunks.append(pack(tag, len(key), len(blob)) + key + blob)
        return b"".join(chunks)

    def restore_payload(self, payload: bytes) -> int:
        """Insert entries from :meth:`snapshot_payload` output; returns the count.

        The entry count is pre-scanned from the frame headers (no body
        copies) and the bucket array is sized once up front.  Replaying a
        large snapshot through :meth:`put` against the construction-time
        bucket count used to trigger a cascade of ``_grow()`` full-rehash
        cycles on every warm restart -- O(n log n) re-insertions where one
        O(n) pass suffices.
        """
        length = len(payload)
        unpack_from = _SNAPSHOT_ENTRY.unpack_from
        header = _SNAPSHOT_ENTRY.size
        offset = 0
        entries = 0
        while offset < length:
            _tag, key_len, value_len = unpack_from(payload, offset)
            offset += header + key_len + value_len
            entries += 1
        self.reserve(self._size + entries)
        offset = 0
        restored = 0
        while offset < length:
            tag, key_len, value_len = unpack_from(payload, offset)
            offset += header
            key = bytes(payload[offset:offset + key_len])
            offset += key_len
            blob = bytes(payload[offset:offset + value_len])
            offset += value_len
            if tag == 1:
                value: Any = int.from_bytes(blob, "big", signed=True)
            elif tag == 2:
                value = blob == b"\x01"
            else:
                value = blob
            self.put(key, value)
            restored += 1
        return restored

    def reserve(self, total_entries: int) -> None:
        """Size the table for ``total_entries`` at <= 50% load, in one rehash."""
        target = self._num_buckets
        slots = self.slots_per_bucket
        while total_entries > (target * slots) // 2:
            target *= 2
        if target > self._num_buckets:
            self._resize_to(target)

    # -- internals ---------------------------------------------------------------------
    def _update_in_place(self, key: bytes, value: Any) -> bool:
        packed = self._packed
        if packed is not None:
            h1, h2 = self._hashes(key)
            return packed.update(h1, key, value) or packed.update(h2, key, value)
        for bucket_index in self._hashes(key):
            bucket = self._buckets[bucket_index]
            for i, (stored_key, _old) in enumerate(bucket):
                if stored_key == key:
                    bucket[i] = (key, value)
                    return True
        return False

    def _insert_with_displacement(self, entry: Tuple[bytes, Any]) -> Optional[Tuple[bytes, Any]]:
        """Try to place ``entry``; return a displaced entry that could not be placed."""
        packed = self._packed
        current = entry
        bucket_index = self._hashes(current[0])[0]
        for step in range(self.max_displacements):
            h1, h2 = self._hashes(current[0])
            if packed is not None:
                if packed.append(h1, current[0], current[1]) or packed.append(
                    h2, current[0], current[1]
                ):
                    return None
                bucket_index = h2 if bucket_index == h1 else h1
                victim = packed.pop_shift(bucket_index, step % self.slots_per_bucket)
                packed.append(bucket_index, current[0], current[1])
                current = victim
                self.displacements += 1
                continue
            for candidate in (h1, h2):
                bucket = self._buckets[candidate]
                if len(bucket) < self.slots_per_bucket:
                    bucket.append(current)
                    return None
            # Both buckets full: evict a victim from the alternate bucket and retry.
            bucket_index = h2 if bucket_index == h1 else h1
            victim_bucket = self._buckets[bucket_index]
            victim = victim_bucket.pop(step % self.slots_per_bucket)
            victim_bucket.append(current)
            current = victim
            self.displacements += 1
        return current

    def _grow(self) -> None:
        self._resize_to(self._num_buckets * 2)

    def _resize_to(self, target_buckets: int) -> None:
        """Rehash every entry into ``target_buckets`` buckets (one resize)."""
        self.resizes += 1
        old_entries = list(self.items())
        self._num_buckets = target_buckets
        old_packed = self._packed
        if old_packed is not None:
            # A shared store grows into a NEW segment (attachers re-read the
            # name); the predecessor is unlinked here since this process owns it.
            self._packed = _PackedBuckets(
                target_buckets, self.slots_per_bucket, shared=old_packed.shared_name is not None
            )
            old_packed.unlink()
        else:
            self._buckets = [[] for _ in range(target_buckets)]
        self._size = 0
        for key, value in old_entries:
            self.put(key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CuckooHashTable size={self._size} buckets={self._num_buckets} "
            f"load={self.load_factor():.2f}>"
        )


_SENTINEL = object()
