"""Cuckoo hash table.

ChunkStash (Debnath et al., USENIX ATC 2010) -- the closest prior system the
paper compares against conceptually -- keeps a compact in-RAM cuckoo hash
index pointing at fingerprints stored on flash, giving one flash read per
lookup.  We implement a standard 2-choice cuckoo hash table with configurable
bucket associativity and a displacement bound, used by the ChunkStash-style
baseline in :mod:`repro.baselines.chunkstash`.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["CuckooHashTable", "CuckooInsertError"]

#: Byte keys at least this long are treated as uniform digests by default.
_DIGEST_KEY_MIN_BYTES = 16

#: Snapshot entry framing: value tag (0=bytes, 1=int, 2=bool), key length,
#: value length.
_SNAPSHOT_ENTRY = struct.Struct(">BII")


class CuckooInsertError(RuntimeError):
    """Raised when an insertion cannot be placed within the displacement bound."""


class CuckooHashTable:
    """A 2-hash, bucketised cuckoo hash table mapping byte keys to values.

    Parameters
    ----------
    initial_buckets:
        Number of buckets per table half at construction.
    slots_per_bucket:
        Bucket associativity (4 is the common choice).
    max_displacements:
        How many evict/re-insert steps to try before growing the table.
    digest_keys:
        When ``True`` (the default), byte keys of >= 16 bytes are assumed to
        be uniformly distributed digests (SHA-1 fingerprints are the primary
        use) and the two bucket choices are read directly from the key bytes
        instead of re-hashing with BLAKE2b.  Set to ``False`` when long keys
        may be structured (non-uniform).
    """

    def __init__(
        self,
        initial_buckets: int = 1024,
        slots_per_bucket: int = 4,
        max_displacements: int = 500,
        digest_keys: bool = True,
    ) -> None:
        if initial_buckets < 1:
            raise ValueError("initial_buckets must be >= 1")
        if slots_per_bucket < 1:
            raise ValueError("slots_per_bucket must be >= 1")
        self.slots_per_bucket = slots_per_bucket
        self.max_displacements = max_displacements
        self.digest_keys = bool(digest_keys)
        self._num_buckets = initial_buckets
        self._buckets: List[List[Tuple[bytes, Any]]] = [[] for _ in range(initial_buckets)]
        self._size = 0
        self.displacements = 0
        self.resizes = 0

    # -- hashing ------------------------------------------------------------------
    def _hash_pair(self, key: bytes) -> Tuple[int, int]:
        """Two independent 64-bit hash words for ``key`` (pre-modulus).

        Keys that are already cryptographic digests supply both words
        directly from their own bytes -- re-hashing a digest buys no extra
        uniformity and dominates the per-op cost otherwise.
        """
        if isinstance(key, str):
            key = key.encode("utf-8")
        if self.digest_keys and len(key) >= _DIGEST_KEY_MIN_BYTES:
            return int.from_bytes(key[:8], "big"), int.from_bytes(key[8:16], "big")
        digest = hashlib.blake2b(key, digest_size=16).digest()
        return int.from_bytes(digest[:8], "big"), int.from_bytes(digest[8:], "big")

    def _hashes(self, key: bytes) -> Tuple[int, int]:
        w1, w2 = self._hash_pair(key)
        num_buckets = self._num_buckets
        h1 = w1 % num_buckets
        h2 = w2 % num_buckets
        if h2 == h1:
            h2 = (h1 + 1) % num_buckets
        return h1, h2

    # -- public API -----------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    def load_factor(self) -> float:
        """Occupied slots divided by total slots."""
        return self._size / (self._num_buckets * self.slots_per_bucket)

    def get(self, key: bytes, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        for bucket_index in self._hashes(key):
            for stored_key, value in self._buckets[bucket_index]:
                if stored_key == key:
                    return value
        return default

    def get_many(self, keys: Sequence[bytes], default: Any = None) -> List[Any]:
        """Values for a batch of keys, in input order, with locals bound.

        Equivalent to ``[table.get(k) for k in keys]`` but hoists attribute
        and bound-method lookups out of the loop, which matters when a batch
        of thousands of fingerprints is probed at once.
        """
        buckets = self._buckets
        num_buckets = self._num_buckets
        hash_pair = self._hash_pair
        results: List[Any] = []
        append = results.append
        for key in keys:
            w1, w2 = hash_pair(key)
            h1 = w1 % num_buckets
            h2 = w2 % num_buckets
            if h2 == h1:
                h2 = (h1 + 1) % num_buckets
            value = default
            for stored_key, stored_value in buckets[h1]:
                if stored_key == key:
                    value = stored_value
                    break
            else:
                for stored_key, stored_value in buckets[h2]:
                    if stored_key == key:
                        value = stored_value
                        break
            append(value)
        return results

    def contains_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Membership verdicts for a batch of keys, in input order."""
        sentinel = object()
        return [value is not sentinel for value in self.get_many(keys, sentinel)]

    def put_many(self, items: Iterable[Tuple[bytes, Any]]) -> None:
        """Insert or update a batch of ``(key, value)`` pairs."""
        for key, value in items:
            self.put(key, value)

    def __contains__(self, key: bytes) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def put(self, key: bytes, value: Any) -> None:
        """Insert or update ``key``; grows the table if placement fails."""
        if self._update_in_place(key, value):
            return
        entry = (key, value)
        for _attempt in range(8):  # growth attempts
            placed = self._insert_with_displacement(entry)
            if placed is None:
                self._size += 1
                return
            entry = placed
            self._grow()
        raise CuckooInsertError("unable to place entry even after growing")

    def remove(self, key: bytes) -> bool:
        """Delete ``key``; returns whether it was present."""
        for bucket_index in self._hashes(key):
            bucket = self._buckets[bucket_index]
            for i, (stored_key, _value) in enumerate(bucket):
                if stored_key == key:
                    bucket.pop(i)
                    self._size -= 1
                    return True
        return False

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """Iterate all ``(key, value)`` pairs in unspecified order."""
        for bucket in self._buckets:
            yield from bucket

    def keys(self) -> Iterator[bytes]:
        for key, _value in self.items():
            yield key

    # -- persistence ------------------------------------------------------------------
    def snapshot_payload(self) -> bytes:
        """Serialise every entry for a persistence snapshot.

        Values must be ``bytes``, ``int``, or ``bool`` (the dedup index
        stores chunk sizes); richer values belong in an external store.
        """
        chunks = []
        pack = _SNAPSHOT_ENTRY.pack
        for key, value in self.items():
            if isinstance(value, bool):
                tag, blob = 2, (b"\x01" if value else b"\x00")
            elif isinstance(value, int):
                tag, blob = 1, value.to_bytes(8, "big", signed=True)
            elif isinstance(value, (bytes, bytearray)):
                tag, blob = 0, bytes(value)
            else:
                raise TypeError(f"cannot snapshot value of type {type(value).__name__}")
            chunks.append(pack(tag, len(key), len(blob)) + key + blob)
        return b"".join(chunks)

    def restore_payload(self, payload: bytes) -> int:
        """Insert entries from :meth:`snapshot_payload` output; returns the count."""
        offset = 0
        length = len(payload)
        entries = 0
        while offset < length:
            tag, key_len, value_len = _SNAPSHOT_ENTRY.unpack_from(payload, offset)
            offset += _SNAPSHOT_ENTRY.size
            key = bytes(payload[offset:offset + key_len])
            offset += key_len
            blob = bytes(payload[offset:offset + value_len])
            offset += value_len
            if tag == 1:
                value: Any = int.from_bytes(blob, "big", signed=True)
            elif tag == 2:
                value = blob == b"\x01"
            else:
                value = blob
            self.put(key, value)
            entries += 1
        return entries

    # -- internals ---------------------------------------------------------------------
    def _update_in_place(self, key: bytes, value: Any) -> bool:
        for bucket_index in self._hashes(key):
            bucket = self._buckets[bucket_index]
            for i, (stored_key, _old) in enumerate(bucket):
                if stored_key == key:
                    bucket[i] = (key, value)
                    return True
        return False

    def _insert_with_displacement(self, entry: Tuple[bytes, Any]) -> Optional[Tuple[bytes, Any]]:
        """Try to place ``entry``; return a displaced entry that could not be placed."""
        current = entry
        bucket_index = self._hashes(current[0])[0]
        for step in range(self.max_displacements):
            h1, h2 = self._hashes(current[0])
            for candidate in (h1, h2):
                bucket = self._buckets[candidate]
                if len(bucket) < self.slots_per_bucket:
                    bucket.append(current)
                    return None
            # Both buckets full: evict a victim from the alternate bucket and retry.
            bucket_index = h2 if bucket_index == h1 else h1
            victim_bucket = self._buckets[bucket_index]
            victim = victim_bucket.pop(step % self.slots_per_bucket)
            victim_bucket.append(current)
            current = victim
            self.displacements += 1
        return current

    def _grow(self) -> None:
        self.resizes += 1
        old_entries = list(self.items())
        self._num_buckets *= 2
        self._buckets = [[] for _ in range(self._num_buckets)]
        self._size = 0
        for key, value in old_entries:
            self.put(key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CuckooHashTable size={self._size} buckets={self._num_buckets} "
            f"load={self.load_factor():.2f}>"
        )
