"""Atomic, checksummed snapshot files with mmap'd loads.

A snapshot is one self-describing file: a fixed header, a small JSON
metadata block, and an opaque binary payload protected by CRC32.  Writers
stage the whole file under a temporary name, ``fsync`` it, and atomically
rename it into place, so readers only ever observe a complete snapshot or
none at all -- a crash mid-write leaves the previous snapshot untouched.

The node persistence layer uses this for periodic bloom-filter images: the
payload is the filter's bit array, loaded back with :func:`read_snapshot`
through ``mmap`` so a warm restart costs one bulk copy instead of
re-hashing every fingerprint.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from typing import Any, Dict, Tuple

__all__ = ["SnapshotError", "write_snapshot", "read_snapshot"]

_MAGIC = b"SHHCSNAP"
_VERSION = 1
# magic, version, meta length, payload length, payload CRC32
_HEADER = struct.Struct(">8sBIQI")


class SnapshotError(Exception):
    """Snapshot file is missing, truncated, or fails its checksum."""


def write_snapshot(path: str, payload: bytes, meta: Dict[str, Any]) -> int:
    """Atomically write ``payload`` + ``meta`` to ``path``; returns bytes written.

    The file is staged at ``path + ".tmp"``, flushed and fsynced, then
    renamed over ``path``.  Interrupting the write at any point leaves the
    previous snapshot (if any) intact.
    """
    meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    header = _HEADER.pack(_MAGIC, _VERSION, len(meta_blob), len(payload), zlib.crc32(payload))
    temp_path = path + ".tmp"
    with open(temp_path, "wb") as temp:
        temp.write(header)
        temp.write(meta_blob)
        temp.write(payload)
        temp.flush()
        os.fsync(temp.fileno())
    os.replace(temp_path, path)
    return _HEADER.size + len(meta_blob) + len(payload)


def read_snapshot(path: str, use_mmap: bool = True) -> Tuple[Dict[str, Any], bytes]:
    """Load and verify the snapshot at ``path``; returns ``(meta, payload)``.

    The payload is sliced out of an ``mmap`` of the file (one bulk copy, no
    per-record parsing), falling back to a plain read for empty payloads or
    when ``use_mmap`` is off.  Raises :class:`SnapshotError` for a missing,
    truncated, or checksum-failing file.
    """
    try:
        with open(path, "rb") as snap:
            header = snap.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise SnapshotError(f"truncated snapshot header in {path!r}")
            magic, version, meta_len, payload_len, crc = _HEADER.unpack(header)
            if magic != _MAGIC or version != _VERSION:
                raise SnapshotError(f"not a snapshot file: {path!r}")
            meta_blob = snap.read(meta_len)
            if len(meta_blob) < meta_len:
                raise SnapshotError(f"truncated snapshot metadata in {path!r}")
            payload_offset = _HEADER.size + meta_len
            if use_mmap and payload_len:
                with mmap.mmap(snap.fileno(), 0, access=mmap.ACCESS_READ) as view:
                    payload = view[payload_offset:payload_offset + payload_len]
            else:
                payload = snap.read(payload_len)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if len(payload) < payload_len:
        raise SnapshotError(f"truncated snapshot payload in {path!r}")
    try:
        meta = json.loads(meta_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"corrupt snapshot metadata in {path!r}") from exc
    if zlib.crc32(payload) != crc:
        raise SnapshotError(f"snapshot payload checksum mismatch in {path!r}")
    return meta, payload
