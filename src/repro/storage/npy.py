"""Optional numpy backend detection for the columnar data-plane kernels.

numpy is an *optional* ``perf`` extra (``pip install repro-shhc[perf]``),
never a hard dependency: every columnar kernel in
:mod:`repro.storage.bloom`, :mod:`repro.storage.cuckoo` and
:mod:`repro.core.bucket_kernel` has a byte-identical pure-Python packed
path to fall back to.  This module is the single place the decision is
made, so storage, core, serving, and benchmarks all agree on which
backend a process runs.

Environment knobs
-----------------
``REPRO_FORCE_NO_NUMPY=1``
    Pretend numpy is not importable even when it is.  Used by the test
    suite's no-numpy leg and handy for A/B benchmarking; honoured at
    import time, so set it before the first ``repro`` import.

``REPRO_NUMPY_MIN_BATCH=<n>``
    Batch-size crossover for the fused node kernels: buckets smaller
    than ``n`` keep the exec-generated scalar kernels (per-key Python
    arithmetic beats numpy's fixed per-call overhead on tiny buckets),
    buckets of ``n`` or more keys run the columnar bloom prefetch.
    Default 64: a batch-size sweep on the dev box (mixed 50%-duplicate
    traffic) has the columnar path losing ~10% at 32 keys and winning
    from 64 up, which also keeps the cluster dispatch's ~32-key
    per-node sub-batches on the packed kernels.

The resolved state is exposed as module attributes:

* ``np`` -- the numpy module, or ``None`` when absent/suppressed;
* ``HAVE_NUMPY`` -- ``np is not None``;
* ``NUMPY_MIN_BATCH`` -- the parsed crossover;
* ``backend_name()`` -- ``"numpy"`` or ``"python-packed"``, the string
  reported in worker ``/stats`` and ``ScenarioResult`` metrics.
"""

from __future__ import annotations

import os

__all__ = ["np", "HAVE_NUMPY", "NUMPY_MIN_BATCH", "backend_name"]

#: Default fused-kernel crossover (keys per bucket) when the env knob is
#: unset; see the module docstring.
DEFAULT_MIN_BATCH = 64

np = None
if os.environ.get("REPRO_FORCE_NO_NUMPY", "") not in ("1", "true", "yes"):
    try:  # pragma: no cover - exercised via the no-numpy subprocess leg
        import numpy as np  # type: ignore[no-redef]
    except ImportError:
        np = None

HAVE_NUMPY = np is not None


def _parse_min_batch(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MIN_BATCH
    return value if value > 0 else DEFAULT_MIN_BATCH


NUMPY_MIN_BATCH = _parse_min_batch(os.environ.get("REPRO_NUMPY_MIN_BATCH", ""))


def backend_name() -> str:
    """The data-plane backend this process resolved at import time."""
    return "numpy" if HAVE_NUMPY else "python-packed"
