"""Workload profiles, synthetic trace generation and arrival processes."""

from .arrival import ClosedLoopWindow, OpenLoopArrivals
from .generations import BackupGeneration, GenerationConfig, GenerationalWorkload
from .mixer import WorkloadMix, table_i_mix
from .profiles import (
    HOME_DIR,
    MAIL_SERVER,
    TABLE_I_PROFILES,
    TIME_MACHINE,
    WEB_SERVER,
    WorkloadProfile,
    profile_by_name,
)
from .traces import FingerprintTrace, TraceGenerator, TraceStatistics, measure_trace

__all__ = [
    "ClosedLoopWindow",
    "OpenLoopArrivals",
    "BackupGeneration",
    "GenerationConfig",
    "GenerationalWorkload",
    "WorkloadMix",
    "table_i_mix",
    "HOME_DIR",
    "MAIL_SERVER",
    "TABLE_I_PROFILES",
    "TIME_MACHINE",
    "WEB_SERVER",
    "WorkloadProfile",
    "profile_by_name",
    "FingerprintTrace",
    "TraceGenerator",
    "TraceStatistics",
    "measure_trace",
]
