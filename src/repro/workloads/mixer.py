"""Combining workload traces.

The paper's Figure 5 experiment feeds "the aforementioned 4 mixed workloads"
to the cluster from two client machines.  The mixer builds that combined
stream: each workload's trace is generated independently (disjoint
fingerprint spaces) and the streams are interleaved, either round-robin at a
configurable granularity (preserving per-stream locality, as real concurrent
backup streams would) or by concatenation.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from ..dedup.fingerprint import Fingerprint
from ..dedup.segment import interleave_streams
from .profiles import TABLE_I_PROFILES, WorkloadProfile
from .trace_cache import TRACE_CACHE_ENV, generate_trace

__all__ = ["WorkloadMix", "table_i_mix"]


class WorkloadMix:
    """A set of workload profiles that generate one combined fingerprint stream."""

    def __init__(self, profiles: Sequence[WorkloadProfile], seed: int = 0) -> None:
        if not profiles:
            raise ValueError("at least one profile is required")
        self.profiles = list(profiles)
        self.seed = seed

    # -- generation -----------------------------------------------------------------
    def streams(self, scale: float = 1.0) -> List[List[Fingerprint]]:
        """Generate one fingerprint list per profile (scaled).

        Traces come through the packed trace cache
        (:mod:`repro.workloads.trace_cache`): byte-identical to running the
        generator directly, but repeated generations -- including across
        ``run_sweep`` pool workers, via its shared-memory leg -- rehydrate
        instead of regenerating.
        """
        shared_prefix = os.environ.get(TRACE_CACHE_ENV) or None
        streams: List[List[Fingerprint]] = []
        for profile in self.profiles:
            scaled = profile.scaled(scale) if scale != 1.0 else profile
            streams.append(
                generate_trace(
                    scaled,
                    seed=self.seed,
                    identity_space=profile.name,
                    shared_prefix=shared_prefix,
                )
            )
        return streams

    def interleaved(self, scale: float = 1.0, granularity: int = 64) -> List[Fingerprint]:
        """Round-robin interleaving of the scaled streams.

        ``granularity`` fingerprints are taken from each stream per turn,
        mimicking how concurrent backup streams mix at the front end while
        each stream retains its internal locality.
        """
        return interleave_streams(self.streams(scale), granularity=granularity)

    def concatenated(self, scale: float = 1.0) -> List[Fingerprint]:
        """The scaled streams appended one after another."""
        combined: List[Fingerprint] = []
        for stream in self.streams(scale):
            combined.extend(stream)
        return combined

    def split_among_clients(
        self,
        num_clients: int,
        scale: float = 1.0,
        granularity: int = 64,
    ) -> List[List[Fingerprint]]:
        """Partition the interleaved mix across ``num_clients`` client machines.

        The paper uses two client machines; each gets a contiguous share of
        the combined stream so per-client locality is preserved.
        """
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        combined = self.interleaved(scale, granularity)
        share = -(-len(combined) // num_clients)
        return [combined[i * share:(i + 1) * share] for i in range(num_clients)]

    @property
    def total_fingerprints(self) -> int:
        """Unscaled total fingerprint count across the mix."""
        return sum(profile.fingerprints for profile in self.profiles)


def table_i_mix(seed: int = 0, profiles: Optional[Sequence[WorkloadProfile]] = None) -> WorkloadMix:
    """The four-workload mix used throughout the paper's evaluation."""
    return WorkloadMix(list(profiles) if profiles is not None else TABLE_I_PROFILES, seed=seed)
