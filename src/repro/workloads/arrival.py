"""Request arrival processes for throughput experiments.

Figure 1 of the paper injects fingerprint queries at fixed offered rates
(10k-100k requests/second) into clusters of different sizes and reports the
time to finish 100 000 requests -- an *open-loop* injection.  Figure 5 uses
two client machines each sending batches back-to-back -- a *closed-loop*
injection.  Both arrival disciplines are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..simulation.rng import RandomStreams

__all__ = ["OpenLoopArrivals", "ClosedLoopWindow"]


@dataclass
class OpenLoopArrivals:
    """Open-loop arrival times at a fixed offered rate.

    Parameters
    ----------
    rate:
        Offered load in requests per second.
    count:
        Number of requests to generate.
    jitter:
        ``0.0`` gives perfectly periodic (deterministic) arrivals;
        ``1.0`` gives Poisson arrivals; intermediate values blend the two.
    seed:
        Random seed for the stochastic part.
    """

    rate: float
    count: int
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def times(self) -> Iterator[float]:
        """Yield absolute arrival times (seconds), starting at 0."""
        rng = RandomStreams(self.seed).stream("arrivals")
        interval = 1.0 / self.rate
        now = 0.0
        for index in range(self.count):
            if index > 0:
                deterministic = interval
                stochastic = rng.expovariate(self.rate) if self.jitter > 0 else interval
                now += (1.0 - self.jitter) * deterministic + self.jitter * stochastic
            yield now

    @property
    def nominal_duration(self) -> float:
        """Time to inject every request at the offered rate."""
        return self.count / self.rate


@dataclass
class ClosedLoopWindow:
    """Closed-loop client: a fixed number of outstanding requests.

    The client keeps ``window`` requests in flight; a new request is issued
    the moment a response arrives.  ``think_time`` models client-side work
    between receiving a response and sending the next request.
    """

    window: int = 1
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")

    def expected_throughput(self, response_time: float) -> float:
        """Little's-law estimate of sustained request rate."""
        if response_time + self.think_time <= 0:
            return float("inf")
        return self.window / (response_time + self.think_time)
