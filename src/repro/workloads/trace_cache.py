"""Packed trace cache: in-process memo + opt-in shared-memory publication.

Sweep grids hold the workload axes fixed far more often than they vary
them, so every grid point -- and, with ``run_sweep(workers=N)``, every
pool worker -- used to re-run the same deterministic
:class:`~repro.workloads.traces.TraceGenerator` from scratch.  This module
caches a generated trace in the :class:`~repro.core.digest_batch.DigestBatch`
packed layout (digests back to back + a ``uint32`` chunk-size array):

* **In-process memo** -- always on.  Keyed by the full generation identity
  ``(profile, seed, identity_space)``; rehydrating ``Fingerprint`` objects
  from the packed buffer is far cheaper than re-running the generator, and
  every call gets a fresh list (callers may do what they like with it).
* **Shared-memory publication** -- gated by the ``REPRO_TRACE_CACHE``
  environment variable holding a segment-name prefix.
  :func:`~repro.scenarios.engine.run_sweep` sets it (to a sweep-unique
  prefix) around its process pool, so the first worker to need a trace
  publishes it and the rest attach instead of regenerating.

Torn-read safety: a segment is created zeroed at full size, the payload is
written first, and the 4-byte magic is stamped *last* -- an attacher that
races the writer sees a zero magic and simply generates locally (correct,
just not accelerated).  Publication races (two workers generating the same
trace) lose gracefully: the loser keeps its local copy.

Cleanup: pool workers exit normally at pool shutdown, so their ``atexit``
sweep (:mod:`repro.storage.shm`) unlinks the segments they published; the
sweep parent additionally calls :func:`cleanup_shared_traces` with its
prefix, which removes anything a crashed worker left behind.
"""

from __future__ import annotations

import hashlib
import struct
from array import array
from typing import List, Optional, Tuple

from ..dedup.fingerprint import Fingerprint
from ..storage.shm import SharedBuffer, shared_memory_available, unlink_segment
from .profiles import WorkloadProfile
from .traces import TraceGenerator

__all__ = [
    "generate_trace",
    "cleanup_shared_traces",
    "clear_memo",
    "TRACE_CACHE_ENV",
]

#: Environment variable carrying the shared-segment name prefix; unset (or
#: empty) keeps the cache purely in-process.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

_MAGIC = b"RTR1"
#: magic, digest count, payload bytes after the header.
_HEADER = struct.Struct(">4sQQ")

#: Packed payloads keyed by trace identity.  Cleared wholesale past the cap
#: (same policy as the hashstore's hash memo): traces are large, and a
#: sweep touches only a handful of distinct ones at a time.
_MEMO: dict = {}
_MEMO_MAX = 8

_DIGEST_BYTES = 20


def _trace_key(profile: WorkloadProfile, seed: int, identity_space: str) -> str:
    """Stable identity of one generated trace (all generator inputs)."""
    text = (
        f"{profile.name}|{profile.fingerprints}|{profile.redundancy!r}|"
        f"{profile.duplicate_distance!r}|{profile.chunk_size}|{seed}|{identity_space}"
    )
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


def _segment_name(prefix: str, key: str) -> str:
    return f"{prefix}-{key}"


def _pack(fingerprints: List[Fingerprint]) -> Tuple[bytes, array]:
    blob = b"".join(fingerprint.digest for fingerprint in fingerprints)
    sizes = array("I", (fingerprint.chunk_size for fingerprint in fingerprints))
    return blob, sizes


def _rehydrate(blob: bytes, sizes: array) -> List[Fingerprint]:
    # Bypass __init__: the 20-byte invariant is enforced by the packing.
    new_fp = object.__new__
    fp_cls = Fingerprint
    fingerprints: List[Fingerprint] = []
    append = fingerprints.append
    for index, start in enumerate(range(0, len(blob), _DIGEST_BYTES)):
        fingerprint = new_fp(fp_cls)
        fields = fingerprint.__dict__
        fields["digest"] = blob[start:start + _DIGEST_BYTES]
        fields["chunk_size"] = sizes[index]
        append(fingerprint)
    return fingerprints


def _attach_shared(name: str, count_hint: int) -> Optional[Tuple[bytes, array]]:
    """Read a published trace, or ``None`` (absent, torn, or unavailable)."""
    if not shared_memory_available():
        return None
    try:
        buffer = SharedBuffer.attach(name)
    except (FileNotFoundError, OSError):
        return None
    try:
        view = memoryview(buffer.buf)
        try:
            if len(view) < _HEADER.size:
                return None
            magic, count, payload_bytes = _HEADER.unpack_from(view, 0)
            if magic != _MAGIC or len(view) < _HEADER.size + payload_bytes:
                return None  # absent-or-mid-write: generate locally
            expected = count * (_DIGEST_BYTES + 4)
            if payload_bytes != expected:
                return None
            blob_end = _HEADER.size + count * _DIGEST_BYTES
            blob = bytes(view[_HEADER.size:blob_end])
            sizes = array("I")
            sizes.frombytes(bytes(view[blob_end:blob_end + count * 4]))
            return blob, sizes
        finally:
            view.release()
    finally:
        buffer.close()


def _publish_shared(name: str, blob: bytes, sizes: array) -> None:
    """Best-effort publication; losing a create race is fine."""
    if not shared_memory_available():
        return
    count = len(blob) // _DIGEST_BYTES
    payload_bytes = len(blob) + count * 4
    try:
        buffer = SharedBuffer.create(_HEADER.size + payload_bytes, name=name, shared=True)
    except (FileExistsError, OSError):
        return  # someone else published (or the platform refused); keep local
    if buffer.name is None:
        return  # bytearray fallback: nothing cross-process to publish
    view = memoryview(buffer.buf)
    try:
        blob_end = _HEADER.size + len(blob)
        view[_HEADER.size:blob_end] = blob
        view[blob_end:blob_end + count * 4] = sizes.tobytes()
        # Magic last: attachers treat a zero magic as "not published yet".
        _HEADER.pack_into(view, 0, _MAGIC, count, payload_bytes)
    finally:
        view.release()
        # Detach but do NOT unlink: the segment stays for other workers;
        # this process's atexit sweep (or the sweep parent's
        # cleanup_shared_traces) removes it.  The segment stays registered
        # in _CREATED_SEGMENTS so that sweep finds it.
        buffer.close()


def generate_trace(
    profile: WorkloadProfile,
    seed: int = 0,
    identity_space: Optional[str] = None,
    shared_prefix: Optional[str] = None,
) -> List[Fingerprint]:
    """The trace ``TraceGenerator(profile, seed, identity_space)`` yields.

    Byte-identical to ``list(generator.generate())`` (pinned by the
    differential suite); repeated calls rehydrate from the packed memo, and
    ``shared_prefix`` (usually from :data:`TRACE_CACHE_ENV`) additionally
    consults/publishes the cross-process cache.
    """
    space = identity_space if identity_space is not None else profile.name
    key = _trace_key(profile, seed, space)
    packed = _MEMO.get(key)
    if packed is not None:
        return _rehydrate(*packed)
    if shared_prefix:
        packed = _attach_shared(_segment_name(shared_prefix, key), profile.fingerprints)
        if packed is not None:
            if len(_MEMO) >= _MEMO_MAX:
                _MEMO.clear()
            _MEMO[key] = packed
            return _rehydrate(*packed)
    generator = TraceGenerator(profile, seed=seed, identity_space=identity_space)
    fingerprints = list(generator.generate())
    packed = _pack(fingerprints)
    if len(_MEMO) >= _MEMO_MAX:
        _MEMO.clear()
    _MEMO[key] = packed
    if shared_prefix:
        _publish_shared(_segment_name(shared_prefix, key), *packed)
    return fingerprints


def clear_memo() -> None:
    """Drop the in-process packed memo (tests and memory-pressure hooks)."""
    _MEMO.clear()


def cleanup_shared_traces(prefix: str) -> int:
    """Unlink every published trace segment under ``prefix``.

    Supervisor-side crash cleanup: worker exits normally unlink their own
    segments, but a ``kill -9``'d worker cannot.  Segment names are
    ``{prefix}-{16 hex chars}``; on platforms exposing ``/dev/shm`` they are
    enumerated there, elsewhere this is a no-op (the names are not
    discoverable portably).  Returns how many segments were removed.
    """
    import os

    removed = 0
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        try:
            entries = os.listdir(shm_dir)
        except OSError:
            entries = []
        for entry in entries:
            if entry.startswith(f"{prefix}-"):
                removed += unlink_segment(entry)
    return removed
