"""Synthetic fingerprint trace generation.

The real traces behind the paper's Table I are not publicly distributable, so
experiments run on synthetic traces that reproduce the three published
statistics of each workload -- fingerprint count, redundancy percentage, and
mean duplicate distance -- plus the qualitative property batching exploits
(duplicates of a fingerprint appear near its previous occurrence).

Generation model
----------------
The trace is generated position by position.  At each position the generator
emits, with probability ``redundancy``, a *duplicate*: it samples a reuse
distance ``d`` from an exponential distribution with the profile's mean
duplicate distance and re-emits the fingerprint whose most recent occurrence
is (approximately) ``d`` positions back.  Otherwise it emits a brand-new
fingerprint.  Fingerprints are real SHA-1 digests derived deterministically
from integer identities, so their distribution over the cluster's key space
is uniform, exactly like hashes of real chunks.

:func:`measure_trace` computes the same three statistics from any fingerprint
sequence, so tests and the Table-I benchmark can verify generated traces
against the published numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..dedup.fingerprint import Fingerprint, synthetic_fingerprint
from ..simulation.rng import RandomStreams
from .profiles import WorkloadProfile

__all__ = ["TraceStatistics", "FingerprintTrace", "TraceGenerator", "measure_trace"]


@dataclass(frozen=True)
class TraceStatistics:
    """The Table-I statistics of a fingerprint sequence."""

    fingerprints: int
    unique_fingerprints: int
    redundancy: float
    mean_duplicate_distance: float

    def as_row(self) -> dict:
        """Rendering-friendly dictionary (one Table I row)."""
        return {
            "fingerprints": self.fingerprints,
            "unique": self.unique_fingerprints,
            "redundant_pct": round(self.redundancy * 100.0, 1),
            "distance": round(self.mean_duplicate_distance),
        }


@dataclass
class FingerprintTrace:
    """A generated trace: the fingerprints plus the profile they came from."""

    profile: WorkloadProfile
    fingerprints: List[Fingerprint]

    def __len__(self) -> int:
        return len(self.fingerprints)

    def statistics(self) -> TraceStatistics:
        """Measured statistics of this trace."""
        return measure_trace(self.fingerprints)


class TraceGenerator:
    """Generates synthetic fingerprint traces from a workload profile.

    Parameters
    ----------
    profile:
        Workload description (usually one of the Table I profiles, possibly
        scaled down for laptop runs).
    seed:
        Master seed; traces are fully deterministic given (profile, seed).
    identity_space:
        Optional label mixed into the fingerprint identities so different
        workloads (or different backup generations) produce disjoint
        fingerprints even with the same seed.
    """

    #: How far around the sampled position to search for a "fresh" fingerprint
    #: (one whose most recent occurrence is that position).  Keeps the
    #: realised reuse distance close to the sampled one.
    _FRESH_SEARCH_RADIUS = 64

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 0,
        identity_space: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.identity_space = identity_space if identity_space is not None else profile.name
        self._rng = RandomStreams(seed).stream(f"trace:{self.identity_space}")
        base = hashlib.sha256(self.identity_space.encode("utf-8")).digest()
        self._identity_base = int.from_bytes(base[:8], "big") << 64

    # -- generation -------------------------------------------------------------------
    def generate(self, count: Optional[int] = None) -> Iterator[Fingerprint]:
        """Yield ``count`` fingerprints (default: the profile's full length)."""
        total = self.profile.fingerprints if count is None else int(count)
        if total < 1:
            raise ValueError("count must be >= 1")
        rng = self._rng
        redundancy = self.profile.redundancy
        mean_distance = self.profile.duplicate_distance
        chunk_size = self.profile.chunk_size

        history: List[int] = []            # identity emitted at each position
        last_position: Dict[int, int] = {}  # identity -> most recent position
        next_identity = 0

        for position in range(total):
            emit_duplicate = history and rng.random() < redundancy
            if emit_duplicate:
                identity = self._pick_duplicate(rng, history, last_position, position, mean_distance)
            else:
                identity = self._identity_base + next_identity
                next_identity += 1
            history.append(identity)
            last_position[identity] = position
            yield synthetic_fingerprint(identity, chunk_size)

    def materialize(self, count: Optional[int] = None) -> FingerprintTrace:
        """Generate the trace eagerly and wrap it with its profile."""
        return FingerprintTrace(profile=self.profile, fingerprints=list(self.generate(count)))

    # -- duplicate selection ------------------------------------------------------------
    def _pick_duplicate(
        self,
        rng,
        history: List[int],
        last_position: Dict[int, int],
        position: int,
        mean_distance: float,
    ) -> int:
        """Choose an existing identity whose last occurrence is ~``d`` back."""
        limit = len(history)
        distance = min(limit, max(1, round(rng.expovariate(1.0 / mean_distance))))
        target = position - distance
        # Prefer a position that is still the *latest* occurrence of its
        # identity, so the realised reuse distance matches the sampled one.
        for offset in range(self._FRESH_SEARCH_RADIUS):
            for candidate in (target - offset, target + offset):
                if 0 <= candidate < limit:
                    identity = history[candidate]
                    if last_position[identity] == candidate:
                        return identity
        # Dense reuse region: fall back to the sampled position's identity.
        return history[max(0, min(limit - 1, target))]


def measure_trace(fingerprints: Iterable[Fingerprint]) -> TraceStatistics:
    """Compute Table-I statistics (count, redundancy, mean reuse distance)."""
    last_seen: Dict[bytes, int] = {}
    total = 0
    duplicates = 0
    distance_sum = 0
    for position, fingerprint in enumerate(fingerprints):
        digest = fingerprint.digest
        previous = last_seen.get(digest)
        if previous is not None:
            duplicates += 1
            distance_sum += position - previous
        last_seen[digest] = position
        total += 1
    redundancy = duplicates / total if total else 0.0
    mean_distance = distance_sum / duplicates if duplicates else 0.0
    return TraceStatistics(
        fingerprints=total,
        unique_fingerprints=len(last_seen),
        redundancy=redundancy,
        mean_duplicate_distance=mean_distance,
    )
