"""Multi-generation backup workloads.

Cloud backup's defining access pattern -- and the reason the paper says
backup "benefits the most from deduplication" -- is *repeated full backups of
existing data*: each generation (e.g. each nightly backup) re-sends almost
the same chunk stream as the previous one, with a small churn of modified and
new data.  The Table-I traces capture a single stream; this module generates
the cross-generation structure explicitly, so experiments can measure how the
dedup ratio and the RAM-tier hit ratio evolve over a backup cycle.

Model
-----
A *dataset* is a list of chunk identities.  Each new generation applies churn
to the previous dataset: a fraction of chunks is modified (replaced by brand
new identities) and a fraction of new chunks is appended, both controlled by
the :class:`GenerationConfig`.  The fingerprints of a generation are the
dataset's identities in order, so within-generation locality is perfect and
cross-generation redundancy equals ``1 - churn``, which is the behaviour
in-line dedup systems are designed around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..dedup.fingerprint import Fingerprint, synthetic_fingerprint
from ..simulation.rng import RandomStreams

__all__ = ["GenerationConfig", "BackupGeneration", "GenerationalWorkload"]


@dataclass(frozen=True)
class GenerationConfig:
    """Shape of a repeated-full-backup workload."""

    initial_chunks: int = 10_000
    generations: int = 7
    modify_fraction: float = 0.03
    growth_fraction: float = 0.01
    chunk_size: int = 8192
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_chunks < 1:
            raise ValueError("initial_chunks must be >= 1")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= self.modify_fraction <= 1.0:
            raise ValueError("modify_fraction must be within [0, 1]")
        if self.growth_fraction < 0.0:
            raise ValueError("growth_fraction must be non-negative")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")


@dataclass
class BackupGeneration:
    """One full backup: its sequence number and chunk identities."""

    number: int
    identities: List[int] = field(default_factory=list)
    modified_chunks: int = 0
    new_chunks: int = 0

    def __len__(self) -> int:
        return len(self.identities)

    def fingerprints(self, chunk_size: int = 8192) -> Iterator[Fingerprint]:
        """The generation's fingerprint stream, in dataset order."""
        for identity in self.identities:
            yield synthetic_fingerprint(identity, chunk_size)


class GenerationalWorkload:
    """Generates successive full backups of an evolving dataset."""

    def __init__(self, config: Optional[GenerationConfig] = None) -> None:
        self.config = config if config is not None else GenerationConfig()
        self._rng = RandomStreams(self.config.seed).stream("generations")
        self._next_identity = 1
        self.generations: List[BackupGeneration] = []
        self._build()

    # ------------------------------------------------------------------ construction
    def _fresh_identity(self) -> int:
        identity = self._next_identity
        self._next_identity += 1
        # Offset into a dedicated identity space so generational workloads do
        # not collide with Table-I traces in mixed experiments.
        return (1 << 62) + identity

    def _build(self) -> None:
        config = self.config
        dataset = [self._fresh_identity() for _ in range(config.initial_chunks)]
        first = BackupGeneration(number=0, identities=list(dataset), new_chunks=len(dataset))
        self.generations.append(first)
        for number in range(1, config.generations):
            dataset, generation = self._evolve(dataset, number)
            self.generations.append(generation)

    def _evolve(self, dataset: List[int], number: int) -> tuple:
        config = self.config
        rng = self._rng
        modified = 0
        evolved = list(dataset)
        modify_count = round(len(evolved) * config.modify_fraction)
        if modify_count:
            positions = rng.sample(range(len(evolved)), modify_count)
            for position in positions:
                evolved[position] = self._fresh_identity()
            modified = modify_count
        growth_count = round(len(evolved) * config.growth_fraction)
        new_identities = [self._fresh_identity() for _ in range(growth_count)]
        evolved.extend(new_identities)
        generation = BackupGeneration(
            number=number,
            identities=evolved,
            modified_chunks=modified,
            new_chunks=modified + growth_count,
        )
        return evolved, generation

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self.generations)

    def generation(self, number: int) -> BackupGeneration:
        return self.generations[number]

    def fingerprint_stream(self) -> Iterator[Fingerprint]:
        """All generations concatenated, oldest first (a full backup cycle)."""
        for generation in self.generations:
            yield from generation.fingerprints(self.config.chunk_size)

    def total_chunks(self) -> int:
        """Chunk occurrences across every generation (logical volume)."""
        return sum(len(generation) for generation in self.generations)

    def unique_chunks(self) -> int:
        """Distinct chunk identities ever produced (physical volume)."""
        return self._next_identity - 1

    def expected_dedup_ratio(self) -> float:
        """Logical over physical chunk count for the whole cycle."""
        unique = self.unique_chunks()
        return self.total_chunks() / unique if unique else 1.0

    def per_generation_redundancy(self) -> Dict[int, float]:
        """Fraction of each generation's chunks already seen in earlier ones."""
        seen: set = set()
        redundancy: Dict[int, float] = {}
        for generation in self.generations:
            already = sum(1 for identity in generation.identities if identity in seen)
            redundancy[generation.number] = already / len(generation) if len(generation) else 0.0
            seen.update(generation.identities)
        return redundancy
