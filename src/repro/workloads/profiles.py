"""Workload profiles matching the paper's Table I.

The paper evaluates SHHC with fingerprint traces from four real-world
workloads (FIU web/home/mail traces plus a private Time Machine backup).
Only three statistics of each trace are published (Table I): the number of
fingerprints, the percentage of redundant content, and the mean distance
between similar fingerprints.  The profiles below capture exactly those
numbers; the synthetic generator (:mod:`repro.workloads.traces`) reproduces
them, and the Table-I benchmark verifies the match.

Because the full-size traces (2-24 million fingerprints) are unnecessarily
heavy for laptop-scale regression runs, every profile can be *scaled*: the
fingerprint count and duplicate distance shrink by the same factor, which
preserves the redundancy ratio and the locality structure relative to the
trace length.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

__all__ = [
    "WorkloadProfile",
    "WEB_SERVER",
    "HOME_DIR",
    "MAIL_SERVER",
    "TIME_MACHINE",
    "TABLE_I_PROFILES",
    "profile_by_name",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of a fingerprint trace (one Table I row)."""

    name: str
    fingerprints: int
    redundancy: float
    duplicate_distance: float
    chunk_size: int

    def __post_init__(self) -> None:
        if self.fingerprints < 1:
            raise ValueError("fingerprints must be >= 1")
        if not 0.0 <= self.redundancy < 1.0:
            raise ValueError("redundancy must be within [0, 1)")
        if self.duplicate_distance < 1:
            raise ValueError("duplicate_distance must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    @property
    def unique_fingerprints(self) -> int:
        """Expected number of distinct fingerprints in the trace."""
        return max(1, round(self.fingerprints * (1.0 - self.redundancy)))

    @property
    def logical_bytes(self) -> int:
        """Pre-dedup data volume represented by the trace."""
        return self.fingerprints * self.chunk_size

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Shrink (or grow) the trace by ``factor`` while keeping its shape.

        Both the fingerprint count and the duplicate distance scale, so the
        locality of the scaled trace relative to its length matches the
        original.  The redundancy ratio and chunk size are unchanged.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            fingerprints=max(100, round(self.fingerprints * factor)),
            duplicate_distance=max(1.0, self.duplicate_distance * factor),
        )

    def with_fingerprints(self, count: int) -> "WorkloadProfile":
        """Scale the profile to an exact fingerprint count."""
        return self.scaled(count / self.fingerprints)


#: FIU web server trace (Table I row 1): lightly redundant, tight locality.
WEB_SERVER = WorkloadProfile(
    name="web-server",
    fingerprints=2_094_832,
    redundancy=0.18,
    duplicate_distance=10_781,
    chunk_size=4096,
)

#: FIU home directories trace (Table I row 2).
HOME_DIR = WorkloadProfile(
    name="home-dir",
    fingerprints=2_501_186,
    redundancy=0.37,
    duplicate_distance=26_326,
    chunk_size=4096,
)

#: FIU mail server trace (Table I row 3): highly redundant.
MAIL_SERVER = WorkloadProfile(
    name="mail-server",
    fingerprints=24_122_047,
    redundancy=0.85,
    duplicate_distance=246_253,
    chunk_size=4096,
)

#: Six months of an OS X user's Time Machine backups (Table I row 4), 8 KB chunks.
TIME_MACHINE = WorkloadProfile(
    name="time-machine",
    fingerprints=13_146_417,
    redundancy=0.17,
    duplicate_distance=1_004_899,
    chunk_size=8192,
)

#: All four Table I workloads in the paper's order.
TABLE_I_PROFILES: List[WorkloadProfile] = [WEB_SERVER, HOME_DIR, MAIL_SERVER, TIME_MACHINE]

_BY_NAME: Dict[str, WorkloadProfile] = {profile.name: profile for profile in TABLE_I_PROFILES}


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up one of the Table I profiles by its name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; choose from {sorted(_BY_NAME)}") from None
