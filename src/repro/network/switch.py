"""A star-topology Ethernet switch connecting named endpoints.

The paper's testbed connects all machines through one 1 Gb/s switch.  The
switch here owns a pair of directed :class:`~repro.network.link.NetworkLink`
objects per endpoint (uplink to the switch, downlink from it), so that each
host's NIC is the serialisation point -- the behaviour that limits a single
hash server's achievable request rate and that batching amortises.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..simulation.engine import Event, Simulator
from .link import DEFAULT_LINK_LATENCY, GIGABIT_BANDWIDTH, NetworkLink
from .message import Message

__all__ = ["NetworkSwitch"]


class NetworkSwitch:
    """A full-duplex switch with per-endpoint uplink/downlink pairs."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        latency: float = DEFAULT_LINK_LATENCY,
        bandwidth: float = GIGABIT_BANDWIDTH,
        name: str = "switch",
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.name = name
        self._uplinks: Dict[str, NetworkLink] = {}
        self._downlinks: Dict[str, NetworkLink] = {}
        self._handlers: Dict[str, Callable[[Message], None]] = {}

    # -- membership ---------------------------------------------------------------
    def attach(self, endpoint: str, handler: Optional[Callable[[Message], None]] = None) -> None:
        """Register ``endpoint`` and (optionally) its message delivery handler."""
        if endpoint in self._uplinks:
            raise ValueError(f"endpoint {endpoint!r} is already attached")
        half_latency = self.latency / 2.0
        self._uplinks[endpoint] = NetworkLink(
            self.sim, half_latency, self.bandwidth, name=f"{self.name}.{endpoint}.up"
        )
        self._downlinks[endpoint] = NetworkLink(
            self.sim, half_latency, self.bandwidth, name=f"{self.name}.{endpoint}.down"
        )
        if handler is not None:
            self._handlers[endpoint] = handler

    def set_handler(self, endpoint: str, handler: Callable[[Message], None]) -> None:
        """Install or replace the delivery handler for ``endpoint``."""
        if endpoint not in self._uplinks:
            raise KeyError(f"endpoint {endpoint!r} is not attached")
        self._handlers[endpoint] = handler

    def endpoints(self) -> list:
        """Names of all attached endpoints."""
        return sorted(self._uplinks)

    def is_attached(self, endpoint: str) -> bool:
        return endpoint in self._uplinks

    # -- delivery ------------------------------------------------------------------
    def send(self, message: Message) -> Event:
        """Route ``message`` from its source endpoint to its destination.

        The message traverses the source's uplink then the destination's
        downlink; the returned event succeeds (with the message) at final
        delivery, after the destination handler has run.
        """
        source, destination = message.source, message.destination
        if source not in self._uplinks:
            raise KeyError(f"source endpoint {source!r} is not attached")
        if destination not in self._downlinks:
            raise KeyError(f"destination endpoint {destination!r} is not attached")

        uplink = self._uplinks[source]
        downlink = self._downlinks[destination]

        if self.sim is None:
            uplink.send(message)
            return downlink.send(message, self._handlers.get(destination))

        sim = self.sim
        done = sim.event(f"{self.name}.deliver")

        def _at_switch(_uplink_event: Event) -> None:
            second_leg = downlink.send(message, self._handlers.get(destination))
            second_leg.add_callback(lambda _e: done.succeed(message))

        uplink.send(message).add_callback(_at_switch)
        return done

    # -- reporting -------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-endpoint traffic counters."""
        return {
            endpoint: {
                "sent_messages": self._uplinks[endpoint].messages_sent,
                "sent_bytes": self._uplinks[endpoint].bytes_sent,
                "received_messages": self._downlinks[endpoint].messages_sent,
                "received_bytes": self._downlinks[endpoint].bytes_sent,
            }
            for endpoint in self._uplinks
        }

    def total_bytes(self) -> int:
        """Total bytes that crossed the switch fabric (counted once per leg)."""
        return sum(link.bytes_sent for link in self._uplinks.values()) + sum(
            link.bytes_sent for link in self._downlinks.values()
        )
