"""Network substrate: messages, links, switch fabric, RPC and load balancing."""

from .link import DEFAULT_LINK_LATENCY, GIGABIT_BANDWIDTH, NetworkLink
from .loadbalancer import (
    BalancingPolicy,
    LeastConnectionsPolicy,
    LoadBalancer,
    RoundRobinPolicy,
    SourceHashPolicy,
    WeightedRoundRobinPolicy,
)
from .message import MESSAGE_HEADER_BYTES, Message
from .rpc import RpcError, RpcLayer, ServiceUnavailableError
from .switch import NetworkSwitch
from .topology import BuiltNetwork, ClusterTopology

__all__ = [
    "DEFAULT_LINK_LATENCY",
    "GIGABIT_BANDWIDTH",
    "NetworkLink",
    "BalancingPolicy",
    "LeastConnectionsPolicy",
    "LoadBalancer",
    "RoundRobinPolicy",
    "SourceHashPolicy",
    "WeightedRoundRobinPolicy",
    "MESSAGE_HEADER_BYTES",
    "Message",
    "RpcError",
    "RpcLayer",
    "ServiceUnavailableError",
    "NetworkSwitch",
    "BuiltNetwork",
    "ClusterTopology",
]
