"""Message types exchanged between simulated components.

Messages are small dataclasses with explicit byte-size accounting so the
network substrate can charge realistic transfer times.  The fingerprint
lookup protocol itself (requests/responses between the front-end and the hash
cluster) lives in :mod:`repro.core.protocol`; this module defines the generic
envelope used by links, switches and the RPC layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message", "MESSAGE_HEADER_BYTES"]

#: Fixed per-message framing overhead (Ethernet + IP + TCP headers, rounded).
MESSAGE_HEADER_BYTES = 78

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A network message.

    Attributes
    ----------
    source / destination:
        Logical endpoint names (e.g. ``"client-0"``, ``"hashnode-3"``).
    payload:
        Arbitrary application object (a protocol request/response).
    payload_bytes:
        Serialised size of the payload; combined with the framing overhead to
        compute transfer time on a link.
    created_at:
        Simulated time the message was created (set by the sender).
    """

    source: str
    destination: str
    payload: Any
    payload_bytes: int
    created_at: float = 0.0
    message_id: int = field(default_factory=lambda: next(_message_ids))
    reply_to: Optional[int] = None

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire including framing."""
        return self.payload_bytes + MESSAGE_HEADER_BYTES

    def reply(self, payload: Any, payload_bytes: int, created_at: float = 0.0) -> "Message":
        """Construct the response message travelling the reverse direction."""
        return Message(
            source=self.destination,
            destination=self.source,
            payload=payload,
            payload_bytes=payload_bytes,
            created_at=created_at,
            reply_to=self.message_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message #{self.message_id} {self.source}->{self.destination} "
            f"{self.wire_bytes}B>"
        )
