"""Request/response RPC layer over the switch.

Components register a *service handler*; callers invoke :meth:`RpcLayer.call`
and receive an event that succeeds with the response payload once the request
has crossed the network, been processed (handler may return an event for
asynchronous processing) and the response has crossed back.

Fault injection: :meth:`RpcLayer.set_availability` installs a liveness probe
(typically backed by the cluster's down-set, see
:mod:`repro.core.fault_injection`).  A call addressed to an unavailable
service fails immediately with :class:`ServiceUnavailableError` -- the
crashed node simply does not answer, and the caller is expected to have
routed around it (the web front-end splits batches by live replica set).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from ..simulation.engine import Event, Simulator
from ..simulation.stats import LatencyRecorder
from .message import Message
from .switch import NetworkSwitch

__all__ = ["RpcLayer", "RpcError", "ServiceUnavailableError"]

Handler = Callable[[Any], Union[Any, "tuple[Any, int]", Event]]


class RpcError(RuntimeError):
    """Raised when an RPC is addressed to an unknown service."""


class ServiceUnavailableError(RpcError):
    """Raised when an RPC targets a service marked down by fault injection."""


class RpcLayer:
    """Thin RPC abstraction: named services, sized payloads, response routing."""

    def __init__(self, switch: NetworkSwitch, sim: Optional[Simulator] = None) -> None:
        self.switch = switch
        self.sim = sim if sim is not None else switch.sim
        self._services: Dict[str, Handler] = {}
        self._pending: Dict[int, Event] = {}
        self._availability: Optional[Callable[[str], bool]] = None
        self.unavailable_calls = 0
        self.call_latency = LatencyRecorder("rpc.call_latency")

    # -- registration -----------------------------------------------------------------
    def register(self, endpoint: str, handler: Handler) -> None:
        """Attach ``endpoint`` to the switch (if needed) and install ``handler``.

        The handler receives the request payload and returns either:

        * a plain response payload (assumed small),
        * a ``(response_payload, response_bytes)`` tuple, or
        * an :class:`Event` succeeding with one of the above (asynchronous
          processing on the callee's side).
        """
        if not self.switch.is_attached(endpoint):
            self.switch.attach(endpoint)
        self._services[endpoint] = handler
        self.switch.set_handler(endpoint, self._on_message)

    def register_client(self, endpoint: str) -> None:
        """Attach a call-only endpoint (no service handler)."""
        if not self.switch.is_attached(endpoint):
            self.switch.attach(endpoint)
        self.switch.set_handler(endpoint, self._on_message)

    def services(self) -> list:
        return sorted(self._services)

    # -- fault injection --------------------------------------------------------------
    def set_availability(self, probe: Optional[Callable[[str], bool]]) -> None:
        """Install ``probe(endpoint) -> bool``; ``False`` makes calls fail fast.

        Pass ``None`` to remove the probe.  Endpoints the probe does not
        know about should return ``True``.
        """
        self._availability = probe

    def is_available(self, endpoint: str) -> bool:
        """Whether ``endpoint`` currently accepts new requests."""
        return self._availability is None or self._availability(endpoint)

    # -- calling ---------------------------------------------------------------------
    def call(
        self,
        source: str,
        destination: str,
        payload: Any,
        payload_bytes: int,
    ) -> Event:
        """Issue an RPC; the returned event succeeds with the response payload."""
        if destination not in self._services:
            raise RpcError(f"no service registered at {destination!r}")
        if not self.is_available(destination):
            self.unavailable_calls += 1
            raise ServiceUnavailableError(f"service {destination!r} is down")
        if not self.switch.is_attached(source):
            self.register_client(source)
        now = self.sim.now if self.sim is not None else 0.0
        request = Message(
            source=source,
            destination=destination,
            payload=payload,
            payload_bytes=payload_bytes,
            created_at=now,
        )
        if self.sim is None:
            # Immediate mode: run the whole round trip synchronously.
            response_payload = self._invoke_handler(destination, payload)
            done = _immediate(response_payload)
            return done
        completion = self.sim.event("rpc.response")
        self._pending[request.message_id] = completion
        self.switch.send(request)
        return completion

    # -- message plumbing ----------------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        if message.reply_to is not None:
            self._complete_call(message)
        else:
            self._serve_request(message)

    def _serve_request(self, message: Message) -> None:
        handler = self._services.get(message.destination)
        if handler is None:
            raise RpcError(f"message for unknown service {message.destination!r}")
        result = handler(message.payload)
        if isinstance(result, Event):
            result.add_callback(lambda event: self._send_response(message, event.value))
        else:
            self._send_response(message, result)

    def _send_response(self, request: Message, result: Any) -> None:
        if isinstance(result, tuple) and len(result) == 2 and isinstance(result[1], int):
            response_payload, response_bytes = result
        else:
            response_payload, response_bytes = result, 64
        now = self.sim.now if self.sim is not None else 0.0
        response = request.reply(response_payload, response_bytes, created_at=now)
        self.switch.send(response)

    def _complete_call(self, message: Message) -> None:
        completion = self._pending.pop(message.reply_to, None)
        if completion is None:
            return
        if self.sim is not None:
            self.call_latency.record(self.sim.now - message.created_at if message.created_at else 0.0)
        completion.succeed(message.payload)

    def _invoke_handler(self, destination: str, payload: Any) -> Any:
        handler = self._services[destination]
        result = handler(payload)
        if isinstance(result, Event):
            if not result.triggered:
                raise RpcError("immediate-mode RPC requires synchronous handlers")
            result = result.value
        if isinstance(result, tuple) and len(result) == 2 and isinstance(result[1], int):
            return result[0]
        return result

    @property
    def pending_calls(self) -> int:
        """Number of in-flight RPCs awaiting a response."""
        return len(self._pending)


class _ImmediateEventSim:
    def schedule(self, _delay: float, callback, *args) -> None:
        callback(*args)


def _immediate(value: Any) -> Event:
    event = Event(sim=_ImmediateEventSim(), name="rpc.immediate")
    event.succeed(value)
    return event
