"""Cluster topology description and construction helpers.

A :class:`ClusterTopology` captures the names of every endpoint in a deployed
backup service -- clients, web front-ends, hash nodes -- plus the fabric
parameters, and can materialise the corresponding simulated network (switch +
RPC layer).  Experiments use this to spin up paper-shaped deployments in one
call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..simulation.engine import Simulator
from .link import DEFAULT_LINK_LATENCY, GIGABIT_BANDWIDTH
from .rpc import RpcLayer
from .switch import NetworkSwitch

__all__ = ["ClusterTopology", "BuiltNetwork"]


@dataclass
class ClusterTopology:
    """Names and fabric parameters of a backup-service deployment."""

    num_clients: int = 2
    num_web_servers: int = 3
    num_hash_nodes: int = 4
    link_latency: float = DEFAULT_LINK_LATENCY * 2  # two switched hops end-to-end
    bandwidth: float = GIGABIT_BANDWIDTH
    client_prefix: str = "client"
    web_prefix: str = "web"
    hash_prefix: str = "hashnode"

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if self.num_web_servers < 1:
            raise ValueError("num_web_servers must be >= 1")
        if self.num_hash_nodes < 1:
            raise ValueError("num_hash_nodes must be >= 1")

    # -- name helpers ------------------------------------------------------------------
    @property
    def client_names(self) -> List[str]:
        return [f"{self.client_prefix}-{i}" for i in range(self.num_clients)]

    @property
    def web_server_names(self) -> List[str]:
        return [f"{self.web_prefix}-{i}" for i in range(self.num_web_servers)]

    @property
    def hash_node_names(self) -> List[str]:
        return [f"{self.hash_prefix}-{i}" for i in range(self.num_hash_nodes)]

    @property
    def all_endpoints(self) -> List[str]:
        return self.client_names + self.web_server_names + self.hash_node_names

    # -- construction --------------------------------------------------------------------
    def build_network(self, sim: Optional[Simulator] = None) -> "BuiltNetwork":
        """Create the switch and RPC layer with every endpoint attached."""
        switch = NetworkSwitch(
            sim=sim,
            latency=self.link_latency,
            bandwidth=self.bandwidth,
            name="fabric",
        )
        rpc = RpcLayer(switch, sim)
        for endpoint in self.all_endpoints:
            rpc.register_client(endpoint)
        return BuiltNetwork(topology=self, switch=switch, rpc=rpc)


@dataclass
class BuiltNetwork:
    """A materialised network: the switch fabric plus the RPC layer over it."""

    topology: ClusterTopology
    switch: NetworkSwitch
    rpc: RpcLayer
    extras: dict = field(default_factory=dict)
