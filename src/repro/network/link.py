"""Point-to-point network link model.

Each link has a propagation latency and a bandwidth and serialises the
transmission of messages (one frame at a time), which is what produces the
batching benefit the paper observes: many small request messages pay the
per-message latency repeatedly, while one batched message pays it once.

Defaults model the paper's testbed fabric: 1 Gb/s Ethernet through a single
switch with ~100 µs end-to-end latency (two hops of 50 µs).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..simulation.engine import Event, SimulationError, Simulator
from ..simulation.resources import Resource
from ..simulation.stats import Counter, LatencyRecorder
from .message import Message

__all__ = ["NetworkLink", "GIGABIT_BANDWIDTH", "DEFAULT_LINK_LATENCY"]

#: 1 Gb/s expressed in bytes per second.
GIGABIT_BANDWIDTH = 125e6

#: One-way latency of a single switched gigabit hop (seconds).
DEFAULT_LINK_LATENCY = 50e-6


class NetworkLink:
    """A unidirectional link with latency, bandwidth and FIFO serialisation.

    Parameters
    ----------
    sim:
        Simulator (``None`` puts the link in immediate mode: deliveries are
        accounted for but complete instantly -- used by functional tests).
    latency:
        Propagation + switching latency per message, seconds.
    bandwidth:
        Bytes per second of throughput.
    name:
        Identifier used in statistics output.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        latency: float = DEFAULT_LINK_LATENCY,
        bandwidth: float = GIGABIT_BANDWIDTH,
        name: str = "link",
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.name = name
        self.counters = Counter()
        self.transfer_latency = LatencyRecorder(f"{name}.latency")
        self._port: Optional[Resource] = (
            Resource(sim, capacity=1, name=f"{name}.port") if sim else None
        )

    # -- cost model -----------------------------------------------------------------
    def transmission_time(self, wire_bytes: int) -> float:
        """Serialisation time of ``wire_bytes`` on this link (excludes latency)."""
        return wire_bytes / self.bandwidth

    def total_time(self, wire_bytes: int) -> float:
        """Unloaded delivery time for a message of ``wire_bytes``."""
        return self.latency + self.transmission_time(wire_bytes)

    # -- delivery ---------------------------------------------------------------------
    def send(self, message: Message, on_delivery: Optional[Callable[[Message], None]] = None) -> Event:
        """Transmit ``message``; the returned event succeeds with it on arrival.

        ``on_delivery`` (if given) is invoked with the message at arrival
        time -- the usual way a receiving component hooks its input queue.
        """
        self.counters.increment("messages")
        self.counters.increment("bytes", message.wire_bytes)
        service_time = self.total_time(message.wire_bytes)
        self.transfer_latency.record(service_time)

        if self.sim is None or self._port is None:
            done = _immediate_event(message)
            if on_delivery is not None:
                on_delivery(message)
            return done

        sim = self.sim
        done = sim.event(f"{self.name}.delivery")
        grant = self._port.request()

        def _start(_grant_event: Event) -> None:
            # The port is held for the serialisation time only; propagation
            # overlaps with the next message's serialisation.
            def _release_port() -> None:
                self._port.release()

            def _deliver() -> None:
                if on_delivery is not None:
                    on_delivery(message)
                done.succeed(message)

            sim.schedule(self.transmission_time(message.wire_bytes), _release_port)
            sim.schedule(service_time, _deliver)

        grant.add_callback(_start)
        return done

    # -- reporting -----------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        return self.counters.get("messages")

    @property
    def bytes_sent(self) -> int:
        return self.counters.get("bytes")

    def stats(self) -> dict:
        return {
            "messages": self.messages_sent,
            "bytes": self.bytes_sent,
            "mean_delivery_time": self.transfer_latency.mean if self.transfer_latency.count else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NetworkLink {self.name} msgs={self.messages_sent}>"


class _ImmediateEventSim:
    """Zero-delay scheduler backing immediate-mode (``sim=None``) events.

    :class:`~repro.simulation.engine.Event` needs a ``sim`` with a
    ``schedule`` method so deferred callbacks added via ``add_callback``
    after triggering can be dispatched.  In immediate mode there is no
    clock, so this stub runs callbacks synchronously -- but only for a
    zero delay.  It *honors* the delay argument by rejecting anything it
    cannot model: a positive delay here would be silently collapsed to
    "now", which is exactly the free-control-plane bug the cost model
    exists to prevent.  Anything that needs real delays must run on a
    :class:`~repro.simulation.engine.Simulator` (or charge a
    :class:`~repro.simulation.costmodel.ControlPlaneLedger`).
    """

    def schedule(self, delay: float, callback, *args) -> None:
        if delay > 0:
            raise SimulationError(
                "immediate-mode events cannot schedule a positive delay "
                f"({delay!r}); use a Simulator for timed behaviour"
            )
        callback(*args)


def _immediate_event(value) -> Event:
    event = Event(sim=_ImmediateEventSim(), name="immediate")
    event.succeed(value)
    return event
