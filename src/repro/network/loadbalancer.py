"""HAProxy-style load balancing policies for the web front-end tier.

The paper's architecture (Figure 2) fronts the web servers with an HTTP load
balancer (HAProxy).  The cluster-facing behaviour we need from it is the
assignment policy -- which web server handles which client request -- so this
module implements the classic policies (round robin, least connections,
weighted round robin, source hashing) behind one interface, plus a small
``LoadBalancer`` facade that tracks active connections and per-backend
counters.
"""

from __future__ import annotations

import hashlib
import itertools
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

__all__ = [
    "BalancingPolicy",
    "RoundRobinPolicy",
    "LeastConnectionsPolicy",
    "WeightedRoundRobinPolicy",
    "SourceHashPolicy",
    "LoadBalancer",
]


class BalancingPolicy(ABC):
    """Strategy interface: pick a backend for an incoming request."""

    @abstractmethod
    def choose(
        self,
        backends: Sequence[str],
        active_connections: Dict[str, int],
        source: Optional[str] = None,
    ) -> str:
        """Return the name of the chosen backend."""


class RoundRobinPolicy(BalancingPolicy):
    """Cycle through backends in order."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def choose(self, backends, active_connections, source=None) -> str:
        if not backends:
            raise ValueError("no backends available")
        return backends[next(self._counter) % len(backends)]


class LeastConnectionsPolicy(BalancingPolicy):
    """Pick the backend with the fewest active connections (ties: first)."""

    def choose(self, backends, active_connections, source=None) -> str:
        if not backends:
            raise ValueError("no backends available")
        return min(backends, key=lambda b: (active_connections.get(b, 0), backends.index(b)))


class WeightedRoundRobinPolicy(BalancingPolicy):
    """Round robin proportional to integer backend weights."""

    def __init__(self, weights: Dict[str, int]) -> None:
        if not weights or any(weight <= 0 for weight in weights.values()):
            raise ValueError("weights must be positive integers")
        self.weights = dict(weights)
        self._schedule: List[str] = []
        self._position = 0

    def _build_schedule(self, backends: Sequence[str]) -> None:
        self._schedule = []
        for backend in backends:
            self._schedule.extend([backend] * self.weights.get(backend, 1))

    def choose(self, backends, active_connections, source=None) -> str:
        if not backends:
            raise ValueError("no backends available")
        expected = []
        for backend in backends:
            expected.extend([backend] * self.weights.get(backend, 1))
        if expected != self._schedule:
            self._build_schedule(backends)
            self._position = 0
        backend = self._schedule[self._position % len(self._schedule)]
        self._position += 1
        return backend


class SourceHashPolicy(BalancingPolicy):
    """Stick each source to a backend by hashing its name (session affinity)."""

    def choose(self, backends, active_connections, source=None) -> str:
        if not backends:
            raise ValueError("no backends available")
        if source is None:
            return backends[0]
        digest = hashlib.sha256(source.encode("utf-8")).digest()
        return backends[int.from_bytes(digest[:8], "big") % len(backends)]


class LoadBalancer:
    """Tracks backends and active connections; delegates choice to a policy."""

    def __init__(self, policy: Optional[BalancingPolicy] = None, name: str = "haproxy") -> None:
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.name = name
        self._backends: List[str] = []
        self._active: Dict[str, int] = {}
        self._assigned: Dict[str, int] = {}

    # -- backend management -----------------------------------------------------------
    def add_backend(self, backend: str) -> None:
        """Register a backend server."""
        if backend in self._backends:
            raise ValueError(f"backend {backend!r} already registered")
        self._backends.append(backend)
        self._active.setdefault(backend, 0)
        self._assigned.setdefault(backend, 0)

    def remove_backend(self, backend: str) -> None:
        """Drain and remove a backend (new requests stop going to it)."""
        if backend not in self._backends:
            raise KeyError(f"backend {backend!r} is not registered")
        self._backends.remove(backend)

    @property
    def backends(self) -> List[str]:
        return list(self._backends)

    # -- request routing -----------------------------------------------------------------
    def assign(self, source: Optional[str] = None) -> str:
        """Choose a backend for a new request and mark the connection active."""
        backend = self.policy.choose(self._backends, self._active, source)
        self._active[backend] = self._active.get(backend, 0) + 1
        self._assigned[backend] = self._assigned.get(backend, 0) + 1
        return backend

    def release(self, backend: str) -> None:
        """Mark a connection on ``backend`` as finished."""
        if self._active.get(backend, 0) <= 0:
            raise ValueError(f"no active connections on backend {backend!r}")
        self._active[backend] -= 1

    # -- reporting ---------------------------------------------------------------------------
    def active_connections(self, backend: str) -> int:
        return self._active.get(backend, 0)

    def assignments(self) -> Dict[str, int]:
        """Total requests assigned per backend since start."""
        return dict(self._assigned)

    def imbalance(self) -> float:
        """Max/mean assignment ratio (1.0 means perfectly balanced)."""
        counts = [self._assigned.get(b, 0) for b in self._backends]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0
