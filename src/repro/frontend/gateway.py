"""Backup service gateway: the whole paper architecture behind one facade.

:class:`BackupService` wires together the four tiers of Figure 2 -- clients,
HTTP load balancer, web front-end cluster, the SHHC hash cluster and the
cloud object store -- in *immediate mode*, so applications (and the examples)
can use the complete deduplicating backup service as an ordinary Python
library without running the discrete-event simulator.

:func:`build_simulated_service` builds the same architecture in *simulated
mode* on a given :class:`~repro.simulation.engine.Simulator`; the experiment
runners in :mod:`repro.analysis.experiments` use it for the throughput and
scalability studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.cluster import SHHCCluster
from ..core.config import ClusterConfig
from ..core.fault_injection import FaultInjector, FaultPlan, FaultSchedule
from ..dedup.chunking import Chunker, FixedSizeChunker
from ..network.loadbalancer import LoadBalancer, RoundRobinPolicy
from ..network.topology import BuiltNetwork, ClusterTopology
from ..simulation.costmodel import CostModel
from ..simulation.engine import Simulator
from ..storage.object_store import CloudObjectStore
from .client import BackupClient
from .upload_plan import UploadPlan
from .webserver import WebFrontEnd

__all__ = ["BackupService", "SimulatedDeployment", "build_simulated_service"]


class BackupService:
    """Immediate-mode deduplicating backup service (full Figure-2 stack)."""

    def __init__(
        self,
        cluster_config: Optional[ClusterConfig] = None,
        num_web_servers: int = 2,
        chunker: Optional[Chunker] = None,
        batch_size: int = 128,
    ) -> None:
        if num_web_servers < 1:
            raise ValueError("num_web_servers must be >= 1")
        self.cluster = SHHCCluster(cluster_config)
        self.object_store = CloudObjectStore()
        self.load_balancer = LoadBalancer(RoundRobinPolicy())
        self.web_servers: Dict[str, WebFrontEnd] = {}
        for index in range(num_web_servers):
            server_id = f"web-{index}"
            self.web_servers[server_id] = WebFrontEnd(server_id, self.cluster)
            self.load_balancer.add_backend(server_id)
        self.chunker = chunker if chunker is not None else FixedSizeChunker(8192)
        self.batch_size = batch_size
        self._clients: Dict[str, BackupClient] = {}

    # -- client lifecycle -----------------------------------------------------------------
    def client(self, client_id: str) -> BackupClient:
        """Get or create the backup client for ``client_id``.

        Each client is pinned to a web server through the load balancer, the
        way an HTTP session would be.
        """
        if client_id not in self._clients:
            backend = self.load_balancer.assign(client_id)
            self._clients[client_id] = BackupClient(
                client_id=client_id,
                frontend=self.web_servers[backend],
                object_store=self.object_store,
                chunker=self.chunker,
                batch_size=self.batch_size,
            )
        return self._clients[client_id]

    def backup(self, client_id: str, data: bytes) -> UploadPlan:
        """Back up ``data`` on behalf of ``client_id``; returns the upload plan."""
        return self.client(client_id).backup(data)

    # -- reporting ------------------------------------------------------------------------
    def stored_fingerprints(self) -> int:
        """Distinct fingerprints known to the hash cluster.

        Replica copies are deduplicated; use :meth:`total_stored_copies` for
        the capacity view.
        """
        return len(self.cluster)

    def total_stored_copies(self) -> int:
        """Stored fingerprint copies across all nodes, replicas included."""
        return self.cluster.total_stored

    def physical_bytes(self) -> int:
        """Bytes actually stored in the cloud back-end."""
        return self.object_store.total_bytes()

    def stats(self) -> dict:
        """One-stop service statistics (cluster + store + front end)."""
        metrics = self.cluster.metrics()
        return {
            "cluster": metrics.as_dict(),
            "storage_distribution": metrics.storage_distribution().fractions(),
            "object_store": self.object_store.stats(),
            "web_servers": {name: server.stats() for name, server in self.web_servers.items()},
        }


@dataclass
class SimulatedDeployment:
    """A fully wired simulated deployment of the backup service."""

    sim: Simulator
    topology: ClusterTopology
    network: BuiltNetwork
    cluster: SHHCCluster
    web_servers: Dict[str, WebFrontEnd]
    load_balancer: LoadBalancer
    object_store: CloudObjectStore
    extras: dict = field(default_factory=dict)

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The attached fault injector, if the deployment was built with one."""
        return self.extras.get("fault_injector")

    @property
    def flaky_nodes(self) -> list:
        """FlakyNode wrappers installed by a grey-failure fault plan."""
        return self.extras.get("flaky_nodes", [])


def build_simulated_service(
    sim: Simulator,
    cluster_config: Optional[ClusterConfig] = None,
    num_clients: int = 2,
    num_web_servers: int = 3,
    topology: Optional[ClusterTopology] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    fault_plan: Optional[FaultPlan] = None,
    fault_horizon: float = 0.0,
    drop_in_flight: bool = False,
    cost_model: Optional[CostModel] = None,
) -> SimulatedDeployment:
    """Construct the simulated Figure-2 deployment on ``sim``.

    Every tier is attached to the same switched fabric: clients call web
    servers, web servers call hash nodes, and all transfers pay the modelled
    network cost.

    When ``fault_schedule`` is given, a
    :class:`~repro.core.fault_injection.FaultInjector` is attached to the
    simulator: scripted crash/recover events flip the cluster's liveness map
    (web servers route batches around down nodes per replica set) and the
    RPC layer rejects calls to crashed hash nodes with
    :class:`~repro.network.rpc.ServiceUnavailableError`.  The injector is
    exposed as ``deployment.fault_injector``.

    ``fault_plan`` is the declarative alternative: a
    :class:`~repro.core.fault_injection.FaultPlan` is materialized into a
    schedule over ``[0, fault_horizon)`` simulated seconds (required for
    plans with outages), and grey-failure plans wrap the affected hash
    nodes in :class:`~repro.core.fault_injection.FlakyNode` (wrappers under
    ``deployment.flaky_nodes``, seeded from the simulator's seed).  The two
    fault arguments are mutually exclusive.

    ``drop_in_flight`` selects the mid-flight crash semantics: by default a
    crashing node *drains* batches it is already serving (replies still
    arrive); with ``drop_in_flight=True`` those replies are lost and clients
    must recover through their timeout/retry path (see
    :class:`~repro.frontend.client.SimulatedClient` ``request_timeout``).

    ``cost_model`` enables timing-true control-plane accounting: replica
    propagation and read repair become deferred CPU occupancy on the target
    hash nodes (after the modelled fabric transfer) instead of free
    same-instant side effects, so a deployment built with
    ``fault_plan=..., cost_model=CostModel()`` reports the latency
    distribution *during* outages, replication tax included.  ``None`` (the
    default) keeps the historical free control plane.  See
    docs/control_plane.md.
    """
    if fault_plan is not None and fault_schedule is not None:
        raise ValueError("pass either fault_schedule or fault_plan, not both")
    config = cluster_config if cluster_config is not None else ClusterConfig()
    topo = topology if topology is not None else ClusterTopology(
        num_clients=num_clients,
        num_web_servers=num_web_servers,
        num_hash_nodes=config.num_nodes,
        hash_prefix=config.node_name_prefix,
    )
    network = topo.build_network(sim)
    cluster = SHHCCluster(config, sim=sim, cost_model=cost_model)
    cluster.register_services(network.rpc)

    load_balancer = LoadBalancer(RoundRobinPolicy())
    web_servers: Dict[str, WebFrontEnd] = {}
    for server_id in topo.web_server_names:
        server = WebFrontEnd(server_id, cluster, rpc=network.rpc, sim=sim)
        server.register()
        web_servers[server_id] = server
        load_balancer.add_backend(server_id)

    extras: dict = {}
    if fault_plan is not None:
        if fault_plan.has_outages:
            if fault_horizon <= 0.0:
                raise ValueError("fault_horizon must be positive for plans with outages")
            fault_schedule = fault_plan.schedule(cluster.node_names, horizon=fault_horizon)
        extras["flaky_nodes"] = fault_plan.apply_grey(cluster, seed=getattr(sim, "seed", 0))
    if drop_in_flight:
        cluster.drop_in_flight = True
    if fault_schedule is not None:
        injector = FaultInjector(cluster, fault_schedule, drop_in_flight=drop_in_flight)
        injector.attach(sim)
        network.rpc.set_availability(
            lambda endpoint: endpoint not in cluster.nodes or not cluster.is_down(endpoint)
        )
        extras["fault_injector"] = injector

    return SimulatedDeployment(
        sim=sim,
        topology=topo,
        network=network,
        cluster=cluster,
        web_servers=web_servers,
        load_balancer=load_balancer,
        object_store=CloudObjectStore(sim=sim),
        extras=extras,
    )
