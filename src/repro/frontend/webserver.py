"""Web front-end servers.

A web front-end server (paper §III.A, Figure 2) receives backup requests
from clients, queries the hash cluster for the existence of each submitted
fingerprint -- batching the queries per hash node to exploit chunk locality --
and returns an upload plan.  In the simulated deployment each web server is
an RPC service; client requests and node queries all travel over the
simulated fabric, so front-end fan-out latency and node queueing compose the
end-to-end response time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.batching import reassemble_replies
from ..core.cluster import SHHCCluster
from ..core.protocol import BatchLookupReply, BatchLookupRequest, LookupReply
from ..dedup.fingerprint import FINGERPRINT_BYTES, Fingerprint
from ..network.rpc import RpcLayer
from ..simulation.engine import Event, Simulator
from ..simulation.stats import Counter, LatencyRecorder
from .upload_plan import UploadPlan

__all__ = ["ClientBatchRequest", "ClientBatchResponse", "WebFrontEnd"]


@dataclass(frozen=True)
class ClientBatchRequest:
    """A client's backup query: a batch of fingerprints to check."""

    client_id: str
    fingerprints: Sequence[Fingerprint]
    request_id: int = 0

    def __post_init__(self) -> None:
        if not self.fingerprints:
            raise ValueError("a client batch must contain at least one fingerprint")

    @property
    def payload_bytes(self) -> int:
        return 32 + FINGERPRINT_BYTES * len(self.fingerprints)


@dataclass(frozen=True)
class ClientBatchResponse:
    """The front-end's answer: per-fingerprint verdicts plus the upload plan."""

    client_id: str
    replies: Sequence[LookupReply]
    plan: UploadPlan
    request_id: int = 0

    @property
    def payload_bytes(self) -> int:
        return 32 + 9 * len(self.replies)


class WebFrontEnd:
    """One web server of the front-end cluster."""

    def __init__(
        self,
        server_id: str,
        cluster: SHHCCluster,
        rpc: Optional[RpcLayer] = None,
        sim: Optional[Simulator] = None,
        per_request_overhead: float = 30e-6,
    ) -> None:
        self.server_id = server_id
        self.cluster = cluster
        self.rpc = rpc
        self.sim = sim if sim is not None else (rpc.sim if rpc is not None else None)
        self.per_request_overhead = per_request_overhead
        self.counters = Counter()
        self.response_latency = LatencyRecorder(f"{server_id}.response_latency")
        self._request_ids = itertools.count(1)

    # -- service registration ------------------------------------------------------------
    def register(self) -> None:
        """Expose this web server as an RPC service on the fabric."""
        if self.rpc is None:
            raise RuntimeError("register() requires an RpcLayer")
        self.rpc.register(self.server_id, self._handle_rpc)

    # -- immediate mode --------------------------------------------------------------------
    def handle_batch(self, request: ClientBatchRequest) -> ClientBatchResponse:
        """Process a client batch synchronously (library mode)."""
        self.counters.increment("requests")
        self.counters.increment("fingerprints", len(request.fingerprints))
        replies = self.cluster.lookup_batch_replies(list(request.fingerprints))
        plan = UploadPlan.from_replies(request.client_id, replies)
        return ClientBatchResponse(
            client_id=request.client_id,
            replies=replies,
            plan=plan,
            request_id=request.request_id,
        )

    # -- simulated mode ----------------------------------------------------------------------
    def _handle_rpc(self, request: ClientBatchRequest):
        if self.sim is None or self.rpc is None:
            response = self.handle_batch(request)
            return response, response.payload_bytes
        return self._handle_async(request)

    def _handle_async(self, request: ClientBatchRequest) -> Event:
        """Fan the batch out to the owning hash nodes and gather the replies."""
        assert self.sim is not None and self.rpc is not None
        self.counters.increment("requests")
        self.counters.increment("fingerprints", len(request.fingerprints))
        started = self.sim.now
        done = self.sim.event(f"{self.server_id}.response")
        fingerprints = list(request.fingerprints)

        pending = {"count": 0}
        gathered: List[Tuple[BatchLookupReply, Sequence[int]]] = []

        def _on_node_reply(positions: Sequence[int]):
            def _callback(event: Event) -> None:
                gathered.append((event.value, positions))
                pending["count"] -= 1
                if pending["count"] == 0:
                    _finish()

            return _callback

        def _finish() -> None:
            replies = reassemble_replies(len(fingerprints), gathered)
            plan = UploadPlan.from_replies(request.client_id, replies)
            response = ClientBatchResponse(
                client_id=request.client_id,
                replies=replies,
                plan=plan,
                request_id=request.request_id,
            )
            self.response_latency.record(self.sim.now - started)
            done.succeed((response, response.payload_bytes))

        def _dispatch() -> None:
            # Route each fingerprint to the first live node of its own
            # replica set so batches keep finding their data while nodes are
            # down, and stamp the client's request id on the sub-batches so
            # node replies can be correlated with this request.  The split
            # runs here, at the same simulated instant as the calls, so no
            # crash event can land between sampling liveness and dispatching.
            # Routing goes through the cluster's epoch-keyed replica-set
            # cache (grouping-identical to split_batch_by_replica_set), so
            # every front-end shares one resolution of each digest.
            per_node = self.cluster.route_batch(
                fingerprints,
                client_id=request.client_id,
                batch_id=request.request_id if request.request_id else next(self._request_ids),
            )
            pending["count"] = len(per_node)
            for node_name, (node_request, positions) in per_node.items():
                call = self.rpc.call(
                    source=self.server_id,
                    destination=node_name,
                    payload=node_request,
                    payload_bytes=node_request.payload_bytes,
                )
                call.add_callback(_on_node_reply(positions))

        # Model the web server's own per-request processing before fan-out.
        self.sim.schedule(self.per_request_overhead, _dispatch)
        return done

    # -- reporting ------------------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "requests": self.counters.get("requests"),
            "fingerprints": self.counters.get("fingerprints"),
            "mean_response_time": self.response_latency.mean if self.response_latency.count else 0.0,
        }
