"""Upload plans.

The web front-end answers every client backup request with an *upload plan*
(paper §III.A): the subset of the submitted chunks that are not yet stored in
the cloud and therefore must be transmitted.  Everything else only needs a
reference.  The plan also carries the bandwidth-savings accounting the paper
motivates (only ~25 % of data is unique).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..core.protocol import LookupReply
from ..dedup.fingerprint import Fingerprint

__all__ = ["UploadPlan"]


@dataclass
class UploadPlan:
    """Which chunks a client must upload, derived from cluster lookup replies."""

    client_id: str
    to_upload: List[Fingerprint] = field(default_factory=list)
    already_stored: List[Fingerprint] = field(default_factory=list)

    @classmethod
    def from_replies(cls, client_id: str, replies: Sequence[LookupReply]) -> "UploadPlan":
        """Build a plan from per-fingerprint lookup replies."""
        plan = cls(client_id=client_id)
        for reply in replies:
            if reply.is_duplicate:
                plan.already_stored.append(reply.fingerprint)
            else:
                plan.to_upload.append(reply.fingerprint)
        return plan

    # -- accounting --------------------------------------------------------------------
    @property
    def total_chunks(self) -> int:
        return len(self.to_upload) + len(self.already_stored)

    @property
    def upload_bytes(self) -> int:
        """Bytes the client actually has to send."""
        return sum(fp.chunk_size for fp in self.to_upload)

    @property
    def logical_bytes(self) -> int:
        """Bytes the backup represents before deduplication."""
        return self.upload_bytes + sum(fp.chunk_size for fp in self.already_stored)

    @property
    def bandwidth_savings(self) -> float:
        """Fraction of logical bytes that do not need to cross the WAN."""
        logical = self.logical_bytes
        if logical == 0:
            return 0.0
        return 1.0 - self.upload_bytes / logical

    def merge(self, other: "UploadPlan") -> "UploadPlan":
        """Combine two plans for the same client (e.g. successive batches)."""
        if other.client_id != self.client_id:
            raise ValueError("cannot merge plans from different clients")
        merged = UploadPlan(client_id=self.client_id)
        merged.to_upload = self.to_upload + other.to_upload
        merged.already_stored = self.already_stored + other.already_stored
        return merged
