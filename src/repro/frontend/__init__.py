"""Front-end tier: backup clients, web servers, upload plans, service gateway."""

from .client import BackupClient, ClientRunStats, SimulatedClient
from .gateway import BackupService, SimulatedDeployment, build_simulated_service
from .upload_plan import UploadPlan
from .webserver import ClientBatchRequest, ClientBatchResponse, WebFrontEnd

__all__ = [
    "BackupClient",
    "ClientRunStats",
    "SimulatedClient",
    "BackupService",
    "SimulatedDeployment",
    "build_simulated_service",
    "UploadPlan",
    "ClientBatchRequest",
    "ClientBatchResponse",
    "WebFrontEnd",
]
