"""Backup clients.

Two flavours:

* :class:`BackupClient` -- the *library* client: chunks and fingerprints real
  data, asks a web front-end for an upload plan and ships unique chunks to
  the cloud store (the paper's Client Application, §III.A).
* :class:`SimulatedClient` -- the *load generator* used by the evaluation:
  it replays a fingerprint trace against the simulated deployment in
  closed-loop fashion (a fixed number of outstanding batched requests),
  which is how the paper's two client machines drive Figure 5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.protocol import LookupReply
from ..dedup.chunking import Chunker, FixedSizeChunker
from ..dedup.fingerprint import Fingerprint, fingerprint_data
from ..network.loadbalancer import LoadBalancer
from ..network.rpc import RpcLayer
from ..simulation.engine import Event, Simulator
from ..simulation.process import run_process
from ..simulation.stats import LatencyRecorder
from ..storage.object_store import CloudObjectStore
from .upload_plan import UploadPlan
from .webserver import ClientBatchRequest, ClientBatchResponse, WebFrontEnd

__all__ = ["BackupClient", "SimulatedClient", "ClientRunStats"]


class BackupClient:
    """Library-mode client: backs up real byte streams through the front end."""

    def __init__(
        self,
        client_id: str,
        frontend: WebFrontEnd,
        object_store: Optional[CloudObjectStore] = None,
        chunker: Optional[Chunker] = None,
        batch_size: int = 128,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.client_id = client_id
        self.frontend = frontend
        self.object_store = object_store
        self.chunker = chunker if chunker is not None else FixedSizeChunker(8192)
        self.batch_size = batch_size
        self._request_ids = itertools.count(1)
        self.plans: List[UploadPlan] = []

    def backup(self, data: bytes) -> UploadPlan:
        """Back up one object; returns the merged upload plan for it."""
        chunks = list(self.chunker.chunk(data))
        fingerprints = [fingerprint_data(chunk.data) for chunk in chunks]
        chunk_by_digest = {fp.digest: chunk.data for fp, chunk in zip(fingerprints, chunks)}
        merged = UploadPlan(client_id=self.client_id)
        for start in range(0, len(fingerprints), self.batch_size):
            batch = fingerprints[start:start + self.batch_size]
            request = ClientBatchRequest(
                client_id=self.client_id,
                fingerprints=batch,
                request_id=next(self._request_ids),
            )
            response = self.frontend.handle_batch(request)
            merged = merged.merge(response.plan)
            self._apply_plan(response.plan, chunk_by_digest)
        self.plans.append(merged)
        return merged

    def _apply_plan(self, plan: UploadPlan, chunk_by_digest: dict) -> None:
        if self.object_store is None:
            return
        for fingerprint in plan.to_upload:
            data = chunk_by_digest.get(fingerprint.digest)
            if data is not None:
                self.object_store.put(fingerprint.digest, data)
        for fingerprint in plan.already_stored:
            self.object_store.add_reference(fingerprint.digest)


@dataclass
class ClientRunStats:
    """Result of one simulated client replaying its trace."""

    client_id: str
    fingerprints_sent: int = 0
    batches_sent: int = 0
    #: Duplicate verdicts as the *server* reported them.  Under
    #: ``drop_in_flight`` with retries this is at-least-once semantics: a
    #: lost reply does not undo the node's inserts, so a re-sent batch's
    #: fingerprints legitimately read as duplicates -- compare against
    #: ``retries`` before treating this as trace ground truth.
    duplicates_found: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Requests whose reply never arrived within ``request_timeout`` (e.g.
    #: dropped by a node crash under ``drop_in_flight`` semantics).
    timeouts: int = 0
    #: Re-sends issued after a timeout.
    retries: int = 0
    #: Batches given up on after exhausting ``max_retries``.
    abandoned: int = 0
    request_latency: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("client.request"))

    @property
    def elapsed(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput(self) -> float:
        """Fingerprints processed per second of simulated time."""
        return self.fingerprints_sent / self.elapsed if self.elapsed > 0 else 0.0


class SimulatedClient:
    """Closed-loop trace-replay client for the simulated deployment.

    Parameters
    ----------
    client_id:
        Endpoint name on the fabric.
    rpc:
        RPC layer of the simulated network.
    load_balancer:
        Assigns each request to a web server (HAProxy in the paper).
    fingerprints:
        The trace this client replays.
    batch_size:
        Fingerprints per request (paper: 1, 128 or 2048).
    window:
        Outstanding requests kept in flight (the paper's clients are
        effectively single-threaded per machine, i.e. window=1).
    request_timeout:
        Simulated seconds to wait for a reply before treating the request
        as lost and re-sending it.  ``None`` (the default) waits forever,
        which is correct for drain-mode deployments where every request is
        eventually answered; set it when the deployment drops in-flight
        batches on crashes (``drop_in_flight``).
    max_retries:
        Re-sends allowed per batch before it is abandoned (counted in
        ``stats.abandoned``).
    """

    def __init__(
        self,
        client_id: str,
        rpc: RpcLayer,
        load_balancer: LoadBalancer,
        fingerprints: Sequence[Fingerprint],
        batch_size: int = 128,
        window: int = 1,
        sim: Optional[Simulator] = None,
        request_timeout: Optional[float] = None,
        max_retries: int = 3,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.client_id = client_id
        self.rpc = rpc
        self.load_balancer = load_balancer
        self.fingerprints = list(fingerprints)
        self.batch_size = batch_size
        self.window = window
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.sim = sim if sim is not None else rpc.sim
        self.stats = ClientRunStats(client_id=client_id)
        self._request_ids = itertools.count(1)

    # -- execution ------------------------------------------------------------------------
    def start(self) -> Event:
        """Begin replaying the trace; returns the completion event (a Process)."""
        if self.sim is None:
            raise RuntimeError("SimulatedClient requires a Simulator")
        return run_process(self.sim, self._run(), name=f"{self.client_id}.run")

    def _batches(self) -> List[List[Fingerprint]]:
        return [
            self.fingerprints[start:start + self.batch_size]
            for start in range(0, len(self.fingerprints), self.batch_size)
        ]

    def _run(self):
        assert self.sim is not None
        self.stats.started_at = self.sim.now
        batches = self._batches()
        # The window is implemented by slicing the batch list into `window`
        # independent lanes, each processed sequentially by a sub-process.
        lanes = [batches[lane::self.window] for lane in range(self.window)]
        lane_processes = [
            run_process(self.sim, self._run_lane(lane), name=f"{self.client_id}.lane{i}")
            for i, lane in enumerate(lanes)
            if lane
        ]
        if lane_processes:
            yield self.sim.all_of(lane_processes)
        self.stats.finished_at = self.sim.now
        return self.stats

    def _run_lane(self, batches: List[List[Fingerprint]]):
        assert self.sim is not None
        for batch in batches:
            response = yield from self._send_with_retry(batch)
            if response is None:
                continue  # abandoned after max_retries (stats.abandoned)
            self.stats.batches_sent += 1
            self.stats.fingerprints_sent += len(batch)
            self.stats.duplicates_found += sum(1 for r in response.replies if r.is_duplicate)
        return None

    def _send_with_retry(self, batch: List[Fingerprint]):
        """Issue one batch request, re-sending on timeout; yields like a process.

        ``request_latency`` records the *client-perceived* time for the
        batch: from the first send to the reply that finally arrived,
        timeout waits included.
        """
        assert self.sim is not None
        attempts = 0
        first_sent_at = self.sim.now
        while True:
            backend = self.load_balancer.assign(self.client_id)
            request = ClientBatchRequest(
                client_id=self.client_id,
                fingerprints=batch,
                request_id=next(self._request_ids),
            )
            call = self.rpc.call(
                source=self.client_id,
                destination=backend,
                payload=request,
                payload_bytes=request.payload_bytes,
            )
            if self.request_timeout is None:
                response: ClientBatchResponse = yield call
            else:
                yield self.sim.any_of(
                    [call, self.sim.timeout(self.request_timeout, name=f"{self.client_id}.timeout")]
                )
                if not call.triggered:
                    # The request (or its reply) was lost -- e.g. a node
                    # crashed with the batch in flight under drop_in_flight
                    # semantics.  Re-send; the front end re-splits around
                    # whatever is down by then.
                    self.stats.timeouts += 1
                    self.load_balancer.release(backend)
                    if attempts >= self.max_retries:
                        self.stats.abandoned += 1
                        return None
                    attempts += 1
                    self.stats.retries += 1
                    continue
                response = call.value
            self.load_balancer.release(backend)
            self.stats.request_latency.record(self.sim.now - first_sent_at)
            return response
