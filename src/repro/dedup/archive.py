"""Directory-tree backup and restore on top of the dedup pipeline.

The paper's Client Application "collects changes in local data" and backs up
whole devices; this module provides that file-level workflow for the library:
walk a directory, deduplicate every file through a chunk index (the SHHC
cluster or any baseline), store unique chunks in the object store, and keep a
JSON-serialisable snapshot catalogue so any snapshot can be restored later or
compared against the next one.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..storage.object_store import CloudObjectStore
from .chunking import Chunker, ContentDefinedChunker, FixedSizeChunker
from .fingerprint import Fingerprint, fingerprint_data
from .index import ChunkIndex

__all__ = ["FileEntry", "Snapshot", "ArchiveStats", "DirectoryArchiver", "describe_chunker"]


def describe_chunker(chunker: Chunker) -> dict:
    """A JSON-serialisable description of a chunker's boundary parameters.

    Two archivers whose descriptions differ will generally produce different
    chunk boundaries -- and therefore different fingerprints -- for the same
    data, which silently destroys deduplication against an existing chunk
    store.  The description is persisted in the snapshot catalogue so the
    mismatch can be detected (and the CLI can adopt the recorded engine).
    """
    if isinstance(chunker, ContentDefinedChunker):
        description = {
            "strategy": "cdc",
            "engine": chunker.engine,
            "average_size": chunker.average_size,
            "min_size": chunker.min_size,
            "max_size": chunker.max_size,
        }
        if chunker.engine == "rabin":
            # The rolling-hash window changes rabin boundaries; gear ignores
            # it, so recording it there would create spurious mismatches.
            description["window_size"] = chunker.window_size
        return description
    if isinstance(chunker, FixedSizeChunker):
        return {"strategy": "fixed", "chunk_size": chunker.chunk_size}
    return {"strategy": type(chunker).__name__}


@dataclass
class FileEntry:
    """One file inside a snapshot: its path and the chunks composing it."""

    path: str
    size: int
    fingerprints: List[Fingerprint] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "size": self.size,
            "chunks": [[fp.digest.hex(), fp.chunk_size] for fp in self.fingerprints],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FileEntry":
        return cls(
            path=payload["path"],
            size=payload["size"],
            fingerprints=[
                Fingerprint(digest=bytes.fromhex(digest), chunk_size=size)
                for digest, size in payload["chunks"]
            ],
        )


@dataclass
class Snapshot:
    """A point-in-time backup of a directory tree."""

    snapshot_id: str
    files: Dict[str, FileEntry] = field(default_factory=dict)

    @property
    def file_count(self) -> int:
        return len(self.files)

    @property
    def logical_bytes(self) -> int:
        return sum(entry.size for entry in self.files.values())

    def to_json(self) -> dict:
        return {
            "snapshot_id": self.snapshot_id,
            "files": [entry.to_json() for entry in self.files.values()],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Snapshot":
        snapshot = cls(snapshot_id=payload["snapshot_id"])
        for entry_payload in payload["files"]:
            entry = FileEntry.from_json(entry_payload)
            snapshot.files[entry.path] = entry
        return snapshot


@dataclass
class ArchiveStats:
    """Per-snapshot accounting of what was scanned, uploaded and skipped."""

    files_scanned: int = 0
    chunks_seen: int = 0
    chunks_uploaded: int = 0
    bytes_scanned: int = 0
    bytes_uploaded: int = 0

    @property
    def dedup_savings(self) -> float:
        """Fraction of scanned bytes that did not need uploading."""
        if self.bytes_scanned == 0:
            return 0.0
        return 1.0 - self.bytes_uploaded / self.bytes_scanned


class DirectoryArchiver:
    """Back up and restore directory trees through a chunk index.

    Parameters
    ----------
    index:
        Any :class:`~repro.dedup.index.ChunkIndex` (the SHHC cluster, a
        baseline, or the in-memory oracle).
    object_store:
        Where unique chunk payloads are kept.
    chunker:
        Chunking strategy; content-defined chunking keeps chunk boundaries
        stable across in-place edits, fixed-size is faster.
    catalog_path:
        Optional file to persist the snapshot catalogue (JSON).  When given,
        existing snapshots are loaded at construction and every backup is
        saved back to it.
    """

    def __init__(
        self,
        index: ChunkIndex,
        object_store: CloudObjectStore,
        chunker: Optional[Chunker] = None,
        catalog_path: Optional[str] = None,
    ) -> None:
        self.index = index
        self.object_store = object_store
        self.chunker = chunker if chunker is not None else FixedSizeChunker(8192)
        self.catalog_path = catalog_path
        self.snapshots: Dict[str, Snapshot] = {}
        self.stats_by_snapshot: Dict[str, ArchiveStats] = {}
        #: Chunker description recorded in the loaded catalogue (None when no
        #: catalogue was loaded or it predates chunker pinning).
        self.catalog_chunking: Optional[dict] = None
        if catalog_path and os.path.exists(catalog_path):
            self._load_catalog()

    # ------------------------------------------------------------------ backup
    def backup_directory(self, root: str, snapshot_id: str) -> ArchiveStats:
        """Create a snapshot of every regular file under ``root``."""
        if snapshot_id in self.snapshots:
            raise ValueError(f"snapshot {snapshot_id!r} already exists")
        root = os.path.abspath(root)
        if not os.path.isdir(root):
            raise NotADirectoryError(root)
        snapshot = Snapshot(snapshot_id=snapshot_id)
        stats = ArchiveStats()
        for relative_path, absolute_path in self._walk(root):
            with open(absolute_path, "rb") as handle:
                data = handle.read()
            entry = self._store_file(relative_path, data, stats)
            snapshot.files[relative_path] = entry
            stats.files_scanned += 1
        self.snapshots[snapshot_id] = snapshot
        self.stats_by_snapshot[snapshot_id] = stats
        if self.catalog_path:
            self._save_catalog()
        return stats

    def backup_files(self, files: Dict[str, bytes], snapshot_id: str) -> ArchiveStats:
        """Create a snapshot from an in-memory ``{path: data}`` mapping."""
        if snapshot_id in self.snapshots:
            raise ValueError(f"snapshot {snapshot_id!r} already exists")
        snapshot = Snapshot(snapshot_id=snapshot_id)
        stats = ArchiveStats()
        for path in sorted(files):
            entry = self._store_file(path, files[path], stats)
            snapshot.files[path] = entry
            stats.files_scanned += 1
        self.snapshots[snapshot_id] = snapshot
        self.stats_by_snapshot[snapshot_id] = stats
        if self.catalog_path:
            self._save_catalog()
        return stats

    def _store_file(self, path: str, data: bytes, stats: ArchiveStats) -> FileEntry:
        entry = FileEntry(path=path, size=len(data))
        stats.bytes_scanned += len(data)
        for chunk in self.chunker.chunk(data):
            fingerprint = fingerprint_data(chunk.data)
            entry.fingerprints.append(fingerprint)
            stats.chunks_seen += 1
            result = self.index.lookup(fingerprint)
            if result.is_duplicate:
                self.object_store.add_reference(fingerprint.digest)
            else:
                stats.chunks_uploaded += 1
                stats.bytes_uploaded += fingerprint.chunk_size
                self.object_store.put(fingerprint.digest, chunk.data)
        return entry

    # ------------------------------------------------------------------ restore
    def restore_file(self, snapshot_id: str, path: str) -> bytes:
        """Reassemble one file from a snapshot."""
        snapshot = self._snapshot(snapshot_id)
        if path not in snapshot.files:
            raise KeyError(f"snapshot {snapshot_id!r} has no file {path!r}")
        parts: List[bytes] = []
        for fingerprint in snapshot.files[path].fingerprints:
            data = self.object_store.get(fingerprint.digest)
            if data is None:
                raise RuntimeError(
                    f"chunk {fingerprint.hex[:12]} of {path!r} missing from the object store"
                )
            parts.append(data)
        return b"".join(parts)

    def restore_directory(self, snapshot_id: str, target: str) -> int:
        """Materialise a whole snapshot under ``target``; returns files written."""
        snapshot = self._snapshot(snapshot_id)
        written = 0
        for path in snapshot.files:
            destination = os.path.join(target, path)
            os.makedirs(os.path.dirname(destination) or target, exist_ok=True)
            with open(destination, "wb") as handle:
                handle.write(self.restore_file(snapshot_id, path))
            written += 1
        return written

    # ------------------------------------------------------------------ inspection
    def diff(self, old_snapshot_id: str, new_snapshot_id: str) -> Dict[str, List[str]]:
        """Paths added, removed, modified and unchanged between two snapshots."""
        old = self._snapshot(old_snapshot_id)
        new = self._snapshot(new_snapshot_id)
        old_paths, new_paths = set(old.files), set(new.files)
        added = sorted(new_paths - old_paths)
        removed = sorted(old_paths - new_paths)
        modified, unchanged = [], []
        for path in sorted(old_paths & new_paths):
            old_digests = [fp.digest for fp in old.files[path].fingerprints]
            new_digests = [fp.digest for fp in new.files[path].fingerprints]
            (modified if old_digests != new_digests else unchanged).append(path)
        return {"added": added, "removed": removed, "modified": modified, "unchanged": unchanged}

    def list_snapshots(self) -> List[str]:
        return sorted(self.snapshots)

    def _snapshot(self, snapshot_id: str) -> Snapshot:
        if snapshot_id not in self.snapshots:
            raise KeyError(f"unknown snapshot {snapshot_id!r}")
        return self.snapshots[snapshot_id]

    @staticmethod
    def _walk(root: str) -> List[Tuple[str, str]]:
        discovered: List[Tuple[str, str]] = []
        for directory, _subdirs, filenames in os.walk(root):
            for filename in sorted(filenames):
                absolute = os.path.join(directory, filename)
                if os.path.isfile(absolute):
                    discovered.append((os.path.relpath(absolute, root), absolute))
        discovered.sort()
        return discovered

    # ------------------------------------------------------------------ catalogue persistence
    def _save_catalog(self) -> None:
        assert self.catalog_path is not None
        payload = {
            "chunking": describe_chunker(self.chunker),
            "snapshots": [snapshot.to_json() for snapshot in self.snapshots.values()],
        }
        directory = os.path.dirname(os.path.abspath(self.catalog_path))
        os.makedirs(directory, exist_ok=True)
        temp_path = self.catalog_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temp_path, self.catalog_path)

    def _load_catalog(self) -> None:
        assert self.catalog_path is not None
        with open(self.catalog_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        self.catalog_chunking = payload.get("chunking")
        if self.catalog_chunking is not None:
            current = describe_chunker(self.chunker)
            if current != self.catalog_chunking:
                warnings.warn(
                    "chunker mismatch: catalog was written with "
                    f"{self.catalog_chunking}, this archiver uses {current}; "
                    "new backups will not deduplicate against existing chunks",
                    stacklevel=2,
                )
        for snapshot_payload in payload.get("snapshots", []):
            snapshot = Snapshot.from_json(snapshot_payload)
            self.snapshots[snapshot.snapshot_id] = snapshot
