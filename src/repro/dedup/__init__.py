"""Deduplication substrate: chunking, fingerprinting, indexes, pipelines."""

from .archive import ArchiveStats, DirectoryArchiver, FileEntry, Snapshot
from .chunking import Chunk, Chunker, ContentDefinedChunker, FixedSizeChunker
from .fingerprint import (
    FINGERPRINT_BYTES,
    Fingerprint,
    fingerprint_data,
    synthetic_fingerprint,
)
from .gear import GEAR_TABLE, GearChunker, gear_cut, gear_threshold
from .index import ChunkIndex, ChunkLocation, InMemoryChunkIndex, LookupResult
from .pipeline import BackupManifest, DedupPipeline, DedupStatistics
from .rabin import RabinRollingHash
from .segment import Segment, interleave_streams, locality_score, segment_stream

__all__ = [
    "ArchiveStats",
    "DirectoryArchiver",
    "FileEntry",
    "Snapshot",
    "Chunk",
    "Chunker",
    "ContentDefinedChunker",
    "FixedSizeChunker",
    "FINGERPRINT_BYTES",
    "Fingerprint",
    "fingerprint_data",
    "synthetic_fingerprint",
    "GEAR_TABLE",
    "GearChunker",
    "gear_cut",
    "gear_threshold",
    "ChunkIndex",
    "ChunkLocation",
    "InMemoryChunkIndex",
    "LookupResult",
    "BackupManifest",
    "DedupPipeline",
    "DedupStatistics",
    "RabinRollingHash",
    "Segment",
    "interleave_streams",
    "locality_score",
    "segment_stream",
]
