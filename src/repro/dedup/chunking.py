"""Chunking strategies.

The paper splits backup data into non-overlapping chunks (8 KB for the Time
Machine workload, 4 KB for the FIU traces).  Two standard strategies are
provided:

* :class:`FixedSizeChunker` -- split every ``chunk_size`` bytes, the scheme
  the paper's workloads use.
* :class:`ContentDefinedChunker` -- content-defined chunking with a
  configurable average/min/max size.  Content-defined chunking keeps chunk
  boundaries stable under insertions and is what most modern dedup systems
  (and the compared systems such as DDFS) use, so it is included for the
  library's general-purpose use and for ablation experiments.

``ContentDefinedChunker`` supports two boundary engines:

* ``engine="gear"`` (default) -- the table-driven Gear/FastCDC-style hash in
  :mod:`repro.dedup.gear`: one shift-add per byte through a 256-entry table
  plus a min-size skip-ahead, which is what makes a pure-Python data plane
  run at tens of MB/s.
* ``engine="rabin"`` -- the original windowed polynomial rolling hash from
  :mod:`repro.dedup.rabin`, kept as the slow reference oracle.  Its
  boundaries are byte-for-byte identical to the pre-gear implementation.

Both engines share the invariant that a chunk boundary depends only on the
bytes from the chunk start up to the cut point, which is what makes the
incremental :meth:`Chunker.chunk_stream` overrides exact: streaming any block
partition of an input produces the same chunks as chunking it in one piece,
while buffering at most ``max_size`` bytes plus one input block.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from .rabin import RabinRollingHash

__all__ = ["Chunk", "Chunker", "FixedSizeChunker", "ContentDefinedChunker"]


@dataclass(frozen=True)
class Chunk:
    """A contiguous run of input bytes produced by a chunker."""

    offset: int
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


class Chunker(ABC):
    """Interface: split byte streams into chunks."""

    @abstractmethod
    def chunk(self, data: bytes) -> Iterator[Chunk]:
        """Split ``data`` into non-overlapping chunks covering all of it."""

    def chunk_stream(self, blocks: Iterable[bytes]) -> Iterator[Chunk]:
        """Chunk a stream of blocks as if they were concatenated.

        The default implementation buffers the stream; the concrete chunkers
        in this module override it with true streaming versions whose memory
        use is independent of the total stream length.
        """
        data = b"".join(blocks)
        yield from self.chunk(data)

    def chunk_sizes(self, data: bytes) -> List[int]:
        """Sizes of chunks produced for ``data`` (convenience for tests)."""
        return [chunk.size for chunk in self.chunk(data)]


class FixedSizeChunker(Chunker):
    """Split input into fixed-size chunks (last chunk may be shorter)."""

    def __init__(self, chunk_size: int = 8192) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size

    def chunk(self, data: bytes) -> Iterator[Chunk]:
        for offset in range(0, len(data), self.chunk_size):
            yield Chunk(offset=offset, data=data[offset:offset + self.chunk_size])

    def chunk_stream(self, blocks: Iterable[bytes]) -> Iterator[Chunk]:
        """Streaming split: holds at most one partial chunk plus one block."""
        size = self.chunk_size
        pending = bytearray()
        base = 0  # absolute stream offset of pending[0]
        for block in blocks:
            if not block:
                continue
            pending += block
            full = len(pending) - len(pending) % size
            if not full:
                continue
            view = memoryview(pending)
            for offset in range(0, full, size):
                yield Chunk(offset=base + offset, data=bytes(view[offset:offset + size]))
            view.release()
            del pending[:full]
            base += full
        if pending:
            yield Chunk(offset=base, data=bytes(pending))


class _RabinStreamScanner:
    """Resumable Rabin boundary scan for streaming chunking.

    Mirrors :class:`repro.dedup.gear.GearStreamScanner` for the reference
    oracle engine: the rolling-hash window persists across block arrivals so
    each byte of a chunk is hashed exactly once, visiting positions in
    exactly the order ``_rabin_cut`` does.
    """

    __slots__ = ("min_size", "max_size", "mask", "_rolling", "_scanned")

    def __init__(self, min_size: int, max_size: int, mask: int, window_size: int) -> None:
        self.min_size = min_size
        self.max_size = max_size
        self.mask = mask
        self._rolling = RabinRollingHash(window_size=window_size)
        self._scanned = 0

    def reset(self) -> None:
        self._rolling.reset()
        self._scanned = 0

    def scan(self, view, start: int, length: int):
        """Absolute cut position once certain, else ``None`` (need data)."""
        chunk_length = length - start
        limit = chunk_length if chunk_length < self.max_size else self.max_size
        update = self._rolling.update
        mask = self.mask
        min_size = self.min_size
        max_size = self.max_size
        position = self._scanned
        while position < limit:
            value = update(view[start + position])
            position += 1
            if (position >= min_size and (value & mask) == mask) or position >= max_size:
                return start + position
        self._scanned = position
        return None


class ContentDefinedChunker(Chunker):
    """Content-defined chunking with selectable boundary engine.

    A chunk boundary is declared when the engine's rolling hash over the
    bytes since the chunk start matches a pattern derived from the target
    average chunk size, subject to minimum and maximum chunk sizes.
    """

    def __init__(
        self,
        average_size: int = 8192,
        min_size: int | None = None,
        max_size: int | None = None,
        window_size: int = 48,
        engine: str = "gear",
    ) -> None:
        if average_size < 64:
            raise ValueError("average_size must be >= 64")
        if average_size & (average_size - 1):
            raise ValueError("average_size must be a power of two")
        self.average_size = average_size
        self.min_size = min_size if min_size is not None else average_size // 4
        self.max_size = max_size if max_size is not None else average_size * 4
        if not 0 < self.min_size <= average_size <= self.max_size:
            raise ValueError("require 0 < min_size <= average_size <= max_size")
        self.window_size = window_size
        self._mask = average_size - 1
        if engine == "gear":
            from .gear import gear_cut, gear_threshold  # deferred: gear imports this module

            self._gear_threshold = gear_threshold(average_size)
            self._gear_cut_fn = gear_cut
            self._cut = self._gear_cut
        elif engine == "rabin":
            self._cut = self._rabin_cut
        else:
            raise ValueError(f"unknown chunking engine {engine!r} (expected 'gear' or 'rabin')")
        self.engine = engine

    # -- boundary engines ------------------------------------------------------
    def _gear_cut(self, view, begin: int, end: int) -> int:
        return self._gear_cut_fn(view, begin, end, self.min_size, self.max_size, self._gear_threshold)

    def _rabin_cut(self, view, begin: int, end: int) -> int:
        """Reference-oracle boundary scan (byte-identical to the original)."""
        rolling = RabinRollingHash(window_size=self.window_size)
        update = rolling.update
        mask = self._mask
        min_size = self.min_size
        max_size = self.max_size
        position = begin
        while position < end:
            value = update(view[position])
            position += 1
            chunk_length = position - begin
            if (chunk_length >= min_size and (value & mask) == mask) or chunk_length >= max_size:
                return position
        return end

    # -- chunking --------------------------------------------------------------
    def chunk(self, data: bytes) -> Iterator[Chunk]:
        if not data:
            return
        view = memoryview(data)
        length = len(data)
        cut = self._cut
        start = 0
        while start < length:
            boundary = cut(view, start, length)
            yield Chunk(offset=start, data=bytes(view[start:boundary]))
            start = boundary

    def _make_scanner(self):
        """Resumable boundary scanner for the configured engine."""
        if self.engine == "gear":
            from .gear import GearStreamScanner  # deferred: gear imports this module

            return GearStreamScanner(self.min_size, self.max_size, self._gear_threshold)
        return _RabinStreamScanner(self.min_size, self.max_size, self._mask, self.window_size)

    def chunk_stream(self, blocks: Iterable[bytes]) -> Iterator[Chunk]:
        """Incremental chunking: never materialises the whole stream.

        A boundary depends only on the bytes from the chunk start up to the
        cut, so any cut the engine reports against a partial buffer is
        final; bytes without a certain cut yet wait for the next block (or
        the final flush, which emits the same chunk the whole-input path
        would).  The engine scanner checkpoints its rolling state between
        blocks, so each input byte is hashed exactly once regardless of how
        finely the stream is sliced, and at most ``max_size`` bytes plus one
        block are buffered.
        """
        pending = bytearray()
        base = 0  # absolute stream offset of pending[0]
        scanner = self._make_scanner()
        for block in blocks:
            if not block:
                continue
            pending += block
            length = len(pending)
            view = memoryview(pending)
            start = 0
            while start < length:
                boundary = scanner.scan(view, start, length)
                if boundary is None:
                    break  # not a certain boundary yet; wait for more data
                yield Chunk(offset=base + start, data=bytes(view[start:boundary]))
                start = boundary
                scanner.reset()
            view.release()
            if start:
                del pending[:start]
                base += start
        if pending:
            yield Chunk(offset=base, data=bytes(pending))
