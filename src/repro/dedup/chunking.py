"""Chunking strategies.

The paper splits backup data into non-overlapping chunks (8 KB for the Time
Machine workload, 4 KB for the FIU traces).  Two standard strategies are
provided:

* :class:`FixedSizeChunker` -- split every ``chunk_size`` bytes, the scheme
  the paper's workloads use.
* :class:`ContentDefinedChunker` -- Rabin-style rolling-hash chunking with a
  configurable average/min/max size.  Content-defined chunking keeps chunk
  boundaries stable under insertions and is what most modern dedup systems
  (and the compared systems such as DDFS) use, so it is included for the
  library's general-purpose use and for ablation experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from .rabin import RabinRollingHash

__all__ = ["Chunk", "Chunker", "FixedSizeChunker", "ContentDefinedChunker"]


@dataclass(frozen=True)
class Chunk:
    """A contiguous run of input bytes produced by a chunker."""

    offset: int
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


class Chunker(ABC):
    """Interface: split byte streams into chunks."""

    @abstractmethod
    def chunk(self, data: bytes) -> Iterator[Chunk]:
        """Split ``data`` into non-overlapping chunks covering all of it."""

    def chunk_stream(self, blocks: Iterable[bytes]) -> Iterator[Chunk]:
        """Chunk a stream of blocks as if they were concatenated.

        The default implementation buffers the stream; subclasses may
        override with a true streaming version.
        """
        data = b"".join(blocks)
        yield from self.chunk(data)

    def chunk_sizes(self, data: bytes) -> List[int]:
        """Sizes of chunks produced for ``data`` (convenience for tests)."""
        return [chunk.size for chunk in self.chunk(data)]


class FixedSizeChunker(Chunker):
    """Split input into fixed-size chunks (last chunk may be shorter)."""

    def __init__(self, chunk_size: int = 8192) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size

    def chunk(self, data: bytes) -> Iterator[Chunk]:
        for offset in range(0, len(data), self.chunk_size):
            yield Chunk(offset=offset, data=data[offset:offset + self.chunk_size])


class ContentDefinedChunker(Chunker):
    """Rabin rolling-hash content-defined chunking.

    A chunk boundary is declared when the rolling hash over a small window
    matches a mask derived from the target average chunk size, subject to
    minimum and maximum chunk sizes.
    """

    def __init__(
        self,
        average_size: int = 8192,
        min_size: int | None = None,
        max_size: int | None = None,
        window_size: int = 48,
    ) -> None:
        if average_size < 64:
            raise ValueError("average_size must be >= 64")
        if average_size & (average_size - 1):
            raise ValueError("average_size must be a power of two")
        self.average_size = average_size
        self.min_size = min_size if min_size is not None else average_size // 4
        self.max_size = max_size if max_size is not None else average_size * 4
        if not 0 < self.min_size <= average_size <= self.max_size:
            raise ValueError("require 0 < min_size <= average_size <= max_size")
        self.window_size = window_size
        self._mask = average_size - 1

    def chunk(self, data: bytes) -> Iterator[Chunk]:
        if not data:
            return
        start = 0
        rolling = RabinRollingHash(window_size=self.window_size)
        position = 0
        length = len(data)
        while position < length:
            rolling.update(data[position])
            position += 1
            chunk_length = position - start
            at_boundary = (
                chunk_length >= self.min_size
                and (rolling.value & self._mask) == self._mask
            )
            if at_boundary or chunk_length >= self.max_size:
                yield Chunk(offset=start, data=data[start:position])
                start = position
                rolling.reset()
        if start < length:
            yield Chunk(offset=start, data=data[start:length])
