"""Rabin-style rolling hash used by content-defined chunking.

The implementation is a polynomial rolling hash over a sliding byte window:
appending a byte and expiring the oldest byte are both O(1), which is what a
chunker scanning gigabytes of backup data needs.  The hash constants follow
the common 64-bit irreducible-polynomial setup used by LBFS-descended
chunkers; any fixed-width multiplicative rolling hash with good bit diffusion
produces the same boundary statistics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

__all__ = ["RabinRollingHash"]

_PRIME = 1099511628211          # FNV-ish multiplier with good diffusion
_MODULUS = (1 << 61) - 1        # Mersenne prime keeps reductions cheap


class RabinRollingHash:
    """A fixed-window polynomial rolling hash over bytes."""

    def __init__(self, window_size: int = 48) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.window_size = window_size
        self._window: Deque[int] = deque()
        self._value = 0
        # Precompute PRIME^(window_size-1) mod MODULUS for O(1) expiry.
        self._expire_factor = pow(_PRIME, window_size - 1, _MODULUS)

    @property
    def value(self) -> int:
        """Current hash over the window contents."""
        return self._value

    @property
    def window_filled(self) -> bool:
        """Whether the window currently holds ``window_size`` bytes."""
        return len(self._window) == self.window_size

    def update(self, byte: int) -> int:
        """Slide the window forward by one byte and return the new hash."""
        if not 0 <= byte <= 255:
            raise ValueError("byte must be within [0, 255]")
        if len(self._window) == self.window_size:
            oldest = self._window.popleft()
            # Each byte contributes (byte + 1) * PRIME^age; expire the oldest
            # term with the same +1 offset it was added with.
            self._value = (self._value - (oldest + 1) * self._expire_factor) % _MODULUS
        self._window.append(byte)
        self._value = (self._value * _PRIME + byte + 1) % _MODULUS
        return self._value

    def update_bytes(self, data: bytes) -> int:
        """Feed several bytes; returns the final hash value."""
        for byte in data:
            self.update(byte)
        return self._value

    def reset(self) -> None:
        """Clear the window (used when a chunk boundary is emitted)."""
        self._window.clear()
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RabinRollingHash window={len(self._window)}/{self.window_size} value={self._value}>"
