"""Client-side deduplication pipeline.

Ties the substrate together the way the paper's Client Application does
(§III.A): chunk local data, fingerprint every chunk, ask the chunk index
which chunks are new, and upload only those to the cloud store, recording a
backup manifest so files can be restored later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..storage.object_store import CloudObjectStore
from .chunking import Chunker, FixedSizeChunker
from .fingerprint import Fingerprint, fingerprint_data
from .index import ChunkIndex

__all__ = ["BackupManifest", "DedupStatistics", "DedupPipeline"]


@dataclass
class BackupManifest:
    """Recipe for reconstructing one backed-up object (file or stream)."""

    name: str
    fingerprints: List[Fingerprint] = field(default_factory=list)

    @property
    def logical_bytes(self) -> int:
        """Original (pre-dedup) size of the object."""
        return sum(fp.chunk_size for fp in self.fingerprints)

    @property
    def chunk_count(self) -> int:
        return len(self.fingerprints)


@dataclass
class DedupStatistics:
    """Space accounting across one or more backups."""

    chunks_seen: int = 0
    chunks_unique: int = 0
    logical_bytes: int = 0
    physical_bytes: int = 0

    @property
    def chunks_duplicate(self) -> int:
        return self.chunks_seen - self.chunks_unique

    @property
    def dedup_ratio(self) -> float:
        """Logical over physical bytes (>= 1.0; higher is better)."""
        return self.logical_bytes / self.physical_bytes if self.physical_bytes else 1.0

    @property
    def redundancy(self) -> float:
        """Fraction of chunk occurrences that were duplicates."""
        return self.chunks_duplicate / self.chunks_seen if self.chunks_seen else 0.0


class DedupPipeline:
    """Chunk → fingerprint → index lookup → selective upload.

    Parameters
    ----------
    index:
        Any :class:`~repro.dedup.index.ChunkIndex` (the SHHC cluster client, a
        baseline, or the in-memory oracle).
    object_store:
        Optional cloud store; when provided, unique chunks are uploaded and
        duplicate chunks only add a reference.
    chunker:
        Chunking strategy; defaults to the paper's fixed 8 KB chunks.
    """

    def __init__(
        self,
        index: ChunkIndex,
        object_store: Optional[CloudObjectStore] = None,
        chunker: Optional[Chunker] = None,
    ) -> None:
        self.index = index
        self.object_store = object_store
        self.chunker = chunker if chunker is not None else FixedSizeChunker(8192)
        self.stats = DedupStatistics()
        self.manifests: Dict[str, BackupManifest] = {}

    # -- backup --------------------------------------------------------------------------
    def backup(self, name: str, data: bytes) -> BackupManifest:
        """Deduplicate and store one object; returns its manifest."""
        manifest = BackupManifest(name=name)
        for chunk in self.chunker.chunk(data):
            fingerprint = fingerprint_data(chunk.data)
            manifest.fingerprints.append(fingerprint)
            result = self.index.lookup(fingerprint)
            self.stats.chunks_seen += 1
            self.stats.logical_bytes += fingerprint.chunk_size
            if result.is_duplicate:
                if self.object_store is not None:
                    self.object_store.add_reference(fingerprint.digest)
            else:
                self.stats.chunks_unique += 1
                self.stats.physical_bytes += fingerprint.chunk_size
                if self.object_store is not None:
                    self.object_store.put(fingerprint.digest, chunk.data)
        self.manifests[name] = manifest
        return manifest

    def backup_stream(self, name: str, blocks) -> BackupManifest:
        """Back up a stream of byte blocks as one logical object."""
        return self.backup(name, b"".join(blocks))

    # -- restore -------------------------------------------------------------------------
    def restore(self, name: str) -> bytes:
        """Reassemble a previously backed-up object from the cloud store."""
        if self.object_store is None:
            raise RuntimeError("restore requires an object store")
        manifest = self.manifests.get(name)
        if manifest is None:
            raise KeyError(f"no backup named {name!r}")
        parts: List[bytes] = []
        for fingerprint in manifest.fingerprints:
            data = self.object_store.get(fingerprint.digest)
            if data is None:
                raise RuntimeError(f"chunk {fingerprint.hex[:12]} missing from object store")
            parts.append(data)
        return b"".join(parts)

    # -- reporting ------------------------------------------------------------------------
    def space_savings(self) -> float:
        """1 - physical/logical bytes (0.0 when nothing is saved)."""
        if self.stats.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stats.physical_bytes / self.stats.logical_bytes
