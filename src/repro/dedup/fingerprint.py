"""Fingerprint computation and representation.

SHHC identifies chunks by their SHA-1 digest (20 bytes), the convention used
throughout the deduplication literature the paper builds on.  A fingerprint
also carries the chunk size so upload planning and capacity accounting do not
need the raw data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["FINGERPRINT_BYTES", "Fingerprint", "fingerprint_data", "synthetic_fingerprint"]

#: Size of a SHA-1 digest in bytes.
FINGERPRINT_BYTES = 20


@dataclass(frozen=True)
class Fingerprint:
    """A chunk identity: SHA-1 digest plus the chunk's length in bytes."""

    digest: bytes
    chunk_size: int

    def __post_init__(self) -> None:
        if len(self.digest) != FINGERPRINT_BYTES:
            raise ValueError(f"digest must be {FINGERPRINT_BYTES} bytes, got {len(self.digest)}")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be non-negative")

    @property
    def hex(self) -> str:
        """Hexadecimal rendering of the digest."""
        return self.digest.hex()

    def prefix_int(self, bits: int = 64) -> int:
        """The top ``bits`` of the digest as an integer (used for routing)."""
        if not 1 <= bits <= FINGERPRINT_BYTES * 8:
            raise ValueError("bits must be within [1, 160]")
        value = int.from_bytes(self.digest, "big")
        return value >> (FINGERPRINT_BYTES * 8 - bits)

    def __str__(self) -> str:
        return f"{self.hex[:12]}…({self.chunk_size}B)"


def fingerprint_data(data: bytes, chunk_size: int | None = None) -> Fingerprint:
    """Compute the SHA-1 fingerprint of ``data``."""
    digest = hashlib.sha1(data).digest()
    return Fingerprint(digest=digest, chunk_size=len(data) if chunk_size is None else chunk_size)


def synthetic_fingerprint(identity: int, chunk_size: int = 8192) -> Fingerprint:
    """Deterministically derive a fingerprint from an integer chunk identity.

    Workload generators use this to produce realistic 20-byte digests without
    materialising chunk data: the same identity always maps to the same
    digest, so redundancy structure is preserved, and digests remain uniformly
    distributed (they are real SHA-1 outputs).
    """
    digest = hashlib.sha1(identity.to_bytes(16, "big", signed=False)).digest()
    return Fingerprint(digest=digest, chunk_size=chunk_size)


def fingerprints_of(chunks: Iterable[bytes]) -> Iterator[Fingerprint]:
    """Fingerprint a stream of raw chunks."""
    for chunk in chunks:
        yield fingerprint_data(chunk)
