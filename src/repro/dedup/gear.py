"""Gear/FastCDC-style table-driven content-defined chunking.

The Rabin chunker in :mod:`repro.dedup.rabin` pays a method call, a deque
rotation and several 61-bit modular reductions *per input byte*, which caps a
pure-Python data plane at a couple of MB/s.  Gear hashing (Xia et al.,
"Ddelta" / "FastCDC", USENIX ATC 2016) is the standard fix used by production
dedup systems: the rolling hash is a single shift-add through a precomputed
table of 256 random 64-bit values::

    fp = ((fp << 1) + GEAR_TABLE[byte]) & 0xFFFF_FFFF_FFFF_FFFF

Bit ``63 - j`` of ``fp`` mixes the last ``64 - j`` bytes, so testing the top
``log2(average_size)`` bits against zero yields content-defined boundaries
with an effective 64-byte window -- no explicit window bookkeeping, no
modular arithmetic.  Because the judged bits are the *top* bits, the test
``fp & top_mask == 0`` collapses to a single comparison ``fp < threshold``.
Combined with FastCDC's min-size skip-ahead (no boundary test inside the
first ``min_size`` bytes of a chunk), the inner loop is one table lookup, a
shift-add, a 64-bit mask and one compare per byte, with every name bound to
a local.

A note on what was deliberately *not* done: folding two gear steps into a
65536-entry word table and scanning 16-bit words halves the Python-level
iteration count (another ~1.7x), but it quantises boundaries to even offsets
relative to each chunk start.  Two streams that differ by an odd-length
insertion then never re-synchronise -- the content-defined property this
chunker exists for -- so the byte-granular loop is the fast *and* correct
choice.

:func:`gear_cut` is the engine primitive consumed by
:class:`~repro.dedup.chunking.ContentDefinedChunker`; :class:`GearChunker`
is the convenience class with gear as a fixed engine.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from .chunking import ContentDefinedChunker

__all__ = ["GEAR_TABLE", "gear_cut", "gear_threshold", "GearChunker", "GearStreamScanner"]

_MASK64 = (1 << 64) - 1


def _build_gear_table(seed: bytes = b"repro-shhc-gear-v1") -> Tuple[int, ...]:
    """256 fixed random 64-bit values, derived deterministically from ``seed``.

    Deterministic derivation (SHA-512 in counter mode) keeps chunk boundaries
    -- and therefore fingerprints and dedup ratios -- reproducible across
    runs, machines and Python versions.
    """
    values = []
    counter = 0
    while len(values) < 256:
        block = hashlib.sha512(seed + counter.to_bytes(4, "big")).digest()
        for offset in range(0, 64, 8):
            values.append(int.from_bytes(block[offset:offset + 8], "big"))
        counter += 1
    return tuple(values[:256])


#: The gear table; module-level and shared (immutable).
GEAR_TABLE = _build_gear_table()


def gear_threshold(average_size: int) -> int:
    """Boundary threshold for a power-of-two target average chunk size.

    A boundary fires when ``fp < threshold``, i.e. when the top
    ``log2(average_size)`` bits of the fingerprint are zero, which happens
    with probability ``1 / average_size`` per scanned byte.
    """
    bits = average_size.bit_length() - 1
    return 1 << (64 - bits)


def gear_cut(
    view,
    begin: int,
    end: int,
    min_size: int,
    max_size: int,
    threshold: int,
    _table: Tuple[int, ...] = GEAR_TABLE,
) -> int:
    """Exclusive end of the chunk starting at ``begin`` within ``view[:end]``.

    Returns ``end`` when the data runs out before a boundary or the max-size
    cap is reached; callers that stream must treat a return of ``end`` with
    ``end - begin < max_size`` as "need more data", since no later byte can
    change an earlier verdict but the tail itself is not yet a certain
    boundary.
    """
    if end - begin <= min_size:
        return end
    limit = begin + max_size
    if limit > end:
        limit = end
    scan = begin + min_size
    # The bytes() copy of the scan region iterates measurably faster than a
    # memoryview slice and costs one memcpy per chunk, not per byte.
    region = bytes(view[scan:limit])
    fingerprint = 0
    table = _table
    cut_below = threshold
    for position, byte in enumerate(region, scan):
        fingerprint = ((fingerprint << 1) + table[byte]) & 0xFFFFFFFFFFFFFFFF
        if fingerprint < cut_below:
            return position + 1
    return limit


class GearStreamScanner:
    """Resumable gear boundary scan for streaming chunking.

    ``chunk_stream`` may receive a chunk's bytes spread over many small
    blocks; re-running :func:`gear_cut` from the chunk start on every block
    would re-hash the same prefix repeatedly (O(max_size^2) per chunk for
    byte-sized blocks).  The scanner checkpoints the gear fingerprint and
    the scan position instead, so every byte is hashed exactly once, while
    visiting positions in exactly the order :func:`gear_cut` does.
    """

    __slots__ = ("min_size", "max_size", "threshold", "_fingerprint", "_scanned")

    def __init__(self, min_size: int, max_size: int, threshold: int) -> None:
        self.min_size = min_size
        self.max_size = max_size
        self.threshold = threshold
        self._fingerprint = 0
        # Next chunk-relative position to hash (skip-ahead past min_size).
        self._scanned = min_size

    def reset(self) -> None:
        """Start scanning a new chunk."""
        self._fingerprint = 0
        self._scanned = self.min_size

    def scan(self, view, start: int, length: int) -> Optional[int]:
        """Scan the unseen bytes of the chunk beginning at ``start``.

        Returns the absolute exclusive cut position once one is certain
        (content boundary or ``max_size`` reached), else ``None`` meaning
        "feed more data".  Must be called with monotonically growing
        ``length`` for the same chunk, and :meth:`reset` between chunks.
        """
        chunk_length = length - start
        limit = chunk_length if chunk_length < self.max_size else self.max_size
        position = self._scanned
        if position < limit:
            fingerprint = self._fingerprint
            table = GEAR_TABLE
            cut_below = self.threshold
            region = bytes(view[start + position:start + limit])
            for relative, byte in enumerate(region, position):
                fingerprint = ((fingerprint << 1) + table[byte]) & 0xFFFFFFFFFFFFFFFF
                if fingerprint < cut_below:
                    return start + relative + 1
            self._fingerprint = fingerprint
            self._scanned = limit
        if chunk_length >= self.max_size:
            return start + self.max_size
        return None


class GearChunker(ContentDefinedChunker):
    """Content-defined chunker with the gear engine fixed.

    Identical to ``ContentDefinedChunker(engine="gear")``; exists so call
    sites that specifically want the table-driven fast path can say so.
    """

    def __init__(
        self,
        average_size: int = 8192,
        min_size: int | None = None,
        max_size: int | None = None,
    ) -> None:
        super().__init__(
            average_size=average_size,
            min_size=min_size,
            max_size=max_size,
            engine="gear",
        )
