"""Chunk index interfaces and reference implementations.

The *chunk index* answers "has this fingerprint been stored before, and if
so where?".  SHHC's contribution is a distributed chunk index; the baselines
are centralized ones.  Both sides implement :class:`ChunkIndex`, so the
dedup pipeline, examples and experiments can swap them freely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .fingerprint import Fingerprint

__all__ = ["ChunkLocation", "LookupResult", "ChunkIndex", "InMemoryChunkIndex"]


@dataclass(frozen=True)
class ChunkLocation:
    """Where a stored chunk lives (container/offset in the backing store)."""

    container_id: int = 0
    offset: int = 0


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one fingerprint lookup."""

    fingerprint: Fingerprint
    is_duplicate: bool
    location: Optional[ChunkLocation] = None
    latency: float = 0.0
    served_by: str = ""


class ChunkIndex(ABC):
    """Interface every fingerprint store/lookup service implements."""

    @abstractmethod
    def lookup(self, fingerprint: Fingerprint) -> LookupResult:
        """Query a single fingerprint, inserting it if it was not present.

        This is the paper's combined lookup/insert operation: a miss both
        reports "unique" and records the fingerprint so subsequent queries
        see it as a duplicate.
        """

    def lookup_batch(self, fingerprints: Iterable[Fingerprint]) -> List[LookupResult]:
        """Query many fingerprints; default implementation loops."""
        return [self.lookup(fp) for fp in fingerprints]

    @abstractmethod
    def __len__(self) -> int:
        """Number of distinct fingerprints stored."""

    @abstractmethod
    def __contains__(self, fingerprint: Fingerprint) -> bool:
        """Read-only membership test (must not insert)."""


class InMemoryChunkIndex(ChunkIndex):
    """The simplest possible index: a Python dict.

    Used as the ground-truth oracle in tests and as the RAM-only extreme in
    the tier ablation.
    """

    def __init__(self, name: str = "memory-index") -> None:
        self.name = name
        self._entries: Dict[bytes, ChunkLocation] = {}
        self._next_offset = 0
        self.lookups = 0
        self.duplicates = 0

    def lookup(self, fingerprint: Fingerprint) -> LookupResult:
        self.lookups += 1
        existing = self._entries.get(fingerprint.digest)
        if existing is not None:
            self.duplicates += 1
            return LookupResult(fingerprint, True, existing, served_by=self.name)
        location = ChunkLocation(container_id=0, offset=self._next_offset)
        self._next_offset += max(1, fingerprint.chunk_size)
        self._entries[fingerprint.digest] = location
        return LookupResult(fingerprint, False, location, served_by=self.name)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint.digest in self._entries

    def duplicate_ratio(self) -> float:
        """Fraction of lookups that found an existing entry."""
        return self.duplicates / self.lookups if self.lookups else 0.0
