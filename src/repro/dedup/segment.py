"""Segmenting fingerprint streams to preserve spatial locality.

Backup streams exhibit *chunk locality*: chunks that appeared together in a
previous backup tend to reappear together (DDFS, Sparse Indexing).  The web
front-end exploits this by batching consecutive fingerprints before querying
the hash cluster (paper §III.A and §IV.B, batch sizes 1/128/2048).  This
module provides the segmenting helpers used both by the front-end batching
logic and by locality-aware baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence

from .fingerprint import Fingerprint

__all__ = ["Segment", "segment_stream", "interleave_streams", "locality_score"]


@dataclass
class Segment:
    """A consecutive run of fingerprints from one backup stream."""

    stream_id: str
    sequence_number: int
    fingerprints: List[Fingerprint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.fingerprints)

    @property
    def logical_bytes(self) -> int:
        return sum(fp.chunk_size for fp in self.fingerprints)


def segment_stream(
    fingerprints: Iterable[Fingerprint],
    segment_size: int,
    stream_id: str = "stream",
) -> Iterator[Segment]:
    """Group a fingerprint stream into segments of at most ``segment_size``."""
    if segment_size < 1:
        raise ValueError("segment_size must be >= 1")
    buffer: List[Fingerprint] = []
    sequence = 0
    for fingerprint in fingerprints:
        buffer.append(fingerprint)
        if len(buffer) >= segment_size:
            yield Segment(stream_id, sequence, buffer)
            buffer = []
            sequence += 1
    if buffer:
        yield Segment(stream_id, sequence, buffer)


def interleave_streams(streams: Sequence[Sequence[Fingerprint]], granularity: int = 1) -> List[Fingerprint]:
    """Round-robin interleave several fingerprint streams.

    Models multiple concurrent clients whose requests mix at the front end;
    ``granularity`` controls how many consecutive fingerprints each stream
    contributes per turn (larger granularity preserves more locality).
    """
    if granularity < 1:
        raise ValueError("granularity must be >= 1")
    positions = [0] * len(streams)
    merged: List[Fingerprint] = []
    remaining = sum(len(s) for s in streams)
    while remaining > 0:
        for index, stream in enumerate(streams):
            start = positions[index]
            if start >= len(stream):
                continue
            end = min(start + granularity, len(stream))
            merged.extend(stream[start:end])
            taken = end - start
            positions[index] = end
            remaining -= taken
    return merged


def locality_score(fingerprints: Sequence[Fingerprint], window: int = 128) -> float:
    """Fraction of duplicate occurrences whose previous occurrence is within ``window``.

    A score near 1.0 means duplicates cluster tightly (high spatial locality,
    LRU-friendly); near 0.0 means duplicates are spread far apart.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    last_seen: dict = {}
    duplicates = 0
    nearby = 0
    for position, fingerprint in enumerate(fingerprints):
        digest = fingerprint.digest
        if digest in last_seen:
            duplicates += 1
            if position - last_seen[digest] <= window:
                nearby += 1
        last_seen[digest] = position
    return nearby / duplicates if duplicates else 0.0
