"""Analysis helpers: reporting and experiment runners for every table/figure."""

from .reporting import format_fraction_bar, format_series, format_table

__all__ = ["format_fraction_bar", "format_series", "format_table"]
