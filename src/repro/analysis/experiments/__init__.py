"""Experiment runners, one per paper table/figure plus the ablations.

.. deprecated::
    The ``run_*`` entry points re-exported here are deprecation shims.  The
    canonical way to run experiments is the scenario API::

        from repro.scenarios import run_scenario
        result = run_scenario("figure5", scale=0.001)

    Each shim emits a :class:`DeprecationWarning` and delegates to the
    matching preset when its arguments are expressible as a declarative
    :class:`~repro.scenarios.spec.ScenarioSpec` (plain scalars and lists).
    Calls passing rich objects (workload mixes, profile objects, explicit
    configs or schedules) fall through to the underlying experiment module,
    so existing scripts and the ``benchmarks/`` harness keep working
    unchanged.

Every runner returns a result object with a ``render()`` method producing
the same table/series the paper reports.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable

from .ablations import (
    BatchTradeoffPoint,
    BatchTradeoffResult,
    ScalingAblationResult,
    TierAblationResult,
    TierAblationRow,
)
from .ablations import run_batch_tradeoff as _run_batch_tradeoff
from .ablations import run_scaling_ablation as _run_scaling_ablation
from .ablations import run_tier_ablation as _run_tier_ablation
from .control_plane import (
    ControlPlaneResult,
    PhaseLatency,
    run_churn_timed,
    run_failover_timed,
)
from .elasticity import ElasticityResult
from .elasticity import run_elasticity as _run_elasticity
from .failover import FailoverResult
from .failover import run_failover as _run_failover
from .restart import RestartResult, run_restart
from .service import ServiceRunResult, run_service
from .figure1 import Figure1Point, Figure1Result
from .figure1 import run_figure1 as _run_figure1
from .generational import GenerationalResult, GenerationRow
from .generational import run_generational_backup as _run_generational_backup
from .figure5 import Figure5Point, Figure5Result
from .figure5 import run_figure5 as _run_figure5
from .figure6 import Figure6Result
from .figure6 import run_figure6 as _run_figure6
from .table1 import Table1Result, Table1Row
from .table1 import run_table1 as _run_table1

__all__ = [
    "BatchTradeoffPoint",
    "BatchTradeoffResult",
    "ScalingAblationResult",
    "TierAblationResult",
    "TierAblationRow",
    "run_batch_tradeoff",
    "run_scaling_ablation",
    "run_tier_ablation",
    "ControlPlaneResult",
    "PhaseLatency",
    "run_failover_timed",
    "run_churn_timed",
    "ElasticityResult",
    "run_elasticity",
    "FailoverResult",
    "run_failover",
    "RestartResult",
    "run_restart",
    "ServiceRunResult",
    "run_service",
    "Figure1Point",
    "Figure1Result",
    "run_figure1",
    "GenerationalResult",
    "GenerationRow",
    "run_generational_backup",
    "Figure5Point",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "Table1Result",
    "Table1Row",
    "run_table1",
]

_SPEC_SAFE_SCALARS = (bool, int, float, str, type(None))


def _spec_expressible(value: Any) -> bool:
    """Whether a legacy kwarg value can travel inside a declarative spec."""
    if isinstance(value, _SPEC_SAFE_SCALARS):
        return True
    if isinstance(value, (list, tuple)):
        return all(_spec_expressible(item) for item in value)
    return False


def _deprecated_runner(preset: str, module_runner: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a legacy runner: warn, and delegate to the preset when possible."""

    @functools.wraps(module_runner)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        warnings.warn(
            f"{module_runner.__name__} is deprecated; use "
            f"repro.scenarios.run_scenario({preset!r}, ...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not args and all(_spec_expressible(value) for value in kwargs.values()):
            # Imported lazily: the scenarios engine imports this package.
            from ...scenarios import SpecError, run_scenario

            try:
                return run_scenario(preset, **kwargs).detail
            except SpecError:
                # Kwarg not addressable as a spec key (e.g. a runner-only
                # tuning knob): run the module function directly.
                pass
        return module_runner(*args, **kwargs)

    wrapper.__doc__ = (
        f"Deprecated shim for :func:`{module_runner.__module__}."
        f"{module_runner.__name__}`; prefer ``run_scenario({preset!r}, ...)``.\n\n"
        + (module_runner.__doc__ or "")
    )
    return wrapper


run_figure1 = _deprecated_runner("figure1", _run_figure1)
run_figure5 = _deprecated_runner("figure5", _run_figure5)
run_figure6 = _deprecated_runner("figure6", _run_figure6)
run_table1 = _deprecated_runner("table1", _run_table1)
run_generational_backup = _deprecated_runner("generational", _run_generational_backup)
run_tier_ablation = _deprecated_runner("tier_ablation", _run_tier_ablation)
run_batch_tradeoff = _deprecated_runner("batch_tradeoff", _run_batch_tradeoff)
run_scaling_ablation = _deprecated_runner("scaling_ablation", _run_scaling_ablation)
run_failover = _deprecated_runner("failover", _run_failover)
run_elasticity = _deprecated_runner("elasticity", _run_elasticity)
