"""Experiment runners, one per paper table/figure plus the ablations.

Every runner returns a result object with a ``render()`` method producing the
same table/series the paper reports; the benchmark harness under
``benchmarks/`` is a thin wrapper around these functions.
"""

from .ablations import (
    BatchTradeoffPoint,
    BatchTradeoffResult,
    ScalingAblationResult,
    TierAblationResult,
    TierAblationRow,
    run_batch_tradeoff,
    run_scaling_ablation,
    run_tier_ablation,
)
from .failover import FailoverResult, run_failover
from .figure1 import Figure1Point, Figure1Result, run_figure1
from .generational import GenerationalResult, GenerationRow, run_generational_backup
from .figure5 import Figure5Point, Figure5Result, run_figure5
from .figure6 import Figure6Result, run_figure6
from .table1 import Table1Result, Table1Row, run_table1

__all__ = [
    "BatchTradeoffPoint",
    "BatchTradeoffResult",
    "ScalingAblationResult",
    "TierAblationResult",
    "TierAblationRow",
    "run_batch_tradeoff",
    "run_scaling_ablation",
    "run_tier_ablation",
    "FailoverResult",
    "run_failover",
    "Figure1Point",
    "Figure1Result",
    "run_figure1",
    "GenerationalResult",
    "GenerationRow",
    "run_generational_backup",
    "Figure5Point",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "Table1Result",
    "Table1Row",
    "run_table1",
]
