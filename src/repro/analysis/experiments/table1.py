"""Table I -- workload characteristics.

The paper characterises its four fingerprint traces by total fingerprints,
percentage of redundant content, and mean distance between occurrences of
the same fingerprint.  The reproduction generates each synthetic trace at a
configurable scale and reports the published (scaled) target next to what
the generator actually produced, which is how EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ...workloads.profiles import TABLE_I_PROFILES, WorkloadProfile
from ...workloads.traces import TraceGenerator, TraceStatistics
from ..reporting import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """Target (published, scaled) vs measured statistics for one workload."""

    workload: str
    target_fingerprints: int
    target_redundancy: float
    target_distance: float
    measured: TraceStatistics

    @property
    def redundancy_error(self) -> float:
        """Absolute error in the redundancy fraction."""
        return abs(self.measured.redundancy - self.target_redundancy)

    @property
    def distance_relative_error(self) -> float:
        """Relative error of the mean duplicate distance."""
        if self.target_distance == 0:
            return 0.0
        return abs(self.measured.mean_duplicate_distance - self.target_distance) / self.target_distance


@dataclass
class Table1Result:
    """All four Table I rows (or whichever profiles were requested)."""

    scale: float
    rows: List[Table1Row] = field(default_factory=list)

    def row(self, workload: str) -> Table1Row:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(f"no row for workload {workload!r}")

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.workload,
                    row.measured.fingerprints,
                    f"{row.target_redundancy * 100:.0f}%",
                    f"{row.measured.redundancy * 100:.1f}%",
                    round(row.target_distance),
                    round(row.measured.mean_duplicate_distance),
                ]
            )
        return format_table(
            ["workload", "fingerprints", "target %red", "measured %red", "target dist", "measured dist"],
            table_rows,
            title=f"Table I: workload characteristics (scale={self.scale})",
        )


def run_table1(
    scale: float = 0.01,
    profiles: Optional[Sequence[WorkloadProfile]] = None,
    seed: int = 42,
) -> Table1Result:
    """Generate each workload at ``scale`` and measure its statistics."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    selected = list(profiles) if profiles is not None else TABLE_I_PROFILES
    result = Table1Result(scale=scale)
    for profile in selected:
        scaled = profile.scaled(scale) if scale != 1.0 else profile
        trace = TraceGenerator(scaled, seed=seed).materialize()
        result.rows.append(
            Table1Row(
                workload=profile.name,
                target_fingerprints=scaled.fingerprints,
                target_redundancy=scaled.redundancy,
                target_distance=scaled.duplicate_distance,
                measured=trace.statistics(),
            )
        )
    return result
