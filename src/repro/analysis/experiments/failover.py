"""Failover experiment -- dedup accuracy and latency under injected failures.

The paper presents SHHC as a hash cluster that keeps serving lookups through
node failures; this experiment turns that claim into a measured scenario.
A mixed backup workload is streamed through the cluster in client-sized
batches while a :class:`~repro.core.fault_injection.FaultSchedule` crashes
and recovers nodes one at a time (the regime a replication factor of 2 must
survive without losing a single verdict).  Every verdict is checked against
an exact oracle (a set of previously seen digests), so the headline number
is *dedup accuracy under failures*; the run also reports read repairs,
failovers, replica-repair traffic and the latency overhead versus a
fault-free run of the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...core.fault_injection import FaultInjector, FaultSchedule, rolling_outage_schedule
from ...core.replication import ReplicationController
from ...dedup.fingerprint import Fingerprint
from ...workloads.mixer import WorkloadMix, table_i_mix
from ..reporting import format_table

__all__ = ["FailoverResult", "run_failover"]


@dataclass
class FailoverResult:
    """Outcome of one failover run (plus its fault-free baseline)."""

    num_nodes: int
    replication_factor: int
    virtual_nodes: int
    batch_size: int
    fingerprints_processed: int = 0
    batches: int = 0
    crashes: int = 0
    recoveries: int = 0
    false_uniques: int = 0  # duplicates misreported as new (replica pollution)
    false_duplicates: int = 0  # new fingerprints misreported as duplicates (data loss!)
    read_repairs: int = 0
    failovers: int = 0
    replica_inserts: int = 0
    repaired_copies: int = 0
    distinct: int = 0
    total_stored: int = 0
    fully_replicated: int = 0
    under_replicated: int = 0
    lost: int = 0
    mean_latency_faulty: float = 0.0
    mean_latency_baseline: float = 0.0
    events: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def dedup_errors(self) -> int:
        """Verdicts that differ from the exact oracle."""
        return self.false_uniques + self.false_duplicates

    @property
    def accuracy(self) -> float:
        """Fraction of verdicts matching the oracle (1.0 = no loss)."""
        if not self.fingerprints_processed:
            return 1.0
        return 1.0 - self.dedup_errors / self.fingerprints_processed

    @property
    def latency_overhead(self) -> float:
        """Relative mean-latency cost of running through failures."""
        if self.mean_latency_baseline <= 0.0:
            return 0.0
        return self.mean_latency_faulty / self.mean_latency_baseline - 1.0

    def render(self) -> str:
        rows = [
            ["nodes", self.num_nodes],
            ["replication factor", self.replication_factor],
            ["virtual nodes", self.virtual_nodes],
            ["batch size", self.batch_size],
            ["fingerprints", self.fingerprints_processed],
            ["batches", self.batches],
            ["crashes injected", self.crashes],
            ["recoveries", self.recoveries],
            ["dedup errors", self.dedup_errors],
            ["  false uniques", self.false_uniques],
            ["  false duplicates", self.false_duplicates],
            ["dedup accuracy %", round(self.accuracy * 100.0, 4)],
            ["read repairs", self.read_repairs],
            ["failovers", self.failovers],
            ["replica inserts", self.replica_inserts],
            ["repaired copies", self.repaired_copies],
            ["distinct fingerprints", self.distinct],
            ["total stored copies", self.total_stored],
            ["fully replicated", self.fully_replicated],
            ["under-replicated", self.under_replicated],
            ["lost", self.lost],
            ["mean latency (faulty) us", round(self.mean_latency_faulty * 1e6, 2)],
            ["mean latency (baseline) us", round(self.mean_latency_baseline * 1e6, 2)],
            ["latency overhead %", round(self.latency_overhead * 100.0, 2)],
        ]
        table = format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Failover: dedup accuracy under injected node failures "
                f"({self.num_nodes} nodes, k={self.replication_factor})"
            ),
        )
        timeline = ", ".join(f"t={t:g} {action} {node}" for t, action, node in self.events)
        return table + ("\n\nschedule: " + timeline if timeline else "")


def _run_stream(
    cluster: SHHCCluster,
    batches: Sequence[Sequence[Fingerprint]],
    injector: Optional[FaultInjector],
    oracle_seen: set,
    result: Optional[FailoverResult],
) -> float:
    """Replay ``batches``; returns the mean per-fingerprint latency.

    When ``result`` is given, every verdict is checked against the oracle
    and mismatches are tallied; ``oracle_seen`` is mutated as the stream's
    digest history.
    """
    total_latency = 0.0
    count = 0
    for index, batch in enumerate(batches):
        if injector is not None:
            injector.advance(index)
        lookups = cluster.lookup_batch(batch)
        for outcome in lookups:
            expected = outcome.fingerprint.digest in oracle_seen
            oracle_seen.add(outcome.fingerprint.digest)
            total_latency += outcome.latency
            count += 1
            if result is not None and outcome.is_duplicate != expected:
                if expected:
                    result.false_uniques += 1
                else:
                    result.false_duplicates += 1
    return total_latency / count if count else 0.0


def run_failover(
    scale: float = 0.002,
    num_nodes: int = 4,
    replication_factor: int = 2,
    virtual_nodes: int = 64,
    batch_size: int = 256,
    mix: Optional[WorkloadMix] = None,
    schedule: Optional[FaultSchedule] = None,
    node_config: Optional[HashNodeConfig] = None,
    repair_on_recovery: bool = True,
    seed: int = 0,
) -> FailoverResult:
    """Measure dedup accuracy and latency while nodes crash and recover.

    The default schedule rolls a single-node outage across the cluster
    (crash, serve degraded, recover, repair, next node) on a logical time
    axis of batch indices; pass ``schedule`` for custom scenarios.  With
    ``replication_factor >= 2`` and one node down at a time the expected
    dedup error count is exactly zero.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if replication_factor < 2 and schedule is None:
        # Fail before the (expensive) baseline run: an unreplicated cluster
        # cannot serve fingerprints whose owner the default rolling-outage
        # schedule has crashed.
        raise ValueError(
            "replication_factor must be >= 2 to survive the default rolling outage "
            "schedule; pass an explicit FaultSchedule for unreplicated runs"
        )
    workload = mix if mix is not None else table_i_mix(seed=seed)
    fingerprints: List[Fingerprint] = list(workload.interleaved(scale=scale))
    batches = [
        fingerprints[start:start + batch_size]
        for start in range(0, len(fingerprints), batch_size)
    ]
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, len(fingerprints) * 2),
    )

    def make_cluster() -> SHHCCluster:
        return SHHCCluster(
            ClusterConfig(
                num_nodes=num_nodes,
                node=config,
                virtual_nodes=virtual_nodes,
                replication_factor=replication_factor,
            )
        )

    # -- fault-free baseline (latency reference; oracle discarded) ------------------
    baseline_latency = _run_stream(make_cluster(), batches, None, set(), None)

    # -- faulty run -----------------------------------------------------------------
    cluster = make_cluster()
    controller = ReplicationController(cluster)
    result = FailoverResult(
        num_nodes=num_nodes,
        replication_factor=replication_factor,
        virtual_nodes=virtual_nodes,
        batch_size=batch_size,
        fingerprints_processed=len(fingerprints),
        batches=len(batches),
        mean_latency_baseline=baseline_latency,
    )

    def _on_recovery(_node: str) -> None:
        if repair_on_recovery:
            result.repaired_copies += controller.repair()

    if schedule is None:
        period = max(2, len(batches) // max(1, num_nodes))
        downtime = max(1, period // 2)
        schedule = rolling_outage_schedule(
            cluster.node_names, period=period, downtime=downtime, start=1.0
        )
    injector = FaultInjector(cluster, schedule, on_recovery=_on_recovery)

    result.mean_latency_faulty = _run_stream(cluster, batches, injector, set(), result)
    injector.drain()  # recover any node still down past the last batch

    result.crashes = injector.crashes
    result.recoveries = injector.recoveries
    result.read_repairs = cluster.read_repairs
    result.failovers = cluster.failovers
    result.replica_inserts = sum(
        node.counters.get("replica_inserts") for node in cluster.nodes.values()
    )
    result.distinct = cluster.distinct_fingerprints()
    result.total_stored = cluster.total_stored
    result.events = [(e.time, e.action, e.node) for e in injector.applied]

    report = controller.consistency_report()
    result.fully_replicated = report.fully_replicated
    result.under_replicated = report.under_replicated
    result.lost = report.lost
    return result
