"""Failover experiment -- dedup accuracy and latency under injected failures.

The paper presents SHHC as a hash cluster that keeps serving lookups through
node failures; this experiment turns that claim into a measured scenario.
A mixed backup workload is streamed through the cluster in client-sized
batches while a :class:`~repro.core.fault_injection.FaultSchedule` crashes
and recovers nodes one at a time (the regime a replication factor of 2 must
survive without losing a single verdict).  Every verdict is checked against
an exact oracle (a set of previously seen digests), so the headline number
is *dedup accuracy under failures*; the run also reports read repairs,
failovers, replica-repair traffic and the latency overhead versus a
fault-free run of the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...core.fault_injection import (
    FaultInjector,
    FaultPlan,
    FaultSchedule,
    rolling_outage_schedule,
)
from ...core.replication import ReplicationController
from ...dedup.fingerprint import Fingerprint
from ...workloads.mixer import WorkloadMix, table_i_mix
from ..reporting import format_table

__all__ = ["FailoverResult", "run_failover"]


def _percentiles(latencies: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank p50/p95/p99 of a latency sample (empty dict if none)."""
    if not latencies:
        return {}
    ordered = sorted(latencies)
    last = len(ordered) - 1
    return {
        f"p{q}": ordered[min(last, int(len(ordered) * q / 100.0))]
        for q in (50, 95, 99)
    }


@dataclass
class FailoverResult:
    """Outcome of one failover run (plus its fault-free baseline)."""

    num_nodes: int
    replication_factor: int
    virtual_nodes: int
    batch_size: int
    fingerprints_processed: int = 0
    batches: int = 0
    crashes: int = 0
    recoveries: int = 0
    false_uniques: int = 0  # duplicates misreported as new (replica pollution)
    false_duplicates: int = 0  # new fingerprints misreported as duplicates (data loss!)
    read_repairs: int = 0
    failovers: int = 0
    replica_inserts: int = 0
    repaired_copies: int = 0
    distinct: int = 0
    total_stored: int = 0
    fully_replicated: int = 0
    under_replicated: int = 0
    lost: int = 0
    mean_latency_faulty: float = 0.0
    mean_latency_baseline: float = 0.0
    events: List[Tuple[float, str, str]] = field(default_factory=list)
    #: Lookups dropped because no live replica existed (replication 1 under
    #: outage); the client never received a verdict for these.
    unserved: int = 0
    #: Requests dropped by grey-failing (flaky) nodes before failover/retry.
    grey_drops: int = 0
    tier_hits: Dict[str, int] = field(default_factory=dict)
    latency_percentiles_faulty: Dict[str, float] = field(default_factory=dict)
    latency_percentiles_baseline: Dict[str, float] = field(default_factory=dict)
    fault_plan: Optional[FaultPlan] = None

    @property
    def dedup_errors(self) -> int:
        """Verdicts that differ from the exact oracle."""
        return self.false_uniques + self.false_duplicates

    @property
    def accuracy(self) -> float:
        """Fraction of verdicts matching the oracle (1.0 = no loss).

        Unserved lookups count as errors: the client got no verdict at all,
        which is at least as bad as a wrong one.
        """
        if not self.fingerprints_processed:
            return 1.0
        return 1.0 - (self.dedup_errors + self.unserved) / self.fingerprints_processed

    @property
    def latency_overhead(self) -> float:
        """Relative mean-latency cost of running through failures."""
        if self.mean_latency_baseline <= 0.0:
            return 0.0
        return self.mean_latency_faulty / self.mean_latency_baseline - 1.0

    def render(self) -> str:
        rows = [
            ["nodes", self.num_nodes],
            ["replication factor", self.replication_factor],
            ["virtual nodes", self.virtual_nodes],
            ["batch size", self.batch_size],
            ["fingerprints", self.fingerprints_processed],
            ["batches", self.batches],
            ["crashes injected", self.crashes],
            ["recoveries", self.recoveries],
            ["dedup errors", self.dedup_errors],
            ["  false uniques", self.false_uniques],
            ["  false duplicates", self.false_duplicates],
            ["dedup accuracy %", round(self.accuracy * 100.0, 4)],
            ["read repairs", self.read_repairs],
            ["failovers", self.failovers],
            ["replica inserts", self.replica_inserts],
            ["repaired copies", self.repaired_copies],
            ["distinct fingerprints", self.distinct],
            ["total stored copies", self.total_stored],
            ["fully replicated", self.fully_replicated],
            ["under-replicated", self.under_replicated],
            ["lost", self.lost],
        ]
        # Sweep-era counters appear only when the scenario exercised them,
        # keeping legacy (clean rolling outage, k>=2) output byte-identical.
        if self.unserved:
            rows.append(["unserved lookups", self.unserved])
        if self.grey_drops:
            rows.append(["grey drops", self.grey_drops])
        rows += [
            ["mean latency (faulty) us", round(self.mean_latency_faulty * 1e6, 2)],
            ["mean latency (baseline) us", round(self.mean_latency_baseline * 1e6, 2)],
            ["latency overhead %", round(self.latency_overhead * 100.0, 2)],
        ]
        table = format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Failover: dedup accuracy under injected node failures "
                f"({self.num_nodes} nodes, k={self.replication_factor})"
            ),
        )
        timeline = ", ".join(f"t={t:g} {action} {node}" for t, action, node in self.events)
        return table + ("\n\nschedule: " + timeline if timeline else "")


def _run_stream(
    cluster: SHHCCluster,
    batches: Sequence[Sequence[Fingerprint]],
    injector: Optional[FaultInjector],
    oracle_seen: set,
    result: Optional[FailoverResult],
) -> Tuple[float, Dict[str, float]]:
    """Replay ``batches``; returns (mean, percentiles) per-fingerprint latency.

    When ``result`` is given, every verdict is checked against the oracle
    and mismatches are tallied; ``oracle_seen`` is mutated as the stream's
    digest history.  Fingerprints whose whole replica set is down are not
    sent at all (the client cannot reach any holder); they are tallied as
    ``result.unserved`` but still enter the oracle history, because the
    client *did* present them -- any copy the cluster failed to store shows
    up as a false unique on the fingerprint's next occurrence.
    """
    total_latency = 0.0
    latencies: List[float] = []
    for index, batch in enumerate(batches):
        if injector is not None:
            injector.advance(index)
        if any(cluster.is_down(name) for name in cluster.node_names):
            servable = []
            for fingerprint in batch:
                if any(not cluster.is_down(n) for n in cluster.replica_set(fingerprint)):
                    servable.append(fingerprint)
                else:
                    oracle_seen.add(fingerprint.digest)
                    if result is not None:
                        result.unserved += 1
        else:
            servable = batch
        lookups = cluster.lookup_batch(servable)
        for outcome in lookups:
            expected = outcome.fingerprint.digest in oracle_seen
            oracle_seen.add(outcome.fingerprint.digest)
            total_latency += outcome.latency
            latencies.append(outcome.latency)
            if result is not None and outcome.is_duplicate != expected:
                if expected:
                    result.false_uniques += 1
                else:
                    result.false_duplicates += 1
    count = len(latencies)
    return (total_latency / count if count else 0.0), _percentiles(latencies)


def run_failover(
    scale: float = 0.002,
    num_nodes: int = 4,
    replication_factor: int = 2,
    virtual_nodes: int = 64,
    batch_size: int = 256,
    mix: Optional[WorkloadMix] = None,
    schedule: Optional[FaultSchedule] = None,
    fault_plan: Optional[FaultPlan] = None,
    outage_density: Optional[float] = None,
    node_config: Optional[HashNodeConfig] = None,
    repair_on_recovery: bool = True,
    seed: int = 0,
) -> FailoverResult:
    """Measure dedup accuracy and latency while nodes crash and recover.

    The default schedule rolls a single-node outage across the cluster
    (crash, serve degraded, recover, repair, next node) on a logical time
    axis of batch indices; pass ``schedule`` for custom scenarios.  With
    ``replication_factor >= 2`` and one node down at a time the expected
    dedup error count is exactly zero.

    Declarative scenarios come in through ``fault_plan`` (a
    :class:`~repro.core.fault_injection.FaultPlan`: rolling outages sized by
    density, grey-failing nodes, or both) or the ``outage_density``
    shorthand (equivalent to ``FaultPlan.rolling_outage(outage_density)``).
    Plan-driven runs accept ``replication_factor == 1``: fingerprints whose
    whole replica set is down are tallied as ``unserved`` instead of
    aborting the run, which is precisely the dedup loss the replication
    sweep quantifies.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if fault_plan is not None and (schedule is not None or outage_density is not None):
        raise ValueError("pass at most one of fault_plan, schedule, outage_density")
    if outage_density is not None:
        fault_plan = FaultPlan.rolling_outage(outage_density)
    if replication_factor < 2 and schedule is None and fault_plan is None:
        # Fail before the (expensive) baseline run: an unreplicated cluster
        # cannot serve fingerprints whose owner the default rolling-outage
        # schedule has crashed.
        raise ValueError(
            "replication_factor must be >= 2 to survive the default rolling outage "
            "schedule; pass an explicit FaultSchedule or FaultPlan for "
            "unreplicated runs"
        )
    workload = mix if mix is not None else table_i_mix(seed=seed)
    fingerprints: List[Fingerprint] = list(workload.interleaved(scale=scale))
    batches = [
        fingerprints[start:start + batch_size]
        for start in range(0, len(fingerprints), batch_size)
    ]
    if fault_plan is not None and fault_plan.has_outages and len(batches) <= fault_plan.start:
        # Catch this before the (expensive) fault-free baseline run: the
        # outage schedule lives on the batch-index axis, so a run this short
        # has no room for an outage after the plan's start time.
        raise ValueError(
            f"only {len(batches)} batch(es) at batch_size={batch_size}: too short for "
            f"an outage plan starting at t={fault_plan.start:g}; lower batch_size or "
            "raise scale"
        )
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, len(fingerprints) * 2),
    )

    def make_cluster() -> SHHCCluster:
        return SHHCCluster(
            ClusterConfig(
                num_nodes=num_nodes,
                node=config,
                virtual_nodes=virtual_nodes,
                replication_factor=replication_factor,
            )
        )

    # -- fault-free baseline (latency reference; oracle discarded) ------------------
    baseline_latency, baseline_percentiles = _run_stream(
        make_cluster(), batches, None, set(), None
    )

    # -- faulty run -----------------------------------------------------------------
    cluster = make_cluster()
    controller = ReplicationController(cluster)
    result = FailoverResult(
        num_nodes=num_nodes,
        replication_factor=replication_factor,
        virtual_nodes=virtual_nodes,
        batch_size=batch_size,
        fingerprints_processed=len(fingerprints),
        batches=len(batches),
        mean_latency_baseline=baseline_latency,
        latency_percentiles_baseline=baseline_percentiles,
        fault_plan=fault_plan,
    )

    def _on_recovery(_node: str) -> None:
        if repair_on_recovery:
            result.repaired_copies += controller.repair()

    flaky_wrappers = []
    if fault_plan is not None:
        # Horizon is the logical clock of this runner: the batch index.
        schedule = fault_plan.schedule(cluster.node_names, horizon=float(len(batches)))
        flaky_wrappers = fault_plan.apply_grey(cluster, seed=seed)
    elif schedule is None:
        period = max(2, len(batches) // max(1, num_nodes))
        downtime = max(1, period // 2)
        schedule = rolling_outage_schedule(
            cluster.node_names, period=period, downtime=downtime, start=1.0
        )
    injector = FaultInjector(cluster, schedule, on_recovery=_on_recovery)

    result.mean_latency_faulty, result.latency_percentiles_faulty = _run_stream(
        cluster, batches, injector, set(), result
    )
    injector.drain()  # recover any node still down past the last batch
    result.grey_drops = sum(w.injected_failures for w in flaky_wrappers)

    result.crashes = injector.crashes
    result.recoveries = injector.recoveries
    result.read_repairs = cluster.read_repairs
    result.failovers = cluster.failovers
    result.replica_inserts = sum(
        node.counters.get("replica_inserts") for node in cluster.nodes.values()
    )
    result.distinct = cluster.distinct_fingerprints()
    result.total_stored = cluster.total_stored
    result.events = [(e.time, e.action, e.node) for e in injector.applied]
    metrics = cluster.metrics()
    result.tier_hits = {
        "ram": metrics.ram_hits,
        "ssd": metrics.ssd_hits,
        "new": metrics.total_new_entries,
        "repair": cluster.read_repairs,
    }

    report = controller.consistency_report()
    result.fully_replicated = report.fully_replicated
    result.under_replicated = report.under_replicated
    result.lost = report.lost
    return result
