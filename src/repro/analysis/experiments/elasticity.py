"""Elasticity experiment -- dedup accuracy and data movement under churn.

The paper pitches the hash cluster as elastically scalable but leaves
dynamic membership as future work (§V); this experiment measures the
implementation.  A mixed backup workload is streamed through a replicated
cluster in client-sized batches while a
:class:`~repro.core.membership.ChurnPlan` joins and removes nodes on a
logical time axis of batch indices.  Every verdict is checked against an
exact oracle, so the headline numbers are *dedup accuracy under churn*
plus the migration bill: the fraction of entries moved, and how much of
the movement is primary moves versus replica-copy traffic (the replication
tax of elasticity, zero at ``replication_factor == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...core.membership import ChurnPlan, MembershipManager
from ...dedup.fingerprint import Fingerprint
from ...workloads.mixer import WorkloadMix, table_i_mix
from ..reporting import format_table

__all__ = ["ElasticityResult", "run_elasticity", "DEFAULT_CHURN_EVENTS"]

#: Membership changes a default run performs (two full join/leave cycles).
DEFAULT_CHURN_EVENTS = 4

#: Never shrink below this many nodes (a one-node cluster cannot lose one).
MIN_NODES = 2


@dataclass
class ElasticityResult:
    """Outcome of one churn run."""

    num_nodes: int
    replication_factor: int
    virtual_nodes: int
    batch_size: int
    churn_plan: Optional[ChurnPlan] = None
    fingerprints_processed: int = 0
    batches: int = 0
    joins: int = 0
    leaves: int = 0
    skipped_events: int = 0
    false_uniques: int = 0
    false_duplicates: int = 0
    entries_moved: int = 0
    entries_examined: int = 0  # sum of pre-change entry counts across events
    primary_moves: int = 0
    replica_copies: int = 0
    replica_drops: int = 0
    read_repairs: int = 0
    replica_inserts: int = 0
    final_nodes: int = 0
    distinct: int = 0
    total_stored: int = 0
    fully_replicated: int = 0
    under_replicated: int = 0
    lost: int = 0
    #: Per-event timeline: (batch index, action, node, entries moved).
    events: List[Tuple[float, str, str, int]] = field(default_factory=list)

    @property
    def dedup_errors(self) -> int:
        """Verdicts that differ from the exact oracle."""
        return self.false_uniques + self.false_duplicates

    @property
    def accuracy(self) -> float:
        """Fraction of verdicts matching the oracle (1.0 = no loss)."""
        if not self.fingerprints_processed:
            return 1.0
        return 1.0 - self.dedup_errors / self.fingerprints_processed

    @property
    def moved_fraction(self) -> float:
        """Copies created per pre-change entry, aggregated over all events."""
        return self.entries_moved / self.entries_examined if self.entries_examined else 0.0

    def render(self) -> str:
        rows = [
            ["initial nodes", self.num_nodes],
            ["final nodes", self.final_nodes],
            ["replication factor", self.replication_factor],
            ["virtual nodes", self.virtual_nodes],
            ["batch size", self.batch_size],
            ["fingerprints", self.fingerprints_processed],
            ["batches", self.batches],
            ["joins", self.joins],
            ["leaves", self.leaves],
            ["dedup errors", self.dedup_errors],
            ["  false uniques", self.false_uniques],
            ["  false duplicates", self.false_duplicates],
            ["dedup accuracy %", round(self.accuracy * 100.0, 4)],
            ["entries moved", self.entries_moved],
            ["moved fraction %", round(self.moved_fraction * 100.0, 2)],
            ["  primary moves", self.primary_moves],
            ["  replica copies", self.replica_copies],
            ["replica drops", self.replica_drops],
            ["read repairs", self.read_repairs],
            ["replica inserts (write path)", self.replica_inserts],
            ["distinct fingerprints", self.distinct],
            ["total stored copies", self.total_stored],
            ["fully replicated", self.fully_replicated],
            ["under-replicated", self.under_replicated],
            ["lost", self.lost],
        ]
        if self.skipped_events:
            rows.append(["skipped churn events", self.skipped_events])
        table = format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Elasticity: dedup accuracy under membership churn "
                f"({self.num_nodes} nodes, k={self.replication_factor})"
            ),
        )
        timeline = ", ".join(
            f"t={t:g} {action} {node} (moved {moved})" for t, action, node, moved in self.events
        )
        return table + ("\n\nchurn: " + timeline if timeline else "")


def run_elasticity(
    scale: float = 0.002,
    num_nodes: int = 4,
    replication_factor: int = 2,
    virtual_nodes: int = 64,
    batch_size: int = 256,
    mix: Optional[WorkloadMix] = None,
    churn_plan: Optional[ChurnPlan] = None,
    node_config: Optional[HashNodeConfig] = None,
    seed: int = 0,
) -> ElasticityResult:
    """Measure dedup accuracy and migration traffic while nodes join/leave.

    The churn schedule lives on the logical time axis of batch indices,
    like the failover experiment's outage schedule: an event at ``t`` fires
    before batch ``ceil(t)`` is sent.  Joins add fresh nodes
    (``hashnode-<next>``); leaves remove the lexicographically first
    current node, which retires the original members one by one -- the
    worst case for data movement.  With a replica-aware
    :class:`~repro.core.membership.MembershipManager` the expected dedup
    error count is exactly zero at every replication factor.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if num_nodes < MIN_NODES:
        raise ValueError(f"num_nodes must be >= {MIN_NODES}")
    plan = churn_plan if churn_plan is not None else ChurnPlan.join_leave(DEFAULT_CHURN_EVENTS)

    workload = mix if mix is not None else table_i_mix(seed=seed)
    fingerprints: List[Fingerprint] = list(workload.interleaved(scale=scale))
    batches = [
        fingerprints[start:start + batch_size]
        for start in range(0, len(fingerprints), batch_size)
    ]
    if plan.has_churn and len(batches) <= plan.start:
        raise ValueError(
            f"only {len(batches)} batch(es) at batch_size={batch_size}: too short for "
            f"a churn plan starting at t={plan.start:g}; lower batch_size or raise scale"
        )
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, len(fingerprints) * 2),
    )
    cluster = SHHCCluster(
        ClusterConfig(
            num_nodes=num_nodes,
            node=config,
            virtual_nodes=virtual_nodes,
            replication_factor=replication_factor,
        )
    )
    manager = MembershipManager(cluster)
    schedule = plan.schedule(horizon=float(len(batches))) if plan.has_churn else []

    result = ElasticityResult(
        num_nodes=num_nodes,
        replication_factor=replication_factor,
        virtual_nodes=virtual_nodes,
        batch_size=batch_size,
        churn_plan=plan,
        fingerprints_processed=len(fingerprints),
        batches=len(batches),
    )

    next_index = {"value": num_nodes}

    def _fire(event) -> None:
        if event.action == "join":
            node_id = f"{cluster.config.node_name_prefix}-{next_index['value']}"
            next_index["value"] += 1
            report = manager.add_node(node_id)
            result.joins += 1
        else:
            if len(cluster.nodes) <= MIN_NODES:
                result.skipped_events += 1
                return
            node_id = sorted(cluster.nodes)[0]
            report = manager.remove_node(node_id)
            result.leaves += 1
        result.entries_moved += report.entries_moved
        result.entries_examined += report.entries_before
        result.primary_moves += report.primary_moves
        result.replica_copies += report.replica_copies
        result.replica_drops += report.replica_drops
        result.events.append((event.time, event.action, node_id, report.entries_moved))

    pending = list(schedule)  # already time-ordered
    oracle_seen: set = set()
    for index, batch in enumerate(batches):
        while pending and pending[0].time <= index:
            _fire(pending.pop(0))
        for outcome in cluster.lookup_batch(batch):
            expected = outcome.fingerprint.digest in oracle_seen
            oracle_seen.add(outcome.fingerprint.digest)
            if outcome.is_duplicate != expected:
                if expected:
                    result.false_uniques += 1
                else:
                    result.false_duplicates += 1
    # Any events scheduled past the last batch still fire (end of the run).
    for event in pending:
        _fire(event)

    result.final_nodes = cluster.num_nodes
    result.read_repairs = cluster.read_repairs
    result.replica_inserts = sum(
        node.counters.get("replica_inserts") for node in cluster.nodes.values()
    )
    result.distinct = cluster.distinct_fingerprints()
    result.total_stored = cluster.total_stored
    report = manager.controller.consistency_report()
    result.fully_replicated = report.fully_replicated
    result.under_replicated = report.under_replicated
    result.lost = report.lost
    return result
