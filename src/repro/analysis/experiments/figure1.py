"""Figure 1 -- execution time of 100 000 lookups vs offered rate and cluster size.

The paper's motivation experiment (§II.A) injects SHA-1 fingerprint queries
of 8 KB chunks into hash clusters of 1, 2, 4, 8 and 16 nodes at offered
rates from 10 000 to 100 000 requests per second and reports the time needed
to complete a fixed number of requests.  The headline shape: execution time
is a decreasing function of the number of nodes -- small clusters saturate
(their completion time is set by their capacity), large clusters finish at
the injection-limited time ``requests / rate``.

The runner reproduces the experiment on the simulated deployment: an
open-loop driver sends one-fingerprint requests directly to the owning hash
node (no web tier, like the paper's motivation simulator) and the result
records when the last response arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...core.protocol import BatchLookupRequest
from ...dedup.fingerprint import Fingerprint, synthetic_fingerprint
from ...network.topology import ClusterTopology
from ...simulation.engine import Simulator
from ...workloads.arrival import OpenLoopArrivals
from ..reporting import format_series

__all__ = ["Figure1Point", "Figure1Result", "run_figure1"]

#: Offered rates used by the paper's Figure 1 x axis (requests / second).
DEFAULT_RATES = (20_000, 40_000, 60_000, 80_000, 100_000)

#: Cluster sizes plotted in Figure 1.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class Figure1Point:
    """One (cluster size, offered rate) measurement."""

    nodes: int
    offered_rate: float
    requests: int
    execution_time: float

    @property
    def execution_time_us(self) -> float:
        """Execution time in microseconds (the paper's y axis unit)."""
        return self.execution_time * 1e6

    @property
    def achieved_rate(self) -> float:
        """Requests completed per second of simulated time."""
        return self.requests / self.execution_time if self.execution_time > 0 else 0.0


@dataclass
class Figure1Result:
    """All measurements for the Figure 1 sweep."""

    requests: int
    points: List[Figure1Point] = field(default_factory=list)

    def series(self) -> Dict[int, List[Figure1Point]]:
        """Points grouped by cluster size, ordered by offered rate."""
        grouped: Dict[int, List[Figure1Point]] = {}
        for point in self.points:
            grouped.setdefault(point.nodes, []).append(point)
        for values in grouped.values():
            values.sort(key=lambda p: p.offered_rate)
        return grouped

    def execution_times(self, nodes: int) -> List[float]:
        """Execution times (seconds) for one cluster size, by offered rate."""
        return [point.execution_time for point in self.series().get(nodes, [])]

    def render(self) -> str:
        """Text rendering in the paper's format (time in microseconds)."""
        grouped = self.series()
        rates = sorted({point.offered_rate for point in self.points})
        series = {
            f"{nodes} nodes (us)": [round(p.execution_time_us) for p in grouped[nodes]]
            for nodes in sorted(grouped)
        }
        return format_series(
            "req/s",
            [round(rate) for rate in rates],
            series,
            title=f"Figure 1: execution time for {self.requests:,} requests",
        )


def _drive_one_configuration(
    num_nodes: int,
    rate: float,
    requests: int,
    node_config: HashNodeConfig,
    chunk_size: int,
    seed: int,
) -> Figure1Point:
    """Run one open-loop injection against a cluster of ``num_nodes``."""
    sim = Simulator()
    config = ClusterConfig(num_nodes=num_nodes, node=node_config)
    cluster = SHHCCluster(config, sim=sim)
    topology = ClusterTopology(
        num_clients=1,
        num_web_servers=1,
        num_hash_nodes=num_nodes,
        hash_prefix=config.node_name_prefix,
    )
    network = topology.build_network(sim)
    cluster.register_services(network.rpc)

    fingerprints: Sequence[Fingerprint] = [
        synthetic_fingerprint(seed * 1_000_000_000 + index, chunk_size) for index in range(requests)
    ]
    completion = {"done": 0, "last_time": 0.0}

    def _on_reply(_event) -> None:
        completion["done"] += 1
        completion["last_time"] = sim.now

    def _send(fingerprint: Fingerprint) -> None:
        owner = cluster.partitioner.owner(fingerprint)
        request = BatchLookupRequest(fingerprints=[fingerprint], client_id="driver")
        call = network.rpc.call(
            source="client-0",
            destination=owner,
            payload=request,
            payload_bytes=request.payload_bytes,
        )
        call.add_callback(_on_reply)

    arrivals = OpenLoopArrivals(rate=rate, count=requests, jitter=0.0, seed=seed)
    for arrival_time, fingerprint in zip(arrivals.times(), fingerprints):
        sim.schedule_at(arrival_time, _send, fingerprint)

    sim.run()
    if completion["done"] != requests:
        raise RuntimeError(
            f"figure 1 run lost requests: {completion['done']}/{requests} completed"
        )
    return Figure1Point(
        nodes=num_nodes,
        offered_rate=rate,
        requests=requests,
        execution_time=completion["last_time"],
    )


def run_figure1(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    rates: Sequence[float] = DEFAULT_RATES,
    requests: int = 20_000,
    node_config: Optional[HashNodeConfig] = None,
    chunk_size: int = 8192,
    seed: int = 1,
) -> Figure1Result:
    """Reproduce Figure 1.

    Parameters
    ----------
    node_counts / rates:
        The sweep axes (defaults follow the paper).
    requests:
        Number of lookups per run.  The paper uses 100 000; the default here
        is 20 000 to keep regression runs fast -- execution time scales
        linearly with this value, so the curves' shape is unchanged.
    node_config:
        Hash-node parameters (defaults are the calibrated ones).
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, requests * 2),
    )
    result = Figure1Result(requests=requests)
    for num_nodes in node_counts:
        for rate in rates:
            result.points.append(
                _drive_one_configuration(num_nodes, rate, requests, config, chunk_size, seed)
            )
    return result
