"""Kill/restart experiment -- recovery time and degraded-mode latency.

The timed failover runs (:mod:`.control_plane`) crash nodes *reachability-
wise*: a downed node keeps its RAM state and comes back instantly.  This
experiment measures the harder event the paper's cluster must survive: a
node process dies for real (cache, bloom filter and flash-store index all
gone) and is restarted from its on-disk container log and bloom snapshot
(see docs/persistence.md).

One victim node is killed mid-workload and restarted ``downtime`` batches
later.  The cluster is built with a :class:`~repro.core.persistence.PersistencePolicy`
(files live in a temporary directory unless ``data_dir`` is given) and a
:class:`~repro.simulation.costmodel.CostModel`, so the restart charges the
recovery replay onto the victim's timeline: lookups landing on it while
the index rebuilds queue behind the replay, and the per-phase recorders
separate that warm-up tail out:

* phase ``steady`` -- all nodes up, no recovery backlog;
* phase ``degraded`` -- the victim is down, survivors absorb its load;
* phase ``recovering`` -- the victim is back but its replay backlog has
  not drained below one arrival interval yet;
* phase ``warmup`` -- the calibration batch (index 0).

Correctness is scored two ways.  A client-side oracle replays the stream
(as in :mod:`.failover`) and counts wrong dedup verdicts; separately every
*acknowledged* fingerprint -- one the cluster answered for before the kill
-- is audited right after the restart: it must still be resident on some
live replica, else it counts as ``lost_acknowledged``.  With persistence
enabled the expected number is zero at every kill point; that is the
crash-consistency claim the ``restart`` scenario preset asserts in CI.

``warm_restart`` toggles the snapshot path: ``True`` (default) lets the
victim restore its bloom filter from the latest snapshot and replay only
the container tail; ``False`` disables snapshots so the restart replays
the full log.  ``recovery_time`` (the charged CPU seconds) is the series
the hot-path benchmark floors.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...core.persistence import PersistencePolicy, RecoveryReport
from ...dedup.fingerprint import Fingerprint
from ...simulation.costmodel import CostModel
from ...workloads.mixer import WorkloadMix
from ..reporting import format_table
from .control_plane import (
    DEGRADED_PHASE,
    STEADY_PHASE,
    WARMUP_PHASE,
    PhaseLatency,
    _calibrate_interval,
    _finish,
    _make_batches,
    _validate,
)

__all__ = ["RestartResult", "run_restart", "RECOVERING_PHASE"]

RECOVERING_PHASE = "recovering"


@dataclass
class RestartResult:
    """Outcome of one kill/restart run."""

    num_nodes: int
    replication_factor: int
    virtual_nodes: int
    batch_size: int
    offered_load: float
    warm_restart: bool
    snapshot_every: int
    victim: str
    kill_batch: int
    restart_batch: int
    fingerprints_processed: int = 0
    batches: int = 0
    interval: float = 0.0
    phases: Dict[str, PhaseLatency] = field(default_factory=dict)
    throughput: float = 0.0
    control_plane_cpu_seconds: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    #: Fingerprints never sent because their whole replica set was down.
    unserved: int = 0
    #: Dedup verdict errors against the client-side oracle.
    false_uniques: int = 0
    false_duplicates: int = 0
    #: Fingerprints the cluster had answered for before the kill, and how
    #: many of them were missing from every live replica after the restart.
    acknowledged: int = 0
    lost_acknowledged: int = 0
    #: Simulated CPU seconds the restart charged onto the victim's timeline
    #: (the headline recovery-time figure), and the host wall time of the
    #: actual on-disk rebuild.
    recovery_time: float = 0.0
    recovery_wall_seconds: float = 0.0
    recovered_entries: int = 0
    replayed_records: int = 0
    snapshot_loaded: bool = False
    snapshot_bytes: int = 0

    @property
    def steady(self) -> Optional[PhaseLatency]:
        return self.phases.get(STEADY_PHASE)

    @property
    def degraded(self) -> Optional[PhaseLatency]:
        return self.phases.get(DEGRADED_PHASE)

    @property
    def recovering(self) -> Optional[PhaseLatency]:
        return self.phases.get(RECOVERING_PHASE)

    @property
    def dedup_errors(self) -> int:
        return self.false_uniques + self.false_duplicates

    @property
    def accuracy(self) -> float:
        """Fraction of the stream that got the correct, served verdict."""
        if self.fingerprints_processed == 0:
            return 1.0
        wrong = self.dedup_errors + self.unserved
        return 1.0 - wrong / self.fingerprints_processed

    @property
    def acknowledged_accuracy(self) -> float:
        """Fraction of pre-kill acknowledged fingerprints still resident."""
        if self.acknowledged == 0:
            return 1.0
        return 1.0 - self.lost_acknowledged / self.acknowledged

    def _tax(self, phase: Optional[PhaseLatency]) -> float:
        steady = self.steady
        if steady is None or phase is None or steady.p99 <= 0.0:
            return 1.0
        return phase.p99 / steady.p99

    @property
    def degraded_p99_tax(self) -> float:
        """Degraded-phase p99 over steady p99 (survivors absorbing load)."""
        return self._tax(self.degraded)

    @property
    def recovery_p99_tax(self) -> float:
        """Recovering-phase p99 over steady p99 (replay queueing on the victim)."""
        return self._tax(self.recovering)

    def render(self) -> str:
        rows = [
            ["nodes", self.num_nodes],
            ["replication factor", self.replication_factor],
            ["batch size", self.batch_size],
            ["offered load", self.offered_load],
            ["warm restart (snapshot)", self.warm_restart],
            ["snapshot cadence (records)", self.snapshot_every],
            ["victim", self.victim],
            ["kill batch / restart batch", f"{self.kill_batch} / {self.restart_batch}"],
            ["fingerprints", self.fingerprints_processed],
            ["batches", self.batches],
            ["arrival interval us", round(self.interval * 1e6, 2)],
            ["throughput (lookups/s)", round(self.throughput, 1)],
            ["recovery time ms (charged)", round(self.recovery_time * 1e3, 3)],
            ["recovery wall ms", round(self.recovery_wall_seconds * 1e3, 3)],
            ["recovered entries", self.recovered_entries],
            ["replayed tail records", self.replayed_records],
            ["snapshot loaded", self.snapshot_loaded],
            ["snapshot bytes", self.snapshot_bytes],
            ["dedup accuracy", round(self.accuracy, 6)],
            ["acknowledged before kill", self.acknowledged],
            ["lost acknowledged", self.lost_acknowledged],
            ["degraded p99 tax", round(self.degraded_p99_tax, 3)],
            ["recovery p99 tax", round(self.recovery_p99_tax, 3)],
        ]
        if self.unserved:
            rows.append(["unserved lookups", self.unserved])
        if self.dedup_errors:
            rows += [
                ["false uniques", self.false_uniques],
                ["false duplicates", self.false_duplicates],
            ]
        for name in (STEADY_PHASE, DEGRADED_PHASE, RECOVERING_PHASE, WARMUP_PHASE):
            stats = self.phases.get(name)
            if stats is None:
                continue
            rows += [
                [f"{name} lookups", stats.count],
                [f"{name} p50 us", round(stats.p50 * 1e6, 2)],
                [f"{name} p99 us", round(stats.p99 * 1e6, 2)],
            ]
        for counter in sorted(self.counters):
            rows.append([counter, self.counters[counter]])
        return format_table(
            ["metric", "value"],
            rows,
            title=(
                f"restart: kill/restart recovery "
                f"({self.num_nodes} nodes, k={self.replication_factor}, "
                f"{'warm' if self.warm_restart else 'cold'})"
            ),
        )


def _default_cadence(
    fingerprints: List[Fingerprint], replication_factor: int, num_nodes: int
) -> int:
    """Snapshot cadence giving each node a handful of snapshots per run.

    Container records grow only on *unique* inserts, so the cadence is
    sized from the distinct digest count: each node absorbs roughly
    ``distinct * k / num_nodes`` records over a full pass, and an eighth of
    that as the cadence means the victim has taken a snapshot or two well
    before a mid-run kill, while staying coarse enough that snapshot cost
    stays small.
    """
    distinct = len({fingerprint.digest for fingerprint in fingerprints})
    per_node = (distinct * replication_factor) // max(1, num_nodes)
    return max(64, per_node // 8)


def run_restart(
    scale: float = 0.002,
    num_nodes: int = 4,
    replication_factor: int = 2,
    virtual_nodes: int = 64,
    batch_size: int = 256,
    offered_load: float = 0.7,
    kill_batch: Optional[int] = None,
    downtime: int = 2,
    warm_restart: bool = True,
    snapshot_every: Optional[int] = None,
    fsync: bool = False,
    data_dir: Optional[str] = None,
    mix: Optional[WorkloadMix] = None,
    node_config: Optional[HashNodeConfig] = None,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
) -> RestartResult:
    """Kill one node mid-workload, restart it from disk, measure recovery.

    The victim (the lexicographically first node) is killed at batch
    ``kill_batch`` (default: one third into the run) and restarted
    ``downtime`` batches later.  Returns a :class:`RestartResult` carrying
    the charged recovery time, the degraded-/recovering-phase latency
    distributions, the oracle dedup accuracy and the acknowledged-
    fingerprint audit.

    ``data_dir`` keeps the persistence files after the run (for
    inspection); by default they live in a temporary directory that is
    removed on return.
    """
    _validate(scale, batch_size, offered_load)
    if downtime < 1:
        raise ValueError("downtime must be >= 1 batch")
    model = cost_model if cost_model is not None else CostModel()
    fingerprints, batches = _make_batches(mix, scale, batch_size, seed)
    if kill_batch is None:
        kill_batch = max(1, len(batches) // 3)
    if kill_batch < 1:
        raise ValueError("kill_batch must be >= 1 (batch 0 is calibration warm-up)")
    restart_batch = kill_batch + downtime
    if restart_batch >= len(batches):
        raise ValueError(
            f"only {len(batches)} batch(es) at batch_size={batch_size}: kill at "
            f"{kill_batch} + downtime {downtime} leaves no post-restart batches; "
            "lower batch_size or raise scale"
        )
    if warm_restart:
        cadence = (
            snapshot_every
            if snapshot_every is not None
            else _default_cadence(fingerprints, replication_factor, num_nodes)
        )
        if cadence < 1:
            raise ValueError("snapshot_every must be >= 1 when warm_restart is on")
    else:
        cadence = 0  # no snapshots: the restart replays the full container log
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, len(fingerprints) * 2),
    )

    def make_cluster(persistence: Optional[PersistencePolicy] = None) -> SHHCCluster:
        return SHHCCluster(
            ClusterConfig(
                num_nodes=num_nodes,
                node=config,
                virtual_nodes=virtual_nodes,
                replication_factor=replication_factor,
            ),
            cost_model=model,
            persistence=persistence,
        )

    # Calibrate against a persistence-free probe: container writes are host
    # I/O, not simulated work, so they don't belong in the demand estimate.
    interval = _calibrate_interval(make_cluster, batches, offered_load)

    tmp = None
    if data_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-restart-")
        directory = tmp.name
    else:
        directory = data_dir
    policy = PersistencePolicy(directory=directory, fsync=fsync, snapshot_every=cadence)
    cluster = make_cluster(policy)
    try:
        return _run(
            cluster,
            batches,
            interval,
            kill_batch,
            restart_batch,
            RestartResult(
                num_nodes=num_nodes,
                replication_factor=replication_factor,
                virtual_nodes=virtual_nodes,
                batch_size=batch_size,
                offered_load=offered_load,
                warm_restart=warm_restart,
                snapshot_every=cadence,
                victim=sorted(cluster.nodes)[0],
                kill_batch=kill_batch,
                restart_batch=restart_batch,
                fingerprints_processed=len(fingerprints),
                batches=len(batches),
                interval=interval,
            ),
        )
    finally:
        cluster.close()
        if tmp is not None:
            tmp.cleanup()


def _audit_acknowledged(
    cluster: SHHCCluster, acked: Dict[bytes, Fingerprint]
) -> int:
    """Acknowledged fingerprints missing from every live replica."""
    lost = 0
    for fingerprint in acked.values():
        resident = any(
            fingerprint in cluster.nodes[name]
            for name in cluster.replica_set(fingerprint)
            if not cluster.is_down(name)
        )
        if not resident:
            lost += 1
    return lost


def _run(
    cluster: SHHCCluster,
    batches: List[List[Fingerprint]],
    interval: float,
    kill_batch: int,
    restart_batch: int,
    result: RestartResult,
) -> RestartResult:
    ledger = cluster.ledger
    victim = result.victim
    oracle_seen = set()
    acked: Dict[bytes, Fingerprint] = {}
    report: Optional[RecoveryReport] = None
    in_recovery = False

    for index, batch in enumerate(batches):
        ledger.advance_to(index * interval)
        if index == kill_batch:
            result.acknowledged = len(acked)
            cluster.kill_node(victim)
        if index == restart_batch:
            report = cluster.restart_node(victim)
            in_recovery = True
            result.lost_acknowledged = _audit_acknowledged(cluster, acked)
        if index == 0:
            ledger.set_phase(WARMUP_PHASE)
        elif cluster.is_down(victim):
            ledger.set_phase(DEGRADED_PHASE)
        elif in_recovery:
            if index > restart_batch and ledger.backlog() <= interval:
                in_recovery = False  # replay backlog drained; back to steady
                ledger.set_phase(STEADY_PHASE)
            else:
                ledger.set_phase(RECOVERING_PHASE)
        else:
            ledger.set_phase(STEADY_PHASE)

        if cluster.is_down(victim):
            servable = []
            for fingerprint in batch:
                if any(not cluster.is_down(n) for n in cluster.replica_set(fingerprint)):
                    servable.append(fingerprint)
                else:
                    result.unserved += 1
                    # The client presented it; the oracle remembers it.
                    oracle_seen.add(fingerprint.digest)
        else:
            servable = batch
        for outcome in cluster.lookup_batch(servable):
            digest = outcome.fingerprint.digest
            expected = digest in oracle_seen
            oracle_seen.add(digest)
            if outcome.is_duplicate and not expected:
                result.false_duplicates += 1
            elif not outcome.is_duplicate and expected:
                result.false_uniques += 1
            acked[digest] = outcome.fingerprint

    if report is not None:
        result.recovery_time = report.charged_seconds
        result.recovery_wall_seconds = report.wall_seconds
        result.recovered_entries = report.entries
        result.replayed_records = report.replayed
        result.snapshot_loaded = report.snapshot_loaded
        result.snapshot_bytes = report.snapshot_bytes

    snapshots = sum(
        getattr(node.persistence, "snapshots_taken", 0) or 0
        for node in cluster.nodes.values()
        if getattr(node, "persistence", None) is not None
    )
    return _finish(
        result,
        cluster,
        {"kills": 1, "restarts": 1, "snapshots_taken": snapshots},
    )
