"""Figure 6 -- hash value storage distribution across cluster nodes.

The paper stores the four mixed workloads on a 4-node cluster and reports
the percentage of hash-table entries held by each node: roughly 25 % each,
i.e. the partitioning scheme is load balanced.  Because balance is a
property of the partitioner and the fingerprint distribution (not of
timing), the runner uses the cluster in immediate mode, which lets it use a
much larger slice of the workload than the timing experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...core.metrics import LoadBalanceReport
from ...workloads.mixer import WorkloadMix, table_i_mix
from ..reporting import format_fraction_bar, format_table

__all__ = ["Figure6Result", "run_figure6"]


@dataclass
class Figure6Result:
    """Per-node storage shares plus balance summary statistics."""

    num_nodes: int
    fingerprints_processed: int
    entry_counts: Dict[str, int] = field(default_factory=dict)
    lookup_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def storage_report(self) -> LoadBalanceReport:
        return LoadBalanceReport(self.entry_counts)

    @property
    def lookup_report(self) -> LoadBalanceReport:
        return LoadBalanceReport(self.lookup_counts)

    def fractions(self) -> Dict[str, float]:
        """Share of stored hash entries per node (the Figure 6 percentages)."""
        return self.storage_report.fractions()

    def max_deviation_from_even(self) -> float:
        """Largest deviation of any node's share from the ideal 1/N."""
        return self.storage_report.max_deviation_from_even()

    def render(self) -> str:
        bars = format_fraction_bar(
            self.fractions(),
            title=f"Figure 6: hash value storage distribution ({self.num_nodes} nodes)",
        )
        rows = [
            [
                node,
                self.entry_counts[node],
                round(self.fractions()[node] * 100.0, 2),
                self.lookup_counts.get(node, 0),
            ]
            for node in sorted(self.entry_counts)
        ]
        table = format_table(["node", "entries", "share %", "lookups"], rows)
        summary = (
            f"coefficient of variation: {self.storage_report.coefficient_of_variation:.4f}, "
            f"max deviation from even: {self.max_deviation_from_even() * 100:.2f}%"
        )
        return "\n".join([bars, "", table, summary])


def run_figure6(
    num_nodes: int = 4,
    scale: float = 0.01,
    mix: Optional[WorkloadMix] = None,
    node_config: Optional[HashNodeConfig] = None,
    virtual_nodes: int = 0,
    seed: int = 0,
) -> Figure6Result:
    """Reproduce Figure 6: feed the mixed workload and measure per-node shares."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    workload = mix if mix is not None else table_i_mix(seed=seed)
    fingerprints: Sequence = workload.interleaved(scale=scale)
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, len(fingerprints) * 2),
    )
    cluster = SHHCCluster(
        ClusterConfig(num_nodes=num_nodes, node=config, virtual_nodes=virtual_nodes)
    )
    cluster.lookup_batch_replies(list(fingerprints))

    snapshots = {name: node.snapshot() for name, node in cluster.nodes.items()}
    return Figure6Result(
        num_nodes=num_nodes,
        fingerprints_processed=len(fingerprints),
        entry_counts={name: snap.entries for name, snap in snapshots.items()},
        lookup_counts={name: snap.lookups for name, snap in snapshots.items()},
    )
