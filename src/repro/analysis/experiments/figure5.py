"""Figure 5 -- cluster throughput vs number of servers and batch size.

The paper feeds the four mixed Table-I workloads from two client machines
into hybrid hash clusters of 1-4 nodes, with hash queries batched 1, 128 or
2048 per request, and reports throughput in chunks (fingerprints) per
second.  The two findings the reproduction must show:

* batched configurations (128, 2048) are roughly an order of magnitude
  faster than the unbatched one (batch size 1);
* throughput grows with the number of servers, with 128 and 2048 behaving
  similarly at the larger cluster sizes.

The runner deploys the full simulated architecture (clients -> load balancer
-> web front-ends -> hash nodes) and replays the mixed trace closed-loop from
the configured number of clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...core.config import ClusterConfig, HashNodeConfig
from ...frontend.client import SimulatedClient
from ...frontend.gateway import build_simulated_service
from ...simulation.engine import Simulator
from ...workloads.mixer import WorkloadMix, table_i_mix
from ..reporting import format_series

__all__ = ["Figure5Point", "Figure5Result", "run_figure5"]

#: Cluster sizes evaluated in the paper's Figure 5.
DEFAULT_NODE_COUNTS = (1, 2, 3, 4)

#: Batch sizes evaluated in the paper's Figure 5.
DEFAULT_BATCH_SIZES = (1, 128, 2048)


@dataclass(frozen=True)
class Figure5Point:
    """One (cluster size, batch size) throughput measurement."""

    nodes: int
    batch_size: int
    fingerprints: int
    elapsed: float
    duplicates: int

    @property
    def throughput(self) -> float:
        """Chunks (fingerprints) processed per second of simulated time."""
        return self.fingerprints / self.elapsed if self.elapsed > 0 else 0.0


@dataclass
class Figure5Result:
    """All measurements of the Figure 5 sweep."""

    points: List[Figure5Point] = field(default_factory=list)

    def throughput(self, nodes: int, batch_size: int) -> float:
        for point in self.points:
            if point.nodes == nodes and point.batch_size == batch_size:
                return point.throughput
        raise KeyError(f"no measurement for nodes={nodes} batch={batch_size}")

    def series(self) -> Dict[int, List[Figure5Point]]:
        """Points grouped by batch size, ordered by cluster size."""
        grouped: Dict[int, List[Figure5Point]] = {}
        for point in self.points:
            grouped.setdefault(point.batch_size, []).append(point)
        for values in grouped.values():
            values.sort(key=lambda p: p.nodes)
        return grouped

    def render(self) -> str:
        grouped = self.series()
        node_counts = sorted({point.nodes for point in self.points})
        series = {
            f"{batch} req (chunk/s)": [round(p.throughput) for p in grouped[batch]]
            for batch in sorted(grouped)
        }
        return format_series(
            "servers",
            node_counts,
            series,
            title="Figure 5: throughput of SHHC",
        )


def _run_one_configuration(
    num_nodes: int,
    batch_size: int,
    client_streams: Sequence[Sequence],
    node_config: HashNodeConfig,
    num_web_servers: int,
    window: int,
) -> Figure5Point:
    sim = Simulator()
    config = ClusterConfig(num_nodes=num_nodes, node=node_config)
    deployment = build_simulated_service(
        sim,
        config,
        num_clients=len(client_streams),
        num_web_servers=num_web_servers,
    )
    clients = [
        SimulatedClient(
            client_id=f"client-{index}",
            rpc=deployment.network.rpc,
            load_balancer=deployment.load_balancer,
            fingerprints=stream,
            batch_size=batch_size,
            window=window,
            sim=sim,
        )
        for index, stream in enumerate(client_streams)
    ]
    for client in clients:
        client.start()
    sim.run()

    fingerprints = sum(client.stats.fingerprints_sent for client in clients)
    duplicates = sum(client.stats.duplicates_found for client in clients)
    elapsed = max(client.stats.finished_at for client in clients)
    return Figure5Point(
        nodes=num_nodes,
        batch_size=batch_size,
        fingerprints=fingerprints,
        elapsed=elapsed,
        duplicates=duplicates,
    )


def run_figure5(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    scale: float = 0.001,
    num_clients: int = 2,
    num_web_servers: int = 3,
    window: int = 1,
    mix: Optional[WorkloadMix] = None,
    node_config: Optional[HashNodeConfig] = None,
    seed: int = 0,
) -> Figure5Result:
    """Reproduce Figure 5.

    Parameters
    ----------
    scale:
        Fraction of the full Table-I traces to replay (the full mix is ~42
        million fingerprints; the default replays ~42 thousand, which keeps
        the sweep laptop-sized while leaving every trend intact).
    num_clients / window:
        Client machines and outstanding requests per client; the paper uses
        two clients issuing one batched request at a time.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    workload = mix if mix is not None else table_i_mix(seed=seed)
    client_streams = workload.split_among_clients(num_clients, scale=scale)
    expected = sum(len(stream) for stream in client_streams)
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, expected * 2),
    )
    result = Figure5Result()
    for num_nodes in node_counts:
        for batch_size in batch_sizes:
            result.points.append(
                _run_one_configuration(
                    num_nodes,
                    batch_size,
                    client_streams,
                    config,
                    num_web_servers,
                    window,
                )
            )
    return result
