"""Ablation D -- repeated full backups (the cloud-backup access pattern).

The paper motivates SHHC with the observation that backup workloads are
dominated by repeated full backups of mostly unchanged data (§I: ~75 % of
digital data is a copy).  This experiment drives a multi-generation backup
cycle through the cluster and reports, per generation: how much of the
generation was already stored (cross-generation redundancy), what fraction of
lookups the RAM tier absorbed, and the cumulative dedup ratio -- the numbers
a capacity planner would use to size the hash cluster for a backup fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...workloads.generations import GenerationConfig, GenerationalWorkload
from ..reporting import format_table

__all__ = ["GenerationRow", "GenerationalResult", "run_generational_backup"]


@dataclass(frozen=True)
class GenerationRow:
    """Measurements for one backup generation."""

    generation: int
    chunks: int
    duplicates: int
    ram_hits: int
    cumulative_dedup_ratio: float

    @property
    def redundancy(self) -> float:
        return self.duplicates / self.chunks if self.chunks else 0.0

    @property
    def ram_hit_ratio(self) -> float:
        return self.ram_hits / self.chunks if self.chunks else 0.0


@dataclass
class GenerationalResult:
    """Per-generation dedup and cache behaviour over a full backup cycle."""

    num_nodes: int
    rows: List[GenerationRow] = field(default_factory=list)

    def final_dedup_ratio(self) -> float:
        return self.rows[-1].cumulative_dedup_ratio if self.rows else 1.0

    def render(self) -> str:
        table_rows = [
            [
                row.generation,
                row.chunks,
                f"{row.redundancy * 100:.1f}%",
                f"{row.ram_hit_ratio * 100:.1f}%",
                round(row.cumulative_dedup_ratio, 2),
            ]
            for row in self.rows
        ]
        return format_table(
            ["generation", "chunks", "redundant", "served from RAM", "cumulative dedup"],
            table_rows,
            title=f"Ablation D: repeated full backups on a {self.num_nodes}-node cluster",
        )


def run_generational_backup(
    config: Optional[GenerationConfig] = None,
    num_nodes: int = 4,
    ram_cache_entries: Optional[int] = None,
    seed: Optional[int] = None,
) -> GenerationalResult:
    """Back up every generation through the cluster and measure per-generation stats.

    ``seed`` overrides the workload config's seed (it is the one knob a
    declarative scenario spec threads through every runner).
    """
    workload_config = config if config is not None else GenerationConfig(
        initial_chunks=20_000, generations=7, modify_fraction=0.03, growth_fraction=0.01
    )
    if seed is not None and seed != workload_config.seed:
        workload_config = replace(workload_config, seed=seed)
    workload = GenerationalWorkload(workload_config)
    cache_entries = (
        ram_cache_entries
        if ram_cache_entries is not None
        else max(1024, workload_config.initial_chunks // 2)
    )
    cluster = SHHCCluster(
        ClusterConfig(
            num_nodes=num_nodes,
            node=HashNodeConfig(
                ram_cache_entries=cache_entries,
                bloom_expected_items=max(10_000, workload.unique_chunks() * 2),
            ),
        )
    )

    result = GenerationalResult(num_nodes=num_nodes)
    logical_chunks = 0
    for generation in workload.generations:
        metrics_before = cluster.metrics()
        ram_hits_before = metrics_before.ram_hits
        fingerprints = list(generation.fingerprints(workload_config.chunk_size))
        replies = cluster.lookup_batch_replies(fingerprints)
        duplicates = sum(1 for reply in replies if reply.is_duplicate)
        logical_chunks += len(fingerprints)
        physical_chunks = len(cluster)
        metrics_after = cluster.metrics()
        result.rows.append(
            GenerationRow(
                generation=generation.number,
                chunks=len(fingerprints),
                duplicates=duplicates,
                ram_hits=metrics_after.ram_hits - ram_hits_before,
                cumulative_dedup_ratio=logical_chunks / physical_chunks if physical_chunks else 1.0,
            )
        )
    return result
