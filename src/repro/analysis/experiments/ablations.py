"""Ablation studies motivated by the paper's design discussion and future work.

Three studies (see DESIGN.md, experiments "Ablation A/B/C"):

* **Tier ablation** -- what the hybrid RAM+SSD node layout buys: mean lookup
  latency of the SHHC hybrid node vs a disk-index server, a DDFS-style
  server, a ChunkStash-style server and a pure in-RAM index on the same
  workload (paper §II.B / §III.B positioning).
* **Batch-size trade-off** -- the throughput vs per-request latency trade-off
  the paper's §V explicitly leaves open: sweep the batch size on the
  simulated deployment.
* **Scaling / replication** -- cost of dynamic membership changes (how much
  data moves when a node joins) for the range partitioner vs consistent
  hashing, and the storage/lookup overhead of replication factor 2 (the
  paper's fault-tolerance future work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...baselines.chunkstash import ChunkStashIndex
from ...baselines.ddfs import DDFSIndex
from ...baselines.disk_index import DiskIndex
from ...baselines.single_node import SingleNodeHashServer
from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...core.membership import MembershipManager
from ...dedup.index import ChunkIndex, InMemoryChunkIndex
from ...workloads.mixer import table_i_mix
from ...workloads.profiles import HOME_DIR, MAIL_SERVER, WorkloadProfile
from ...workloads.traces import TraceGenerator
from ..reporting import format_table
from .figure5 import Figure5Point, _run_one_configuration

__all__ = [
    "TierAblationRow",
    "TierAblationResult",
    "run_tier_ablation",
    "BatchTradeoffPoint",
    "BatchTradeoffResult",
    "run_batch_tradeoff",
    "ScalingAblationResult",
    "run_scaling_ablation",
]


# --------------------------------------------------------------------------- tiers
@dataclass(frozen=True)
class TierAblationRow:
    """Latency and hit statistics of one index design on the shared workload."""

    design: str
    lookups: int
    duplicates: int
    mean_latency: float
    total_io_time: float

    @property
    def mean_latency_us(self) -> float:
        return self.mean_latency * 1e6


@dataclass
class TierAblationResult:
    rows: List[TierAblationRow] = field(default_factory=list)

    def row(self, design: str) -> TierAblationRow:
        for row in self.rows:
            if row.design == design:
                return row
        raise KeyError(f"no row for design {design!r}")

    def render(self) -> str:
        return format_table(
            ["design", "lookups", "duplicates", "mean latency (us)"],
            [
                [row.design, row.lookups, row.duplicates, round(row.mean_latency_us, 1)]
                for row in self.rows
            ],
            title="Ablation A: index designs on the same workload",
        )


def _drive_index(name: str, index: ChunkIndex, fingerprints: Sequence) -> TierAblationRow:
    total_latency = 0.0
    duplicates = 0
    for fingerprint in fingerprints:
        result = index.lookup(fingerprint)
        total_latency += result.latency
        if result.is_duplicate:
            duplicates += 1
    count = len(fingerprints)
    return TierAblationRow(
        design=name,
        lookups=count,
        duplicates=duplicates,
        mean_latency=total_latency / count if count else 0.0,
        total_io_time=total_latency,
    )


def run_tier_ablation(
    profile: Optional[WorkloadProfile] = None,
    scale: float = 0.005,
    seed: int = 7,
) -> TierAblationResult:
    """Compare index designs (disk, DDFS, ChunkStash, hybrid, RAM) head to head."""
    workload = (profile if profile is not None else MAIL_SERVER).scaled(scale)
    fingerprints = list(TraceGenerator(workload, seed=seed).generate())
    node_config = HashNodeConfig(
        ram_cache_entries=max(1024, len(fingerprints) // 20),
        bloom_expected_items=max(10_000, len(fingerprints) * 2),
    )
    designs = [
        ("disk-index", DiskIndex(cache_entries=max(1024, len(fingerprints) // 20))),
        ("ddfs", DDFSIndex(bloom_expected_items=max(10_000, len(fingerprints) * 2))),
        ("chunkstash", ChunkStashIndex(cache_entries=max(1024, len(fingerprints) // 20))),
        ("shhc-hybrid", SingleNodeHashServer(node_config)),
        ("ram-only", InMemoryChunkIndex()),
    ]
    result = TierAblationResult()
    for name, index in designs:
        result.rows.append(_drive_index(name, index, fingerprints))
    return result


# --------------------------------------------------------------------------- batching
@dataclass(frozen=True)
class BatchTradeoffPoint:
    """Throughput and request latency for one batch size."""

    batch_size: int
    throughput: float
    mean_request_latency: float
    mean_per_chunk_latency: float


@dataclass
class BatchTradeoffResult:
    nodes: int
    points: List[BatchTradeoffPoint] = field(default_factory=list)

    def render(self) -> str:
        return format_table(
            ["batch", "chunk/s", "request latency (ms)", "per-chunk latency (us)"],
            [
                [
                    point.batch_size,
                    round(point.throughput),
                    round(point.mean_request_latency * 1e3, 3),
                    round(point.mean_per_chunk_latency * 1e6, 1),
                ]
                for point in self.points
            ],
            title=f"Ablation B: batch size trade-off ({self.nodes} nodes)",
        )


def run_batch_tradeoff(
    batch_sizes: Sequence[int] = (1, 8, 32, 128, 512, 2048),
    num_nodes: int = 4,
    scale: float = 0.0005,
    num_clients: int = 2,
    seed: int = 0,
) -> BatchTradeoffResult:
    """Sweep the batch size on the simulated deployment (paper §V trade-off)."""
    mix = table_i_mix(seed=seed, profiles=[MAIL_SERVER])
    client_streams = mix.split_among_clients(num_clients, scale=scale)
    expected = sum(len(s) for s in client_streams)
    node_config = HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(100_000, expected * 2),
    )
    result = BatchTradeoffResult(nodes=num_nodes)
    for batch_size in batch_sizes:
        point: Figure5Point = _run_one_configuration(
            num_nodes,
            batch_size,
            client_streams,
            node_config,
            num_web_servers=2,
            window=1,
        )
        # Request latency: time per closed-loop round trip; per-chunk latency
        # divides it by the batch size (what a single chunk effectively waits).
        request_latency = point.elapsed / (point.fingerprints / batch_size) if point.fingerprints else 0.0
        request_latency /= num_clients
        per_chunk = request_latency / batch_size if batch_size else 0.0
        result.points.append(
            BatchTradeoffPoint(
                batch_size=batch_size,
                throughput=point.throughput,
                mean_request_latency=request_latency,
                mean_per_chunk_latency=per_chunk,
            )
        )
    return result


# --------------------------------------------------------------------------- scaling
@dataclass
class ScalingAblationResult:
    """Data movement of a node join under both partitioners, plus replication cost."""

    fingerprints: int
    moved_fraction_range: float = 0.0
    moved_fraction_consistent: float = 0.0
    balance_after_range: float = 0.0
    balance_after_consistent: float = 0.0
    replication_entry_overhead: float = 0.0
    replication_latency_overhead: float = 0.0

    def render(self) -> str:
        rows = [
            ["range partitioner", f"{self.moved_fraction_range * 100:.1f}%", f"{self.balance_after_range:.3f}"],
            [
                "consistent hashing",
                f"{self.moved_fraction_consistent * 100:.1f}%",
                f"{self.balance_after_consistent:.3f}",
            ],
        ]
        table = format_table(
            ["partitioner", "entries moved on join", "post-join max/mean"],
            rows,
            title=f"Ablation C: scaling a 4-node cluster to 5 nodes ({self.fingerprints:,} fingerprints)",
        )
        extra = (
            f"replication factor 2: {self.replication_entry_overhead:.2f}x stored entries, "
            f"{self.replication_latency_overhead:.2f}x mean lookup cost"
        )
        return table + "\n" + extra


def _loaded_cluster(num_nodes: int, fingerprints, virtual_nodes: int, replication: int = 1) -> SHHCCluster:
    config = ClusterConfig(
        num_nodes=num_nodes,
        node=HashNodeConfig(
            ram_cache_entries=max(1024, len(fingerprints) // 10),
            bloom_expected_items=max(10_000, len(fingerprints) * 2),
        ),
        virtual_nodes=virtual_nodes,
        replication_factor=replication,
    )
    cluster = SHHCCluster(config)
    cluster.lookup_batch_replies(list(fingerprints))
    return cluster


def run_scaling_ablation(
    profile: Optional[WorkloadProfile] = None,
    scale: float = 0.01,
    num_nodes: int = 4,
    virtual_nodes: int = 64,
    seed: int = 11,
) -> ScalingAblationResult:
    """Measure join-time data movement and replication overhead."""
    workload = (profile if profile is not None else HOME_DIR).scaled(scale)
    fingerprints = list(TraceGenerator(workload, seed=seed).generate())
    result = ScalingAblationResult(fingerprints=len(fingerprints))

    # Range partitioner join.
    range_cluster = _loaded_cluster(num_nodes, fingerprints, virtual_nodes=0)
    range_report = MembershipManager(range_cluster).add_node(f"hashnode-{num_nodes}")
    result.moved_fraction_range = range_report.moved_fraction
    result.balance_after_range = range_cluster.storage_distribution().max_over_mean

    # Consistent hashing join.
    ring_cluster = _loaded_cluster(num_nodes, fingerprints, virtual_nodes=virtual_nodes)
    ring_report = MembershipManager(ring_cluster).add_node(f"hashnode-{num_nodes}")
    result.moved_fraction_consistent = ring_report.moved_fraction
    result.balance_after_consistent = ring_cluster.storage_distribution().max_over_mean

    # Replication overhead (storage and latency) relative to no replication.
    single = _loaded_cluster(num_nodes, fingerprints, virtual_nodes=0, replication=1)
    replicated = _loaded_cluster(num_nodes, fingerprints, virtual_nodes=0, replication=2)
    # Storage overhead is a capacity question, so compare stored *copies*
    # (len() deduplicates replicas and would always report 1.0x).
    single_entries = single.total_stored
    result.replication_entry_overhead = (
        replicated.total_stored / single_entries if single_entries else 1.0
    )
    single_latency = single.mean_lookup_latency()
    result.replication_latency_overhead = (
        replicated.mean_lookup_latency() / single_latency if single_latency else 1.0
    )
    return result
