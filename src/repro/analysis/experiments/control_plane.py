"""Timed control-plane experiments -- latency *during* outages and churn.

The failover and elasticity experiments answer "does the cluster stay
correct?"; these runs answer the paper's harder question: "what does lookup
latency look like *while* the control plane is working?".  A mixed backup
workload is streamed through an immediate-mode cluster built with a
:class:`~repro.simulation.costmodel.CostModel`, so every replica write,
read repair and migration copy is charged as deferred CPU + fabric time on
the target node's timeline (see docs/control_plane.md).  Batches arrive on
an open-loop clock calibrated so the busiest node runs at ``offered_load``
utilisation in steady state; when a node crashes (``run_failover_timed``)
or a membership change migrates entries (``run_churn_timed``), the
surviving/affected nodes queue up and the per-phase latency recorders
capture the replication/elasticity tax directly:

* phase ``steady`` -- no outage, no migration backlog;
* phase ``degraded`` -- at least one node marked down;
* phase ``migrating`` -- a membership change fired recently or its copy
  traffic is still draining;
* phase ``warmup`` -- the calibration batch (index 0), excluded from the
  tax comparison.

The headline figure is ``p99_tax``: degraded (or migrating) p99 lookup
latency divided by steady-state p99 -- the Figure-5-style curve the
``failover_timed``/``churn_timed`` scenario presets sweep against
replication factor and churn rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...core.cluster import SHHCCluster
from ...core.config import ClusterConfig, HashNodeConfig
from ...core.fault_injection import FaultInjector, FaultPlan
from ...core.membership import ChurnPlan, MembershipManager
from ...dedup.fingerprint import Fingerprint
from ...simulation.costmodel import CostModel
from ...workloads.mixer import WorkloadMix, table_i_mix
from ..reporting import format_table
from .elasticity import DEFAULT_CHURN_EVENTS, MIN_NODES

__all__ = [
    "PhaseLatency",
    "ControlPlaneResult",
    "run_failover_timed",
    "run_churn_timed",
]

WARMUP_PHASE = "warmup"
STEADY_PHASE = "steady"
DEGRADED_PHASE = "degraded"
MIGRATING_PHASE = "migrating"

#: Default outage density for ``run_failover_timed`` (fraction of the run
#: during which some node is down, as in ``FaultPlan.rolling_outage``).
DEFAULT_OUTAGE_DENSITY = 0.3


@dataclass(frozen=True)
class PhaseLatency:
    """Lookup-latency summary for one phase of a timed run (seconds)."""

    phase: str
    count: int
    mean: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_recorder(cls, phase: str, recorder) -> "PhaseLatency":
        return cls(
            phase=phase,
            count=recorder.count,
            mean=recorder.mean,
            p50=recorder.percentile(0.50),
            p95=recorder.percentile(0.95),
            p99=recorder.percentile(0.99),
        )


@dataclass
class ControlPlaneResult:
    """Outcome of one timed control-plane run."""

    kind: str  # "failover_timed" | "churn_timed"
    num_nodes: int
    replication_factor: int
    virtual_nodes: int
    batch_size: int
    offered_load: float
    headline_phase: str  # the taxed phase: degraded or migrating
    fingerprints_processed: int = 0
    batches: int = 0
    #: Open-loop batch arrival interval (seconds), calibrated from a
    #: fault-free probe run of the same workload.
    interval: float = 0.0
    phases: Dict[str, PhaseLatency] = field(default_factory=dict)
    #: Served lookups per second of virtual time over the whole run.
    throughput: float = 0.0
    #: Control-plane CPU seconds deferred onto node timelines.
    control_plane_cpu_seconds: float = 0.0
    #: Ledger + scenario counters (replica_writes, migration_entries, ...).
    counters: Dict[str, int] = field(default_factory=dict)
    unserved: int = 0

    @property
    def steady(self) -> Optional[PhaseLatency]:
        return self.phases.get(STEADY_PHASE)

    @property
    def taxed(self) -> Optional[PhaseLatency]:
        return self.phases.get(self.headline_phase)

    @property
    def p99_tax(self) -> float:
        """Taxed-phase p99 over steady-state p99 (1.0 = control plane free)."""
        steady, taxed = self.steady, self.taxed
        if steady is None or taxed is None or steady.p99 <= 0.0:
            return 1.0
        return taxed.p99 / steady.p99

    def render(self) -> str:
        rows = [
            ["nodes", self.num_nodes],
            ["replication factor", self.replication_factor],
            ["virtual nodes", self.virtual_nodes],
            ["batch size", self.batch_size],
            ["offered load", self.offered_load],
            ["fingerprints", self.fingerprints_processed],
            ["batches", self.batches],
            ["arrival interval us", round(self.interval * 1e6, 2)],
            ["throughput (lookups/s)", round(self.throughput, 1)],
            ["control-plane CPU ms", round(self.control_plane_cpu_seconds * 1e3, 3)],
            [f"p99 tax ({self.headline_phase}/steady)", round(self.p99_tax, 3)],
        ]
        if self.unserved:
            rows.append(["unserved lookups", self.unserved])
        for name in (STEADY_PHASE, self.headline_phase, WARMUP_PHASE):
            stats = self.phases.get(name)
            if stats is None:
                continue
            rows += [
                [f"{name} lookups", stats.count],
                [f"{name} p50 us", round(stats.p50 * 1e6, 2)],
                [f"{name} p99 us", round(stats.p99 * 1e6, 2)],
            ]
        for counter in sorted(self.counters):
            rows.append([counter, self.counters[counter]])
        return format_table(
            ["metric", "value"],
            rows,
            title=(
                f"{self.kind}: lookup latency during control-plane work "
                f"({self.num_nodes} nodes, k={self.replication_factor})"
            ),
        )


def _make_batches(
    mix: Optional[WorkloadMix], scale: float, batch_size: int, seed: int
) -> Tuple[List[Fingerprint], List[List[Fingerprint]]]:
    workload = mix if mix is not None else table_i_mix(seed=seed)
    fingerprints: List[Fingerprint] = list(workload.interleaved(scale=scale))
    batches = [
        fingerprints[start:start + batch_size]
        for start in range(0, len(fingerprints), batch_size)
    ]
    return fingerprints, batches


def _calibrate_interval(
    make_cluster, batches: List[List[Fingerprint]], offered_load: float
) -> float:
    """Open-loop arrival interval targeting ``offered_load`` utilisation.

    Runs the whole workload through a fault-free probe cluster back-to-back
    (arrival clock pinned at zero), so the ledger's end time is the busiest
    node's total demand -- lookups *and* steady-state replica propagation
    included.  The measured run then spaces batches so that demand fills
    ``offered_load`` of the timeline, leaving headroom that only outage
    shift or migration backlog can consume.
    """
    probe = make_cluster()
    for batch in batches:
        probe.lookup_batch(batch)
    demand = probe.ledger.end_time() / len(batches)
    if demand <= 0.0:
        raise RuntimeError("calibration probe measured zero service demand")
    return demand / offered_load


def _validate(scale: float, batch_size: int, offered_load: float) -> None:
    if scale <= 0:
        raise ValueError("scale must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not 0.0 < offered_load < 1.0:
        raise ValueError("offered_load must be in (0, 1)")


def _finish(
    result: ControlPlaneResult, cluster: SHHCCluster, extra: Dict[str, int]
) -> ControlPlaneResult:
    ledger = cluster.ledger
    for name, recorder in ledger.phases.items():
        if recorder.count:
            result.phases[name] = PhaseLatency.from_recorder(name, recorder)
    end = ledger.end_time()
    served = ledger.counters.get("lookups")
    result.throughput = served / end if end > 0 else 0.0
    result.control_plane_cpu_seconds = ledger.control_plane_cpu_seconds
    counters = ledger.counters.as_dict()
    counters.update(extra)
    counters["read_repairs"] = cluster.read_repairs
    counters["failovers"] = cluster.failovers
    result.counters = counters
    return result


def run_failover_timed(
    scale: float = 0.002,
    num_nodes: int = 4,
    replication_factor: int = 2,
    virtual_nodes: int = 64,
    batch_size: int = 256,
    offered_load: float = 0.7,
    mix: Optional[WorkloadMix] = None,
    fault_plan: Optional[FaultPlan] = None,
    outage_density: Optional[float] = None,
    node_config: Optional[HashNodeConfig] = None,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
) -> ControlPlaneResult:
    """Measure the lookup-latency distribution *during* node outages.

    Streams the workload on an open-loop arrival clock while a
    :class:`~repro.core.fault_injection.FaultPlan` (default: a rolling
    outage covering ``DEFAULT_OUTAGE_DENSITY`` of the run) crashes and
    recovers nodes.  While a node is down its traffic shifts to the
    surviving replicas, whose timelines back up beyond the calibrated
    ``offered_load``; the ``degraded`` phase records those latencies
    separately from ``steady``, and ``p99_tax`` is their p99 ratio --
    strictly above 1 whenever the outage actually concentrated load.

    Fingerprints whose whole replica set is down are not sent (counted as
    ``unserved``), mirroring :func:`~repro.analysis.experiments.failover.run_failover`.
    """
    _validate(scale, batch_size, offered_load)
    if fault_plan is not None and outage_density is not None:
        raise ValueError("pass at most one of fault_plan, outage_density")
    if fault_plan is None:
        fault_plan = FaultPlan.rolling_outage(
            outage_density if outage_density is not None else DEFAULT_OUTAGE_DENSITY
        )
    model = cost_model if cost_model is not None else CostModel()
    fingerprints, batches = _make_batches(mix, scale, batch_size, seed)
    if fault_plan.has_outages and len(batches) <= fault_plan.start:
        raise ValueError(
            f"only {len(batches)} batch(es) at batch_size={batch_size}: too short for "
            f"an outage plan starting at t={fault_plan.start:g}; lower batch_size or "
            "raise scale"
        )
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, len(fingerprints) * 2),
    )

    def make_cluster() -> SHHCCluster:
        return SHHCCluster(
            ClusterConfig(
                num_nodes=num_nodes,
                node=config,
                virtual_nodes=virtual_nodes,
                replication_factor=replication_factor,
            ),
            cost_model=model,
        )

    interval = _calibrate_interval(make_cluster, batches, offered_load)

    cluster = make_cluster()
    ledger = cluster.ledger
    schedule = fault_plan.schedule(cluster.node_names, horizon=float(len(batches)))
    injector = FaultInjector(cluster, schedule)
    result = ControlPlaneResult(
        kind="failover_timed",
        num_nodes=num_nodes,
        replication_factor=replication_factor,
        virtual_nodes=virtual_nodes,
        batch_size=batch_size,
        offered_load=offered_load,
        headline_phase=DEGRADED_PHASE,
        fingerprints_processed=len(fingerprints),
        batches=len(batches),
        interval=interval,
    )

    for index, batch in enumerate(batches):
        ledger.advance_to(index * interval)
        injector.advance(index)
        degraded = any(cluster.is_down(name) for name in cluster.node_names)
        if index == 0:
            ledger.set_phase(WARMUP_PHASE)
        elif degraded:
            ledger.set_phase(DEGRADED_PHASE)
        else:
            ledger.set_phase(STEADY_PHASE)
        if degraded:
            servable = []
            for fingerprint in batch:
                if any(not cluster.is_down(n) for n in cluster.replica_set(fingerprint)):
                    servable.append(fingerprint)
                else:
                    result.unserved += 1
        else:
            servable = batch
        cluster.lookup_batch(servable)
    injector.drain()

    return _finish(
        result,
        cluster,
        {"crashes": injector.crashes, "recoveries": injector.recoveries},
    )


def run_churn_timed(
    scale: float = 0.002,
    num_nodes: int = 4,
    replication_factor: int = 2,
    virtual_nodes: int = 64,
    batch_size: int = 256,
    offered_load: float = 0.7,
    mix: Optional[WorkloadMix] = None,
    churn_plan: Optional[ChurnPlan] = None,
    node_config: Optional[HashNodeConfig] = None,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
) -> ControlPlaneResult:
    """Measure the lookup-latency distribution *during* membership churn.

    Like :func:`run_failover_timed`, but the disturbance is a
    :class:`~repro.core.membership.ChurnPlan` (default: alternating
    join/leave).  Each membership change's copy traffic is charged to the
    source and target nodes' timelines (export CPU, fabric transfer,
    import CPU), so batches right after an event queue behind the
    migration; they are recorded under the ``migrating`` phase until the
    backlog drains back under one arrival interval.
    """
    _validate(scale, batch_size, offered_load)
    if num_nodes < MIN_NODES:
        raise ValueError(f"num_nodes must be >= {MIN_NODES}")
    plan = churn_plan if churn_plan is not None else ChurnPlan.join_leave(DEFAULT_CHURN_EVENTS)
    model = cost_model if cost_model is not None else CostModel()
    fingerprints, batches = _make_batches(mix, scale, batch_size, seed)
    if plan.has_churn and len(batches) <= plan.start:
        raise ValueError(
            f"only {len(batches)} batch(es) at batch_size={batch_size}: too short for "
            f"a churn plan starting at t={plan.start:g}; lower batch_size or raise scale"
        )
    config = node_config if node_config is not None else HashNodeConfig(
        ram_cache_entries=200_000,
        bloom_expected_items=max(1_000_000, len(fingerprints) * 2),
    )

    def make_cluster() -> SHHCCluster:
        return SHHCCluster(
            ClusterConfig(
                num_nodes=num_nodes,
                node=config,
                virtual_nodes=virtual_nodes,
                replication_factor=replication_factor,
            ),
            cost_model=model,
        )

    interval = _calibrate_interval(make_cluster, batches, offered_load)

    cluster = make_cluster()
    ledger = cluster.ledger
    manager = MembershipManager(cluster)
    schedule = plan.schedule(horizon=float(len(batches))) if plan.has_churn else []
    result = ControlPlaneResult(
        kind="churn_timed",
        num_nodes=num_nodes,
        replication_factor=replication_factor,
        virtual_nodes=virtual_nodes,
        batch_size=batch_size,
        offered_load=offered_load,
        headline_phase=MIGRATING_PHASE,
        fingerprints_processed=len(fingerprints),
        batches=len(batches),
        interval=interval,
    )
    joins = leaves = skipped = entries_moved = 0
    next_index = {"value": num_nodes}

    def _fire(event) -> bool:
        nonlocal joins, leaves, skipped, entries_moved
        if event.action == "join":
            node_id = f"{cluster.config.node_name_prefix}-{next_index['value']}"
            next_index["value"] += 1
            report = manager.add_node(node_id)
            joins += 1
        else:
            if len(cluster.nodes) <= MIN_NODES:
                skipped += 1
                return False
            node_id = sorted(cluster.nodes)[0]
            report = manager.remove_node(node_id)
            leaves += 1
        entries_moved += report.entries_moved
        return True

    pending = list(schedule)  # already time-ordered
    for index, batch in enumerate(batches):
        ledger.advance_to(index * interval)
        fired = False
        while pending and pending[0].time <= index:
            fired = _fire(pending.pop(0)) or fired
        if index == 0:
            ledger.set_phase(WARMUP_PHASE)
        elif fired or ledger.backlog() > interval:
            # A change just happened, or its copy traffic is still draining.
            ledger.set_phase(MIGRATING_PHASE)
        else:
            ledger.set_phase(STEADY_PHASE)
        cluster.lookup_batch(batch)
    for event in pending:  # events past the last batch still fire
        _fire(event)

    return _finish(
        result,
        cluster,
        {
            "joins": joins,
            "leaves": leaves,
            "skipped_events": skipped,
            "entries_moved": entries_moved,
        },
    )
