"""Scenario wrapper for the real serving stack (gateway + worker processes).

Unlike every other experiment in this package, nothing here is simulated:
``run_service`` boots an actual :class:`~repro.serving.gateway.ServiceGateway`
on an ephemeral port with one OS process per hash node, drives it with the
:mod:`~repro.serving.loadgen` client pool inside the same event loop, and
folds what the clients *measured* (not what a model predicted) into the
standard scenario metrics schema.  It is the bridge between the simulator's
`service` story and the deployable one: the same preset/sweep tooling, real
sockets and processes underneath.
"""

from __future__ import annotations

import asyncio
import dataclasses
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ...serving.gateway import ServeConfig, ServiceGateway
from ...serving.loadgen import LoadtestConfig, run_loadtest_async

__all__ = ["ServiceRunResult", "run_service"]


@dataclass
class ServiceRunResult:
    """Client-observed behaviour of one live service run."""

    num_nodes: int = 0
    clients: int = 0
    pipeline: int = 0
    batch_size: int = 0
    offered: int = 0
    acknowledged: int = 0
    new_fingerprints: int = 0
    duplicate_fingerprints: int = 0
    throughput: float = 0.0
    wall_seconds: float = 0.0
    latency_us: Dict[str, float] = field(default_factory=dict)
    sheds: int = 0
    shed_rate: float = 0.0
    retries: int = 0
    unavailable: int = 0
    failed_batches: int = 0
    kills_sent: int = 0
    worker_restarts: int = 0
    audit_checked: int = 0
    lost_acknowledged: int = 0
    #: The gateway's own view at the end of the run (queue depths, per-worker
    #: counters) -- kept verbatim for report drill-down.
    gateway_stats: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        from ..reporting import format_table

        rows = [
            ("nodes (worker processes)", self.num_nodes),
            ("clients x pipeline", f"{self.clients} x {self.pipeline}"),
            ("offered fingerprints", f"{self.offered:,}"),
            ("acknowledged", f"{self.acknowledged:,}"),
            ("throughput (fp/s)", f"{self.throughput:,.0f}"),
            ("p50 latency (us)", f"{self.latency_us.get('p50', 0.0):,.0f}"),
            ("p99 latency (us)", f"{self.latency_us.get('p99', 0.0):,.0f}"),
            ("sheds", self.sheds),
            ("retries", self.retries),
            ("worker restarts", self.worker_restarts),
            ("audited / lost acknowledged", f"{self.audit_checked:,} / {self.lost_acknowledged}"),
        ]
        return format_table(["metric", "value"], rows, title="Service (live gateway + workers)")


async def _run_stack(serve_config: ServeConfig,
                     load_config: LoadtestConfig) -> ServiceRunResult:
    gateway = ServiceGateway(serve_config)
    await gateway.start()
    try:
        load_config = dataclasses.replace(load_config, port=gateway.port)
        report = await run_loadtest_async(load_config)
        stats = gateway.stats()
    finally:
        await gateway.close()
    offered = report.offered_fingerprints
    return ServiceRunResult(
        num_nodes=serve_config.num_nodes,
        clients=load_config.clients,
        pipeline=load_config.pipeline,
        batch_size=load_config.batch_size,
        offered=offered,
        acknowledged=report.acked_fingerprints,
        new_fingerprints=report.new_fingerprints,
        duplicate_fingerprints=report.duplicate_fingerprints,
        throughput=report.throughput_fps,
        wall_seconds=report.wall_seconds,
        latency_us=dict(report.latency_us),
        sheds=report.sheds,
        shed_rate=report.sheds / report.offered_batches if report.offered_batches else 0.0,
        retries=report.retries,
        unavailable=report.unavailable,
        failed_batches=report.failed_batches,
        kills_sent=report.kills_sent,
        worker_restarts=report.worker_restarts,
        audit_checked=report.audit_checked,
        lost_acknowledged=report.lost_acknowledged,
        gateway_stats=stats,
    )


def run_service(
    num_nodes: int = 4,
    clients: int = 8,
    pipeline: int = 4,
    batch_size: int = 256,
    fingerprints: int = 50_000,
    duplicate_fraction: float = 0.25,
    arrival_rate_fps: float = 0.0,
    kill_node: Optional[str] = None,
    kill_after_fraction: float = 0.25,
    burst_batches: int = 0,
    snapshot_every: int = 100_000,
    fsync: bool = False,
    max_queue: int = 64,
    max_inflight: int = 512,
    node_config: Optional[Dict[str, Any]] = None,
    data_dir: Optional[str] = None,
    audit: bool = True,
    seed: int = 17,
) -> ServiceRunResult:
    """Boot the service, load it, audit it, tear it down; returns the result."""

    def _go(directory: Optional[str]) -> ServiceRunResult:
        serve_config = ServeConfig(
            port=0,
            num_nodes=num_nodes,
            node_config=dict(node_config or {}),
            data_dir=directory,
            fsync=fsync,
            snapshot_every=snapshot_every,
            max_queue=max_queue,
            max_inflight=max_inflight,
        )
        load_config = LoadtestConfig(
            clients=clients,
            pipeline=pipeline,
            batch_size=batch_size,
            fingerprints=fingerprints,
            duplicate_fraction=duplicate_fraction,
            arrival_rate_fps=arrival_rate_fps,
            seed=seed,
            kill_node=kill_node,
            kill_after_fraction=kill_after_fraction,
            burst_batches=burst_batches,
            audit=audit,
        )
        return asyncio.run(_run_stack(serve_config, load_config))

    if data_dir is not None:
        return _go(data_dir)
    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        return _go(tmp)
