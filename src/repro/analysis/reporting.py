"""Plain-text rendering of experiment results (tables and ASCII series).

Every experiment runner returns a result object that can render itself as the
same kind of table or series the paper prints, so benchmark output and
EXPERIMENTS.md can be produced directly from these helpers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series", "format_fraction_bar"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def _line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(_line(list(headers)))
    lines.append(_line(["-" * width for width in widths]))
    lines.extend(_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: dict,
    title: str = "",
) -> str:
    """Render multiple named series sharing an x axis as one table.

    ``series`` maps a series name to its list of y values (same length as
    ``x_values``).
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for values in series.values():
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_fraction_bar(fractions: dict, width: int = 40, title: str = "") -> str:
    """Render a name->fraction mapping as labelled ASCII bars (Figure 6 style)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not fractions:
        return "\n".join(lines + ["(empty)"])
    longest = max(len(str(name)) for name in fractions)
    for name, fraction in fractions.items():
        bar = "#" * max(0, round(fraction * width))
        lines.append(f"{str(name).ljust(longest)}  {fraction * 100:5.1f}%  {bar}")
    return "\n".join(lines)
