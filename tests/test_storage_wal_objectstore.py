"""Tests for the write-ahead log and the cloud object store."""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.simulation.engine import Simulator
from repro.storage.object_store import CloudObjectStore
from repro.storage.wal import WriteAheadLog


class TestWriteAheadLog:
    def test_append_assigns_increasing_lsns(self):
        wal = WriteAheadLog()
        first = wal.append("create", node="n1")
        second = wal.append("delete", node="n2")
        assert first.lsn == 1 and second.lsn == 2
        assert wal.last_lsn == 2
        assert len(wal) == 2

    def test_replay_returns_records_after_lsn(self):
        wal = WriteAheadLog()
        for index in range(5):
            wal.append("op", index=index)
        replayed = list(wal.replay(after_lsn=3))
        assert [record.lsn for record in replayed] == [4, 5]
        assert replayed[0]["index"] == 3

    def test_checkpoint_drops_old_records(self):
        wal = WriteAheadLog()
        for index in range(5):
            wal.append("op", index=index)
        dropped = wal.checkpoint(up_to_lsn=3)
        assert dropped == 3
        assert [record.lsn for record in wal.replay()] == [4, 5]

    def test_persistence_and_recovery(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append("add_node", node="hashnode-4")
            wal.append("remove_node", node="hashnode-1")
        with WriteAheadLog(path) as recovered:
            records = list(recovered.replay())
            assert [record.kind for record in records] == ["add_node", "remove_node"]
            assert recovered.last_lsn == 2
            # New appends continue the LSN sequence.
            assert recovered.append("noop").lsn == 3

    def test_recovery_ignores_corrupt_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append("good")
        with open(path, "a", encoding="utf-8") as log:
            log.write('{"lsn": 2, "kind": "trunc')  # no closing brace / newline
        with WriteAheadLog(path) as recovered:
            assert [record.kind for record in recovered.replay()] == ["good"]

    def test_checkpoint_persists_truncation(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            for index in range(10):
                wal.append("op", index=index)
            wal.checkpoint(up_to_lsn=8)
        with WriteAheadLog(path) as recovered:
            assert [record.lsn for record in recovered.replay()] == [9, 10]

    def test_fsync_append_and_checkpoint(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync=True) as wal:
            for index in range(5):
                wal.append("op", index=index)
            wal.checkpoint(up_to_lsn=3)
        with WriteAheadLog(path) as recovered:
            assert [record.lsn for record in recovered.replay()] == [4, 5]

    def test_crash_during_checkpoint_leaves_replayable_log(self, tmp_path):
        # A checkpoint writes the surviving records to wal.log.tmp and only
        # then renames it over the log.  Simulate a crash in between: the
        # tmp file exists but the rename never happened.  Reopening must
        # discard the stale tmp and replay the ORIGINAL, untruncated log.
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            for index in range(6):
                wal.append("op", index=index)
        original = open(path, encoding="utf-8").read()
        with open(path + ".tmp", "w", encoding="utf-8") as temp:
            temp.write('{"lsn": 6, "kind": "op", "index": 5}\n')  # partial rewrite
        with WriteAheadLog(path) as recovered:
            assert [record.lsn for record in recovered.replay()] == [1, 2, 3, 4, 5, 6]
        assert not os.path.exists(path + ".tmp")
        assert open(path, encoding="utf-8").read() == original

    def test_checkpoint_rewrite_is_atomic_on_disk(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            for index in range(4):
                wal.append("op", index=index)
            wal.checkpoint(up_to_lsn=2)
            # The rewrite replaced the file; no tmp residue while open.
            assert not os.path.exists(path + ".tmp")
            # Appends after a checkpoint keep going to the renamed file.
            wal.append("tail")
        with WriteAheadLog(path) as recovered:
            assert [record.lsn for record in recovered.replay()] == [3, 4, 5]


class TestCloudObjectStore:
    def test_put_and_get(self):
        store = CloudObjectStore()
        assert store.put(b"key1", b"data") is True
        assert store.get(b"key1") == b"data"
        assert b"key1" in store
        assert len(store) == 1

    def test_duplicate_put_bumps_reference_count(self):
        store = CloudObjectStore()
        store.put(b"key", b"data")
        assert store.put(b"key", b"data") is False
        assert store.reference_count(b"key") == 2
        assert len(store) == 1

    def test_release_reclaims_when_last_reference_dropped(self):
        store = CloudObjectStore()
        store.put(b"key", b"data")
        store.add_reference(b"key")
        assert store.release(b"key") is True
        assert b"key" in store
        assert store.release(b"key") is True
        assert b"key" not in store

    def test_release_missing_returns_false(self):
        assert CloudObjectStore().release(b"nope") is False

    def test_add_reference_missing_returns_false(self):
        assert CloudObjectStore().add_reference(b"nope") is False

    def test_total_bytes_tracks_physical_size(self):
        store = CloudObjectStore()
        store.put(b"a", b"x" * 100)
        store.put(b"b", b"y" * 50)
        store.put(b"a", b"x" * 100)  # duplicate: no extra bytes
        assert store.total_bytes() == 150

    def test_content_verification(self):
        store = CloudObjectStore(verify_content=True)
        data = b"verified chunk"
        store.put(hashlib.sha1(data).digest(), data)
        with pytest.raises(ValueError):
            store.put(b"\x00" * 20, data)

    def test_get_missing_returns_none(self):
        assert CloudObjectStore().get(b"missing") is None

    def test_stats_keys(self):
        store = CloudObjectStore()
        store.put(b"a", b"data")
        stats = store.stats()
        assert stats["objects"] == 1
        assert stats["puts"] == 1
        assert stats["physical_bytes"] == 4

    def test_transfer_time_scales_with_size(self):
        store = CloudObjectStore(base_latency=0.01, bandwidth=1e6)
        assert store.transfer_time(0) == pytest.approx(0.01)
        assert store.transfer_time(1_000_000) == pytest.approx(1.01)

    def test_async_put_and_get_on_simulator(self, sim):
        store = CloudObjectStore(sim=sim, base_latency=0.5, bandwidth=1e9)
        results = []
        store.put_async(b"key", b"chunk").add_callback(
            lambda event: results.append(("put", sim.now, event.value))
        )
        sim.run()
        store.get_async(b"key").add_callback(
            lambda event: results.append(("get", sim.now, event.value))
        )
        sim.run()
        assert results[0][0] == "put" and results[0][2] is True
        assert results[0][1] == pytest.approx(0.5, rel=1e-3)
        assert results[1][0] == "get" and results[1][2] == b"chunk"

    def test_async_requires_simulator(self):
        store = CloudObjectStore()
        with pytest.raises(RuntimeError):
            store.put_async(b"k", b"v")
        with pytest.raises(RuntimeError):
            store.get_async(b"k")
